//! The pre-event-engine O(n²) list scheduler, kept verbatim as a frozen
//! baseline.
//!
//! This is the original implementation of [`crate::simulate_stream`]: every
//! scheduling step rescans all pending tasks and re-resolves dependency
//! finish times through a `HashMap<(usize, TaskId), f64>`. It exists for two
//! reasons only — the old-vs-new equivalence property tests
//! (`tests/engine_equivalence.rs`) and the `stream_scaling` benchmark that
//! records the speedup of the event-driven engine. New code should call
//! [`crate::simulate_stream`].

use crate::engine::{link_key, Resource, SimReport, TaskRecord};
use crate::plan::{ExecutionPlan, PlanTask, TaskId, TaskKind};
use crate::SimError;
use hidp_platform::{Cluster, EnergyMeter, ProcessorAddr};
use std::borrow::Borrow;
use std::collections::HashMap;

/// Simulates a stream of requests with the original earliest-start
/// list-scheduling loop. Produces the same report as
/// [`crate::simulate_stream`], in O(n²). Plans are taken by [`Borrow`] like
/// the event engine's, so both accept the same streams; the scheduling loop
/// itself is unchanged.
///
/// # Errors
///
/// Returns an error when any plan is invalid, arrival times are not finite
/// and non-negative, or a plan references unknown processors/nodes.
pub fn simulate_stream_reference<Pl: Borrow<ExecutionPlan>>(
    requests: &[(f64, Pl)],
    cluster: &Cluster,
) -> Result<SimReport, SimError> {
    if requests.is_empty() {
        return Err(SimError::InvalidPlan {
            what: "no requests to simulate".into(),
        });
    }
    struct Pending<'a> {
        request: usize,
        arrival: f64,
        task: &'a PlanTask,
        duration: f64,
        resource: Option<Resource>,
        processor: Option<ProcessorAddr>,
        flops: u64,
        bytes: u64,
    }

    let mut pending: Vec<Pending<'_>> = Vec::new();
    for (req_idx, (arrival, plan)) in requests.iter().enumerate() {
        if !(arrival.is_finite() && *arrival >= 0.0) {
            return Err(SimError::InvalidPlan {
                what: format!("request {req_idx} has invalid arrival time {arrival}"),
            });
        }
        let plan = plan.borrow();
        plan.validate()?;
        let batch = plan.batch();
        for task in plan.tasks() {
            let (duration, resource, processor, flops, bytes) = match &task.kind {
                TaskKind::Compute {
                    target,
                    flops,
                    gpu_affinity,
                } => {
                    let proc = cluster.processor(*target)?;
                    (
                        proc.batched_compute_time(*flops, *gpu_affinity, batch),
                        Some(Resource::Processor(*target)),
                        Some(*target),
                        *flops,
                        0u64,
                    )
                }
                TaskKind::Transfer { from, to, bytes } => {
                    // Validate node indices.
                    cluster.node(*from)?;
                    cluster.node(*to)?;
                    let duration = cluster.network().transfer_time(*from, *to, *bytes);
                    let resource = if from == to {
                        None
                    } else {
                        Some(link_key(*from, *to))
                    };
                    (duration, resource, None, 0u64, *bytes)
                }
            };
            pending.push(Pending {
                request: req_idx,
                arrival: *arrival,
                task,
                duration,
                resource,
                processor,
                flops,
                bytes,
            });
        }
    }

    // finish[(request, task)] = finish time.
    let mut finish: HashMap<(usize, TaskId), f64> = HashMap::new();
    let mut resource_free: HashMap<Resource, f64> = HashMap::new();
    let mut done = vec![false; pending.len()];
    let mut records: Vec<TaskRecord> = Vec::with_capacity(pending.len());
    let mut meter = EnergyMeter::new();

    for _ in 0..pending.len() {
        // Find the ready task with the earliest feasible start time.
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in pending.iter().enumerate() {
            if done[i] {
                continue;
            }
            let deps_ready = p
                .task
                .deps
                .iter()
                .all(|d| finish.contains_key(&(p.request, *d)));
            if !deps_ready {
                continue;
            }
            let deps_finish = p
                .task
                .deps
                .iter()
                .map(|d| finish[&(p.request, *d)])
                .fold(0.0f64, f64::max);
            let resource_ready = p
                .resource
                .map(|r| resource_free.get(&r).copied().unwrap_or(0.0))
                .unwrap_or(0.0);
            let start = p.arrival.max(deps_finish).max(resource_ready);
            let better = match best {
                None => true,
                Some((_, s)) => start < s - 1e-15,
            };
            if better {
                best = Some((i, start));
            }
        }
        let (idx, start) = best.ok_or_else(|| SimError::InvalidPlan {
            what: "dependency deadlock: no ready task found".into(),
        })?;
        let p = &pending[idx];
        let end = start + p.duration;
        finish.insert((p.request, p.task.id), end);
        if let Some(r) = p.resource {
            resource_free.insert(r, end);
        }
        if let Some(addr) = p.processor {
            meter.record_busy(addr, p.duration)?;
        }
        records.push(TaskRecord {
            task: p.task.id,
            request: p.request,
            name: p.task.name.clone(),
            start,
            finish: end,
            flops: p.flops,
            bytes: p.bytes,
            processor: p.processor,
        });
        done[idx] = true;
    }

    records.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("times are finite"));
    let mut request_completion = vec![0.0f64; requests.len()];
    for ((request, _), end) in &finish {
        if *end > request_completion[*request] {
            request_completion[*request] = *end;
        }
    }
    let makespan = request_completion.iter().copied().fold(0.0, f64::max);
    let request_arrival = requests.iter().map(|(a, _)| *a).collect();

    Ok(SimReport {
        records,
        request_completion,
        request_arrival,
        meter,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_stream;
    use hidp_platform::{presets, NodeIndex, ProcessorIndex};

    fn addr(node: usize, proc: usize) -> ProcessorAddr {
        ProcessorAddr {
            node: NodeIndex(node),
            processor: ProcessorIndex(proc),
        }
    }

    #[test]
    fn reference_matches_event_engine_on_a_mixed_stream() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 1), 900_000_000, 1.0, &[]);
        let t = plan.add_transfer("t", NodeIndex(0), NodeIndex(2), 4_000_000, &[a]);
        plan.add_compute("b", addr(2, 1), 700_000_000, 0.8, &[t]);
        let requests: Vec<(f64, ExecutionPlan)> =
            (0..6).map(|i| (i as f64 * 0.01, plan.clone())).collect();
        let reference = simulate_stream_reference(&requests, &cluster).unwrap();
        let event = simulate_stream(&requests, &cluster).unwrap();
        assert_eq!(reference.records, event.records);
        assert_eq!(reference.request_completion, event.request_completion);
        assert_eq!(reference.makespan, event.makespan);
        assert_eq!(reference.meter, event.meter);
    }

    #[test]
    fn reference_rejects_invalid_input_like_the_event_engine() {
        let cluster = presets::paper_cluster();
        assert!(simulate_stream_reference(&[] as &[(f64, ExecutionPlan)], &cluster).is_err());
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(9, 0), 1, 1.0, &[]);
        assert!(simulate_stream_reference(&[(0.0, plan)], &cluster).is_err());
    }
}
