//! # hidp-sim
//!
//! A deterministic discrete-event simulator for distributed DNN inference on
//! heterogeneous edge clusters.
//!
//! Partitioning strategies (HiDP and the baselines) emit an
//! [`ExecutionPlan`] — a DAG of compute tasks bound to processors and
//! transfer tasks bound to network links. [`simulate`] executes the plan on a
//! [`hidp_platform::Cluster`], producing per-task timing, request latency,
//! energy and throughput figures; [`simulate_stream`] does the same for a
//! stream of requests sharing the cluster, which is how the paper's dynamic
//! workload (Fig. 6) and workload-mix (Fig. 7) experiments are reproduced.
//!
//! ```
//! use hidp_platform::{presets, NodeIndex, ProcessorAddr, ProcessorIndex};
//! use hidp_sim::{simulate, ExecutionPlan};
//!
//! # fn main() -> Result<(), hidp_sim::SimError> {
//! let cluster = presets::paper_cluster();
//! let gpu = ProcessorAddr { node: NodeIndex(0), processor: ProcessorIndex(1) };
//! let mut plan = ExecutionPlan::new();
//! plan.add_compute("whole model", gpu, 5_000_000_000, 1.0, &[]);
//! let report = simulate(&plan, &cluster)?;
//! assert!(report.makespan > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod engine;
mod error;
mod plan;
pub mod reference;
pub mod serving;
pub mod stats;

pub use engine::{
    simulate, simulate_admitted_stream, simulate_admitted_stream_faulty,
    simulate_admitted_stream_faulty_in, simulate_admitted_stream_in, simulate_stream,
    simulate_stream_detailed, simulate_stream_in, FailureEvent, SimReport, SimScratch, TaskRecord,
    TraceDetail,
};
pub use error::SimError;
pub use plan::{ExecutionPlan, Label, PlanTask, TaskId, TaskKind};
pub use reference::simulate_stream_reference;
pub use serving::{
    LatencyHistogram, LatencySummary, ServedRequestRecord, ServingMetrics, SlaClass,
    SlaClassReport, StreamingTail,
};
pub use stats::{Ewma, P2Quantile};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, SimError>;
