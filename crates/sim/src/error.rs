use std::error::Error;
use std::fmt;

/// Error type for plan construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A task referenced a dependency that does not exist.
    UnknownTask {
        /// The offending task id.
        id: usize,
    },
    /// The plan violates a structural invariant.
    InvalidPlan {
        /// Description of the violation.
        what: String,
    },
    /// A platform lookup failed (unknown node or processor).
    Platform(hidp_platform::PlatformError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTask { id } => write!(f, "unknown task id {id}"),
            SimError::InvalidPlan { what } => write!(f, "invalid plan: {what}"),
            SimError::Platform(e) => write!(f, "platform error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hidp_platform::PlatformError> for SimError {
    fn from(e: hidp_platform::PlatformError) -> Self {
        SimError::Platform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::UnknownTask { id: 4 };
        assert!(e.to_string().contains('4'));
        assert!(e.source().is_none());
        let e: SimError = hidp_platform::PlatformError::UnknownNode { index: 1 }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
