//! The discrete-event cluster simulator.
//!
//! Resources are (a) every processor in the cluster and (b) the wireless
//! link between every pair of distinct nodes. Tasks are scheduled with a
//! deterministic earliest-start policy: among all tasks whose dependencies
//! have finished, the one that can start first (ties broken by submission
//! order) is placed on its resource. Per-resource execution is FIFO,
//! matching the run-queue behaviour of the real middleware.
//!
//! The engine is event-driven: a pre-pass interns every resource into a
//! dense index and flattens all plans into one task array with indegree
//! counts and a CSR successor list; the run loop then pops a binary heap of
//! ready tasks keyed by feasible start time, tracks per-resource free times
//! in a flat `Vec<f64>`, and decrements successor indegrees on completion —
//! O(n log n) with no per-step hashing or rescans. The original O(n²)
//! list-scheduling implementation is preserved in [`crate::reference`] and
//! property-tested to produce identical schedules.
//!
//! One caveat on exactness: this engine orders ready tasks by *exact* start
//! time (ties by submission order), while the reference scan treated starts
//! within `1e-15` of each other as ties. Whenever no two contending feasible
//! starts fall within that band of each other without being exactly equal —
//! every workload and property seed exercised so far — the two engines are
//! bit-identical; inside that degenerate sub-ULP band their task order may
//! differ (the reference's epsilon rule is scan-order-dependent and not a
//! total order, so no heap key can reproduce it).

use crate::plan::{ExecutionPlan, PlanTask, TaskId, TaskKind};
use crate::SimError;
use hidp_platform::{Cluster, EnergyMeter, NodeIndex, ProcessorAddr};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The record of one executed task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task id within its plan.
    pub task: TaskId,
    /// Index of the request the task belonged to (0 for single-plan runs).
    pub request: usize,
    /// Task label.
    pub name: String,
    /// Simulation time at which the task started, in seconds.
    pub start: f64,
    /// Simulation time at which the task finished, in seconds.
    pub finish: f64,
    /// Flops executed (zero for transfers).
    pub flops: u64,
    /// Bytes transferred (zero for compute tasks).
    pub bytes: u64,
    /// The processor used (None for transfers).
    pub processor: Option<ProcessorAddr>,
}

impl TaskRecord {
    /// Task duration in seconds.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// The result of simulating one or more plans on a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-task execution records, ordered by start time.
    pub records: Vec<TaskRecord>,
    /// Completion time of each request (seconds since simulation start).
    pub request_completion: Vec<f64>,
    /// Arrival time of each request.
    pub request_arrival: Vec<f64>,
    /// Busy-time accounting used for energy computation.
    pub meter: EnergyMeter,
    /// Time at which the last task finished.
    pub makespan: f64,
}

impl SimReport {
    /// Latency of request `i` (completion − arrival), in seconds.
    pub fn latency(&self, request: usize) -> Option<f64> {
        Some(self.request_completion.get(request)? - self.request_arrival.get(request)?)
    }

    /// Latencies of all requests, in seconds.
    pub fn latencies(&self) -> Vec<f64> {
        (0..self.request_completion.len())
            .filter_map(|i| self.latency(i))
            .collect()
    }

    /// Total energy over the makespan window, in joules.
    ///
    /// # Errors
    ///
    /// Propagates platform lookup failures for unknown processors.
    pub fn total_energy(&self, cluster: &Cluster) -> Result<f64, SimError> {
        Ok(self.meter.total_energy(cluster, self.makespan)?)
    }

    /// Dynamic (workload-attributable) energy in joules.
    ///
    /// # Errors
    ///
    /// Propagates platform lookup failures for unknown processors.
    pub fn dynamic_energy(&self, cluster: &Cluster) -> Result<f64, SimError> {
        Ok(self.meter.dynamic_energy(cluster)?)
    }
}

/// Resource identifier used while interning (processor or unordered link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Resource {
    Processor(ProcessorAddr),
    Link(usize, usize),
}

pub(crate) fn link_key(a: NodeIndex, b: NodeIndex) -> Resource {
    if a.0 <= b.0 {
        Resource::Link(a.0, b.0)
    } else {
        Resource::Link(b.0, a.0)
    }
}

/// One flattened task: a plan task plus its derived duration and interned
/// resource, valid for the lifetime of the borrowed plans.
struct FlatTask<'a> {
    request: usize,
    task: &'a PlanTask,
    duration: f64,
    resource: Option<usize>,
    processor: Option<ProcessorAddr>,
    flops: u64,
    bytes: u64,
}

/// A ready task in the event queue: ordered by feasible start time, with
/// the flat (submission-order) index as tie-break so simultaneous tasks
/// commit in the order they were submitted.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ReadyTask {
    start: f64,
    seq: usize,
}

impl Eq for ReadyTask {}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Start times are validated finite, so total_cmp is the numeric order.
        self.start
            .total_cmp(&other.start)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Simulates a single plan starting at time zero.
///
/// # Errors
///
/// Returns an error when the plan is invalid or references unknown
/// processors/nodes.
pub fn simulate(plan: &ExecutionPlan, cluster: &Cluster) -> Result<SimReport, SimError> {
    simulate_stream(&[(0.0, plan.clone())], cluster)
}

/// Simulates a stream of inference requests, each with an arrival time and a
/// plan. Resources are shared across requests, so a long-running request
/// delays later ones — the effect the paper's Fig. 6/7 experiments measure.
///
/// # Errors
///
/// Returns an error when any plan is invalid, arrival times are not finite
/// and non-negative, or a plan references unknown processors/nodes.
pub fn simulate_stream(
    requests: &[(f64, ExecutionPlan)],
    cluster: &Cluster,
) -> Result<SimReport, SimError> {
    if requests.is_empty() {
        return Err(SimError::InvalidPlan {
            what: "no requests to simulate".into(),
        });
    }

    // --- Pre-pass: validate, intern resources, flatten tasks. -------------
    let total: usize = requests.iter().map(|(_, p)| p.len()).sum();
    let mut resources: HashMap<Resource, usize> = HashMap::new();
    let mut tasks: Vec<FlatTask<'_>> = Vec::with_capacity(total);
    // ready_time[i]: max(arrival, finish of every completed dependency).
    let mut ready_time: Vec<f64> = Vec::with_capacity(total);
    // indegree[i]: dependencies of task i not yet finished.
    let mut indegree: Vec<u32> = Vec::with_capacity(total);
    // Per-request offset of the first flat index, to globalise dep ids.
    let mut request_base: Vec<usize> = Vec::with_capacity(requests.len());

    for (req_idx, (arrival, plan)) in requests.iter().enumerate() {
        if !(arrival.is_finite() && *arrival >= 0.0) {
            return Err(SimError::InvalidPlan {
                what: format!("request {req_idx} has invalid arrival time {arrival}"),
            });
        }
        // Normalise -0.0 to +0.0: total_cmp orders -0.0 before 0.0, which
        // would break the exact-tie submission-order guarantee for requests
        // arriving at (±)0.0.
        let arrival = *arrival + 0.0;
        plan.validate()?;
        request_base.push(tasks.len());
        for task in plan.tasks() {
            let (duration, resource, processor, flops, bytes) = match &task.kind {
                TaskKind::Compute {
                    target,
                    flops,
                    gpu_affinity,
                } => {
                    let proc = cluster.processor(*target)?;
                    (
                        proc.compute_time(*flops, *gpu_affinity),
                        Some(Resource::Processor(*target)),
                        Some(*target),
                        *flops,
                        0u64,
                    )
                }
                TaskKind::Transfer { from, to, bytes } => {
                    // Validate node indices.
                    cluster.node(*from)?;
                    cluster.node(*to)?;
                    let duration = cluster.network().transfer_time(*from, *to, *bytes);
                    let resource = if from == to {
                        None
                    } else {
                        Some(link_key(*from, *to))
                    };
                    (duration, resource, None, 0u64, *bytes)
                }
            };
            let resource = resource.map(|r| {
                let next = resources.len();
                *resources.entry(r).or_insert(next)
            });
            tasks.push(FlatTask {
                request: req_idx,
                task,
                duration,
                resource,
                processor,
                flops,
                bytes,
            });
            ready_time.push(arrival);
            indegree.push(task.deps.len() as u32);
        }
    }

    // CSR successor lists: succ[succ_offsets[d]..succ_offsets[d + 1]] holds
    // the flat indices of the tasks depending on flat task d.
    let n = tasks.len();
    let mut succ_offsets: Vec<usize> = vec![0; n + 1];
    for t in &tasks {
        let base = request_base[t.request];
        for dep in &t.task.deps {
            succ_offsets[base + dep.0 + 1] += 1;
        }
    }
    for d in 0..n {
        succ_offsets[d + 1] += succ_offsets[d];
    }
    let mut succ: Vec<usize> = vec![0; succ_offsets[n]];
    let mut cursor: Vec<usize> = succ_offsets[..n].to_vec();
    for (i, t) in tasks.iter().enumerate() {
        let base = request_base[t.request];
        for dep in &t.task.deps {
            let d = base + dep.0;
            succ[cursor[d]] = i;
            cursor[d] += 1;
        }
    }

    // --- Event loop. ------------------------------------------------------
    let mut resource_free: Vec<f64> = vec![0.0; resources.len()];
    let mut records: Vec<TaskRecord> = Vec::with_capacity(n);
    let mut meter = EnergyMeter::new();
    let mut request_completion = vec![0.0f64; requests.len()];

    // Heap keys are lower bounds on feasible start: exact once every
    // dependency is finished, except that the resource may become busier
    // after the push — corrected lazily on pop.
    let mut heap: BinaryHeap<Reverse<ReadyTask>> = BinaryHeap::with_capacity(n);
    for i in 0..n {
        if indegree[i] == 0 {
            heap.push(Reverse(ReadyTask {
                start: ready_time[i],
                seq: i,
            }));
        }
    }

    let mut committed = 0usize;
    while let Some(Reverse(entry)) = heap.pop() {
        let i = entry.seq;
        let t = &tasks[i];
        if let Some(r) = t.resource {
            // The resource may have advanced past this entry's key since it
            // was pushed; re-queue with the corrected feasible start so the
            // heap order stays the true earliest-start order.
            let feasible = entry.start.max(resource_free[r]);
            if feasible > entry.start {
                heap.push(Reverse(ReadyTask {
                    start: feasible,
                    seq: i,
                }));
                continue;
            }
        }
        let start = entry.start;
        let end = start + t.duration;
        if let Some(r) = t.resource {
            resource_free[r] = end;
        }
        if let Some(addr) = t.processor {
            meter.record_busy(addr, t.duration)?;
        }
        if end > request_completion[t.request] {
            request_completion[t.request] = end;
        }
        // Commits happen in non-decreasing start order (every remaining heap
        // key and every future push is ≥ the popped key), so `records` ends
        // up sorted by start with submission-order ties — the same order the
        // reference engine produces.
        records.push(TaskRecord {
            task: t.task.id,
            request: t.request,
            name: t.task.name.clone(),
            start,
            finish: end,
            flops: t.flops,
            bytes: t.bytes,
            processor: t.processor,
        });
        committed += 1;
        for &s in &succ[succ_offsets[i]..succ_offsets[i + 1]] {
            if end > ready_time[s] {
                ready_time[s] = end;
            }
            indegree[s] -= 1;
            if indegree[s] == 0 {
                let start = match tasks[s].resource {
                    Some(r) => ready_time[s].max(resource_free[r]),
                    None => ready_time[s],
                };
                heap.push(Reverse(ReadyTask { start, seq: s }));
            }
        }
    }
    if committed != n {
        return Err(SimError::InvalidPlan {
            what: "dependency deadlock: no ready task found".into(),
        });
    }

    let makespan = request_completion.iter().copied().fold(0.0, f64::max);
    let request_arrival = requests.iter().map(|(a, _)| *a).collect();

    Ok(SimReport {
        records,
        request_completion,
        request_arrival,
        meter,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_platform::{presets, ProcessorIndex};

    fn addr(node: usize, proc: usize) -> ProcessorAddr {
        ProcessorAddr {
            node: NodeIndex(node),
            processor: ProcessorIndex(proc),
        }
    }

    #[test]
    fn sequential_chain_adds_durations() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let t = plan.add_transfer("xfer", NodeIndex(0), NodeIndex(1), 8_000_000, &[a]);
        let b = plan.add_compute("b", addr(1, 2), 1_000_000_000, 1.0, &[t]);
        let _ = b;
        let report = simulate(&plan, &cluster).unwrap();

        let gpu0 = cluster.processor(addr(0, 1)).unwrap();
        let gpu1 = cluster.processor(addr(1, 2)).unwrap();
        let expected = gpu0.compute_time(1_000_000_000, 1.0)
            + cluster
                .network()
                .transfer_time(NodeIndex(0), NodeIndex(1), 8_000_000)
            + gpu1.compute_time(1_000_000_000, 1.0);
        assert!((report.makespan - expected).abs() < 1e-9);
        assert_eq!(report.records.len(), 3);
        assert!((report.latency(0).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_on_different_processors_overlap() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 0), 2_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 2_000_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let cpu = cluster.processor(addr(0, 0)).unwrap();
        let slowest = cpu.compute_time(2_000_000_000, 1.0);
        // Parallel execution: makespan is the slower of the two, not the sum.
        assert!((report.makespan - slowest).abs() < 1e-9);
    }

    #[test]
    fn same_processor_tasks_serialise() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 1_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let gpu = cluster.processor(addr(0, 1)).unwrap();
        let single = gpu.compute_time(1_000_000_000, 1.0);
        assert!((report.makespan - 2.0 * single).abs() < 1e-9);
    }

    #[test]
    fn link_contention_serialises_transfers() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_transfer("x1", NodeIndex(0), NodeIndex(1), 40_000_000, &[]);
        plan.add_transfer("x2", NodeIndex(1), NodeIndex(0), 40_000_000, &[]);
        // Different node pair: can run in parallel with the above.
        plan.add_transfer("x3", NodeIndex(2), NodeIndex(3), 40_000_000, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let one = cluster
            .network()
            .transfer_time(NodeIndex(0), NodeIndex(1), 40_000_000);
        assert!((report.makespan - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn energy_reflects_busy_processors() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(1, 2), 6_600_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let dynamic = report.dynamic_energy(&cluster).unwrap();
        let gpu = cluster.processor(addr(1, 2)).unwrap();
        let expected = (gpu.active_power_w - gpu.idle_power_w) * report.makespan;
        assert!((dynamic - expected).abs() < 1e-6);
        assert!(report.total_energy(&cluster).unwrap() > dynamic);
    }

    #[test]
    fn stream_requests_queue_on_shared_resources() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 18_800_000_000, 1.0, &[]);
        // Two identical requests arriving together: the second must wait.
        let report =
            simulate_stream(&[(0.0, plan.clone()), (0.0, plan.clone())], &cluster).unwrap();
        let single = cluster
            .processor(addr(0, 1))
            .unwrap()
            .compute_time(18_800_000_000, 1.0);
        assert!((report.latency(0).unwrap() - single).abs() < 1e-9);
        assert!((report.latency(1).unwrap() - 2.0 * single).abs() < 1e-9);

        // Arriving after the first finished: no queueing delay.
        let report2 = simulate_stream(
            &[(0.0, plan.clone()), (2.0 * single, plan.clone())],
            &cluster,
        )
        .unwrap();
        assert!((report2.latency(1).unwrap() - single).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let cluster = presets::paper_cluster();
        assert!(simulate_stream(&[], &cluster).is_err());
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(9, 0), 1, 1.0, &[]);
        assert!(simulate(&plan, &cluster).is_err());
        let mut plan2 = ExecutionPlan::new();
        plan2.add_compute("a", addr(0, 0), 1, 1.0, &[]);
        assert!(simulate_stream(&[(f64::NAN, plan2)], &cluster).is_err());
    }

    #[test]
    fn records_are_sorted_by_start_time() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 0), 1_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 500_000_000, 1.0, &[]);
        plan.add_compute("c", addr(0, 0), 100_000_000, 1.0, &[a]);
        let report = simulate(&plan, &cluster).unwrap();
        for pair in report.records.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        assert!(report.records.iter().all(|r| r.duration() > 0.0));
    }

    #[test]
    fn equal_start_tasks_commit_in_submission_order() {
        // Three identical tasks on the same processor, all ready at t = 0:
        // the heap must break the tie by submission order, so the records
        // come out a, b, c back to back.
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 1_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 1_000_000_000, 1.0, &[]);
        plan.add_compute("c", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let names: Vec<&str> = report.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        let single = cluster
            .processor(addr(0, 1))
            .unwrap()
            .compute_time(1_000_000_000, 1.0);
        for (i, record) in report.records.iter().enumerate() {
            assert_eq!(record.start, i as f64 * single);
        }
    }

    #[test]
    fn equal_start_requests_commit_in_request_order() {
        // Two single-task requests arriving at the same instant contend for
        // one processor: request 0 must run first (submission order).
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("only", addr(1, 2), 2_000_000_000, 1.0, &[]);
        let report =
            simulate_stream(&[(0.5, plan.clone()), (0.5, plan.clone())], &cluster).unwrap();
        assert_eq!(report.records[0].request, 0);
        assert_eq!(report.records[1].request, 1);
        assert!(report.latency(0).unwrap() < report.latency(1).unwrap());
    }

    #[test]
    fn negative_zero_arrival_ties_with_positive_zero() {
        // -0.0 is a valid arrival; it must not jump the submission-order
        // queue ahead of a +0.0 arrival (total_cmp orders -0.0 < 0.0, so
        // arrivals are normalised in the pre-pass).
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("only", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let report =
            simulate_stream(&[(0.0, plan.clone()), (-0.0, plan.clone())], &cluster).unwrap();
        assert_eq!(report.records[0].request, 0);
        assert_eq!(report.records[1].request, 1);
    }

    #[test]
    fn stale_heap_entries_are_requeued_not_dropped() {
        // d1 finishes before d2, so "late" becomes ready (and is pushed)
        // while its processor is still occupied by "early"; the heap entry
        // goes stale when "early" commits and must be re-queued, not run at
        // its original key.
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let d1 = plan.add_compute("d1", addr(0, 0), 100_000_000, 1.0, &[]);
        plan.add_compute("early", addr(0, 1), 2_000_000_000, 1.0, &[]);
        plan.add_compute("late", addr(0, 1), 1_000_000_000, 1.0, &[d1]);
        let report = simulate(&plan, &cluster).unwrap();
        let early = report.records.iter().find(|r| r.name == "early").unwrap();
        let late = report.records.iter().find(|r| r.name == "late").unwrap();
        assert_eq!(late.start, early.finish);
    }
}
