//! The discrete-event cluster simulator.
//!
//! Resources are (a) every processor in the cluster and (b) the wireless
//! link between every pair of distinct nodes. Tasks are scheduled with a
//! deterministic earliest-start policy: among all tasks whose dependencies
//! have finished, the one that can start first (ties broken by submission
//! order) is placed on its resource. Per-resource execution is FIFO,
//! matching the run-queue behaviour of the real middleware.
//!
//! The engine is event-driven: a pre-pass interns every resource into a
//! dense index and flattens all plans into one task array with indegree
//! counts and a CSR successor list; the run loop then pops a binary heap of
//! ready tasks keyed by feasible start time, tracks per-resource free times
//! in a flat `Vec<f64>`, and decrements successor indegrees on completion —
//! O(n log n) with no per-step hashing or rescans. The original O(n²)
//! list-scheduling implementation is preserved in [`crate::reference`] and
//! property-tested to produce identical schedules.
//!
//! # The zero-copy warm path
//!
//! Three knobs make steady-state re-simulation allocation-free:
//!
//! * plans are taken as any [`Borrow<ExecutionPlan>`] — pass
//!   `Arc<ExecutionPlan>`s (what [`hidp_core::PlanCache`] hands out) and a
//!   1000-request stream shares a handful of plans instead of deep-copying
//!   each one per request;
//! * [`simulate_stream_in`] runs against a caller-owned [`SimScratch`],
//!   reusing every internal buffer *and* the report's output buffers across
//!   runs ([`simulate_stream`] is the allocating wrapper around a one-shot
//!   scratch);
//! * [`TraceDetail::Summary`] skips materialising the per-task
//!   [`TaskRecord`] trace for consumers that only read latencies, makespan
//!   and energy (every metric except the trace itself stays bit-identical —
//!   [`hidp_platform::EnergyMeter`] accounting is exact in both modes).
//!
//! One caveat on exactness: this engine orders ready tasks by *exact* start
//! time (ties by submission order), while the reference scan treated starts
//! within `1e-15` of each other as ties. Whenever no two contending feasible
//! starts fall within that band of each other without being exactly equal —
//! every workload and property seed exercised so far — the two engines are
//! bit-identical; inside that degenerate sub-ULP band their task order may
//! differ (the reference's epsilon rule is scan-order-dependent and not a
//! total order, so no heap key can reproduce it).

use crate::plan::{ExecutionPlan, Label, TaskId, TaskKind};
use crate::SimError;
use hidp_platform::{AvailabilityEvent, Cluster, EnergyMeter, NodeIndex, ProcessorAddr};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// The record of one executed task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task id within its plan.
    pub task: TaskId,
    /// Index of the request the task belonged to (0 for single-plan runs).
    pub request: usize,
    /// Task label (interned — cloning shares the plan's text).
    pub name: Label,
    /// Simulation time at which the task started, in seconds.
    pub start: f64,
    /// Simulation time at which the task finished, in seconds.
    pub finish: f64,
    /// Flops executed (zero for transfers).
    pub flops: u64,
    /// Bytes transferred (zero for compute tasks).
    pub bytes: u64,
    /// The processor used (None for transfers).
    pub processor: Option<ProcessorAddr>,
}

impl TaskRecord {
    /// Task duration in seconds.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// How much of the execution trace a simulation materialises.
///
/// Every aggregate — request completions, latencies, makespan, energy —
/// is computed identically in both modes; the knob only controls whether
/// the per-task [`TaskRecord`] trace is kept.
///
/// * Use [`TraceDetail::Full`] when the trace itself is consumed: timeline
///   plots ([`crate::stats::performance_timeline`]), per-task debugging,
///   the Fig. 6 experiment.
/// * Use [`TraceDetail::Summary`] for metric-only consumers — strategy
///   grids, rate sweeps, Poisson stress — where materialising one record
///   per task is pure allocation cost (the dominant one on long streams).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceDetail {
    /// Keep the per-task trace in [`SimReport::records`] (the default).
    #[default]
    Full,
    /// Leave [`SimReport::records`] empty; aggregates stay exact.
    Summary,
}

/// The result of simulating one or more plans on a cluster.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-task execution records, ordered by start time (empty when the
    /// run used [`TraceDetail::Summary`]).
    pub records: Vec<TaskRecord>,
    /// Completion time of each request (seconds since simulation start).
    pub request_completion: Vec<f64>,
    /// Arrival time of each request.
    pub request_arrival: Vec<f64>,
    /// Busy-time accounting used for energy computation.
    pub meter: EnergyMeter,
    /// Time at which the last task finished.
    pub makespan: f64,
}

impl SimReport {
    /// Latency of request `i` (completion − arrival), in seconds.
    pub fn latency(&self, request: usize) -> Option<f64> {
        Some(self.request_completion.get(request)? - self.request_arrival.get(request)?)
    }

    /// Latencies of all requests, in seconds.
    pub fn latencies(&self) -> Vec<f64> {
        (0..self.request_completion.len())
            .filter_map(|i| self.latency(i))
            .collect()
    }

    /// Total energy over the makespan window, in joules.
    ///
    /// # Errors
    ///
    /// Propagates platform lookup failures for unknown processors.
    pub fn total_energy(&self, cluster: &Cluster) -> Result<f64, SimError> {
        Ok(self.meter.total_energy(cluster, self.makespan)?)
    }

    /// Dynamic (workload-attributable) energy in joules.
    ///
    /// # Errors
    ///
    /// Propagates platform lookup failures for unknown processors.
    pub fn dynamic_energy(&self, cluster: &Cluster) -> Result<f64, SimError> {
        Ok(self.meter.dynamic_energy(cluster)?)
    }
}

/// One in-flight request killed by a node failure: emitted by the
/// failure-aware admitted-stream mode ([`simulate_admitted_stream_faulty`])
/// instead of a fictitious completion on dead hardware.
///
/// A down-flip at time `t` kills every request that still has **unstarted**
/// work touching the failed node at that instant — tasks that began before
/// the flip run to completion and keep their resource reservations (the
/// abandoned work occupies hardware; nothing is rolled back). The killed
/// request's entry in [`SimReport::request_completion`] is the finish of its
/// last committed task (`0.0` when nothing had started) — consumers must use
/// the failure list, not completions, to classify these requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Input index of the killed request.
    pub request: usize,
    /// Virtual time of the availability flip that killed it, seconds.
    pub at: f64,
    /// The node whose down-flip killed the request.
    pub node: NodeIndex,
}

/// Resource identifier used while interning (processor or unordered link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Resource {
    Processor(ProcessorAddr),
    Link(usize, usize),
}

pub(crate) fn link_key(a: NodeIndex, b: NodeIndex) -> Resource {
    if a.0 <= b.0 {
        Resource::Link(a.0, b.0)
    } else {
        Resource::Link(b.0, a.0)
    }
}

/// One entry of a simulated request stream: the arrival time used for
/// latency accounting, the release (admission) time gating when the
/// request's subgraph may start, and the plan.
///
/// Plain `(arrival, plan)` streams release at arrival — the historical
/// behaviour. The serving runtime's admitted streams
/// (`(arrival, admitted, plan)`) release later: queueing delay then shows up
/// as `completion - arrival` growing while the schedule itself only sees the
/// admitted time.
pub(crate) trait StreamEntry {
    /// Arrival time, seconds (latency is measured from here).
    fn arrival(&self) -> f64;
    /// Release gate, seconds: no task of the request starts earlier.
    fn release(&self) -> f64;
    /// The plan serving the request.
    fn plan(&self) -> &ExecutionPlan;
}

impl<P: Borrow<ExecutionPlan>> StreamEntry for (f64, P) {
    fn arrival(&self) -> f64 {
        self.0
    }

    fn release(&self) -> f64 {
        self.0
    }

    fn plan(&self) -> &ExecutionPlan {
        self.1.borrow()
    }
}

impl<P: Borrow<ExecutionPlan>> StreamEntry for (f64, f64, P) {
    fn arrival(&self) -> f64 {
        self.0
    }

    fn release(&self) -> f64 {
        self.1
    }

    fn plan(&self) -> &ExecutionPlan {
        self.2.borrow()
    }
}

/// One flattened task: the plain-data view of a plan task (derived duration,
/// interned resource, accounting fields). Holds no borrow of the plans, so
/// the flat array persists inside [`SimScratch`] across runs.
#[derive(Debug, Clone, Copy)]
struct TaskMeta {
    request: usize,
    duration: f64,
    resource: Option<u32>,
    processor: Option<ProcessorAddr>,
    flops: u64,
    bytes: u64,
    /// The node(s) the task occupies: a compute task's node twice, a
    /// transfer's two endpoints. Used by the failure-aware mode to decide
    /// which unstarted tasks a down-flip invalidates.
    node_a: u32,
    node_b: u32,
}

/// A ready task in the event queue: ordered by feasible start time, with
/// the flat (submission-order) index as tie-break so simultaneous tasks
/// commit in the order they were submitted.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ReadyTask {
    start: f64,
    seq: usize,
}

impl Eq for ReadyTask {}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Start times are validated finite, so total_cmp is the numeric order.
        self.start
            .total_cmp(&other.start)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Reusable working memory for [`simulate_stream_in`]: the flattened task
/// array, indegree counts, CSR successor lists, the ready heap, per-resource
/// free times *and* the output [`SimReport`]'s buffers.
///
/// Create one per worker thread (it is cheap when empty) and pass it to
/// every simulation that thread runs: after the first run of a given stream
/// shape, subsequent runs perform **zero heap allocations** — every buffer
/// is cleared and refilled in place, and with plans shared via `Arc` and
/// labels interned there is nothing left to copy. `tests/
/// zero_alloc_warm_path.rs` asserts this with a counting allocator, and the
/// CI bench-smoke job re-asserts it on every PR via `exp_warm_path --quick`.
///
/// [`simulate_stream`] is the one-shot wrapper: it builds a fresh scratch,
/// runs once and moves the report out — bit-identical output, allocation
/// cost proportional to the stream.
#[derive(Debug, Default)]
pub struct SimScratch {
    resources: HashMap<Resource, u32>,
    tasks: Vec<TaskMeta>,
    /// ready_time[i]: max(arrival, finish of every completed dependency).
    ready_time: Vec<f64>,
    /// indegree[i]: dependencies of task i not yet finished.
    indegree: Vec<u32>,
    /// Per-request offset of the first flat index, to globalise dep ids.
    request_base: Vec<usize>,
    succ_offsets: Vec<usize>,
    succ: Vec<usize>,
    cursor: Vec<usize>,
    resource_free: Vec<f64>,
    heap: BinaryHeap<Reverse<ReadyTask>>,
    report: SimReport,
    /// Failure events of the last faulty run (empty otherwise).
    failures: Vec<FailureEvent>,
    /// Faulty-mode bookkeeping: request liveness, uncommitted-task counts
    /// per request, per-task committed flags. Untouched on fault-free runs.
    alive: Vec<bool>,
    remaining: Vec<u32>,
    done: Vec<bool>,
}

impl SimScratch {
    /// Creates an empty scratch (no buffers are allocated until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every buffer, keeping capacity.
    fn reset(&mut self, total_tasks: usize, request_count: usize) {
        self.resources.clear();
        self.tasks.clear();
        self.tasks.reserve(total_tasks);
        self.ready_time.clear();
        self.ready_time.reserve(total_tasks);
        self.indegree.clear();
        self.indegree.reserve(total_tasks);
        self.request_base.clear();
        self.request_base.reserve(request_count);
        self.heap.clear();
        self.failures.clear();
        self.report.records.clear();
        self.report.request_completion.clear();
        self.report.request_arrival.clear();
        self.report.meter.reset();
        self.report.makespan = 0.0;
    }

    /// The engine proper: validates, flattens, simulates, and leaves the
    /// result in `self.report` (and, when `faults` contains down-flips, the
    /// killed requests in `self.failures`).
    ///
    /// With an empty `faults` slice this is the historical fault-free
    /// engine: the extra bookkeeping is gated on the presence of down
    /// events, and the arithmetic of every commit is untouched — pinned
    /// bit-identical by test.
    fn run<E: StreamEntry>(
        &mut self,
        requests: &[E],
        cluster: &Cluster,
        detail: TraceDetail,
        faults: &[AvailabilityEvent],
    ) -> Result<(), SimError> {
        if requests.is_empty() {
            return Err(SimError::InvalidPlan {
                what: "no requests to simulate".into(),
            });
        }
        let mut prev_fault = 0.0f64;
        for (idx, event) in faults.iter().enumerate() {
            if !(event.time.is_finite() && event.time >= 0.0) {
                return Err(SimError::InvalidPlan {
                    what: format!("fault event {idx} has invalid time {}", event.time),
                });
            }
            if event.time < prev_fault {
                return Err(SimError::InvalidPlan {
                    what: format!("fault events are not sorted by time (event {idx})"),
                });
            }
            prev_fault = event.time;
            cluster.node(event.node)?;
        }
        // Only down-flips kill work; a timeline of pure up events (or none)
        // takes the fault-free path untouched.
        let faulty = faults.iter().any(|e| !e.up);

        // --- Pre-pass: validate, intern resources, flatten tasks. ---------
        let total: usize = requests.iter().map(|e| e.plan().len()).sum();
        self.reset(total, requests.len());

        for (req_idx, entry) in requests.iter().enumerate() {
            let plan = entry.plan();
            let arrival = entry.arrival();
            let release = entry.release();
            if !(arrival.is_finite() && arrival >= 0.0) {
                return Err(SimError::InvalidPlan {
                    what: format!("request {req_idx} has invalid arrival time {arrival}"),
                });
            }
            if !(release.is_finite() && release >= arrival) {
                return Err(SimError::InvalidPlan {
                    what: format!(
                        "request {req_idx} has invalid admitted time {release} \
                         (arrival {arrival})"
                    ),
                });
            }
            // Normalise -0.0 to +0.0: total_cmp orders -0.0 before 0.0, which
            // would break the exact-tie submission-order guarantee for
            // requests arriving at (±)0.0.
            let release = release + 0.0;
            plan.validate()?;
            let batch = plan.batch();
            self.request_base.push(self.tasks.len());
            for task in plan.tasks() {
                let (duration, resource, processor, flops, bytes, node_a, node_b) = match &task.kind
                {
                    TaskKind::Compute {
                        target,
                        flops,
                        gpu_affinity,
                    } => {
                        let proc = cluster.processor(*target)?;
                        (
                            proc.batched_compute_time(*flops, *gpu_affinity, batch),
                            Some(Resource::Processor(*target)),
                            Some(*target),
                            *flops,
                            0u64,
                            target.node.0 as u32,
                            target.node.0 as u32,
                        )
                    }
                    TaskKind::Transfer { from, to, bytes } => {
                        // Validate node indices.
                        cluster.node(*from)?;
                        cluster.node(*to)?;
                        let duration = cluster.network().transfer_time(*from, *to, *bytes);
                        let resource = if from == to {
                            None
                        } else {
                            Some(link_key(*from, *to))
                        };
                        (
                            duration,
                            resource,
                            None,
                            0u64,
                            *bytes,
                            from.0 as u32,
                            to.0 as u32,
                        )
                    }
                };
                let resource = resource.map(|r| {
                    let next = self.resources.len() as u32;
                    *self.resources.entry(r).or_insert(next)
                });
                self.tasks.push(TaskMeta {
                    request: req_idx,
                    duration,
                    resource,
                    processor,
                    flops,
                    bytes,
                    node_a,
                    node_b,
                });
                self.ready_time.push(release);
                self.indegree.push(task.deps.len() as u32);
            }
        }

        // CSR successor lists: succ[succ_offsets[d]..succ_offsets[d + 1]]
        // holds the flat indices of the tasks depending on flat task d. The
        // dependency ids live in the borrowed plans, so the two fill passes
        // walk the plans again instead of storing per-task borrows.
        let n = self.tasks.len();
        self.succ_offsets.clear();
        self.succ_offsets.resize(n + 1, 0);
        for (req_idx, entry) in requests.iter().enumerate() {
            let base = self.request_base[req_idx];
            for task in entry.plan().tasks() {
                for dep in &task.deps {
                    self.succ_offsets[base + dep.0 + 1] += 1;
                }
            }
        }
        for d in 0..n {
            self.succ_offsets[d + 1] += self.succ_offsets[d];
        }
        self.succ.clear();
        self.succ.resize(self.succ_offsets[n], 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.succ_offsets[..n]);
        let mut flat = 0usize;
        for (req_idx, entry) in requests.iter().enumerate() {
            let base = self.request_base[req_idx];
            for task in entry.plan().tasks() {
                for dep in &task.deps {
                    let d = base + dep.0;
                    self.succ[self.cursor[d]] = flat;
                    self.cursor[d] += 1;
                }
                flat += 1;
            }
        }

        // --- Event loop. --------------------------------------------------
        let Self {
            resources,
            tasks,
            ready_time,
            indegree,
            request_base,
            succ_offsets,
            succ,
            heap,
            resource_free,
            report,
            failures,
            alive,
            remaining,
            done,
            ..
        } = self;
        resource_free.clear();
        resource_free.resize(resources.len(), 0.0);
        report.request_completion.resize(requests.len(), 0.0);
        if detail == TraceDetail::Full {
            report.records.reserve(n);
        }
        if faulty {
            alive.clear();
            alive.resize(requests.len(), true);
            done.clear();
            done.resize(n, false);
            remaining.clear();
            remaining.resize(requests.len(), 0);
            for t in tasks.iter() {
                remaining[t.request] += 1;
            }
        }

        // Heap keys are lower bounds on feasible start: exact once every
        // dependency is finished, except that the resource may become busier
        // after the push — corrected lazily on pop.
        for i in 0..n {
            if indegree[i] == 0 {
                heap.push(Reverse(ReadyTask {
                    start: ready_time[i],
                    seq: i,
                }));
            }
        }

        let mut committed = 0usize;
        let mut skipped = 0usize;
        let mut next_fault = 0usize;
        while let Some(Reverse(entry)) = heap.pop() {
            let i = entry.seq;
            let t = tasks[i];
            if faulty && !alive[t.request] {
                continue;
            }
            if let Some(r) = t.resource {
                // The resource may have advanced past this entry's key since
                // it was pushed; re-queue with the corrected feasible start
                // so the heap order stays the true earliest-start order.
                let feasible = entry.start.max(resource_free[r as usize]);
                if feasible > entry.start {
                    heap.push(Reverse(ReadyTask {
                        start: feasible,
                        seq: i,
                    }));
                    continue;
                }
            }
            let start = entry.start;
            // Apply every availability flip due by this commit's start
            // before committing: commits happen in nondecreasing start
            // order, so no task starting at or after a flip has committed
            // when the flip is applied. A down-flip at `time` kills every
            // request that still has uncommitted work touching the failed
            // node — including tasks starting exactly at the flip instant.
            while next_fault < faults.len() && faults[next_fault].time <= start {
                let event = faults[next_fault];
                next_fault += 1;
                if event.up {
                    continue;
                }
                let v = event.node.0 as u32;
                for (task_idx, m) in tasks.iter().enumerate() {
                    if !done[task_idx] && alive[m.request] && (m.node_a == v || m.node_b == v) {
                        // Tasks are grouped by request in ascending order,
                        // so failures come out in request order per event.
                        alive[m.request] = false;
                        skipped += remaining[m.request] as usize;
                        remaining[m.request] = 0;
                        failures.push(FailureEvent {
                            request: m.request,
                            at: event.time,
                            node: event.node,
                        });
                    }
                }
            }
            if faulty && !alive[t.request] {
                continue;
            }
            let end = start + t.duration;
            if let Some(r) = t.resource {
                resource_free[r as usize] = end;
            }
            if let Some(addr) = t.processor {
                report.meter.record_busy(addr, t.duration)?;
            }
            if end > report.request_completion[t.request] {
                report.request_completion[t.request] = end;
            }
            // Commits happen in non-decreasing start order (every remaining
            // heap key and every future push is ≥ the popped key), so
            // `records` ends up sorted by start with submission-order ties —
            // the same order the reference engine produces.
            if detail == TraceDetail::Full {
                let local = i - request_base[t.request];
                let task = &requests[t.request].plan().tasks()[local];
                report.records.push(TaskRecord {
                    task: task.id,
                    request: t.request,
                    name: task.name.clone(),
                    start,
                    finish: end,
                    flops: t.flops,
                    bytes: t.bytes,
                    processor: t.processor,
                });
            }
            committed += 1;
            if faulty {
                done[i] = true;
                remaining[t.request] -= 1;
            }
            for &s in &succ[succ_offsets[i]..succ_offsets[i + 1]] {
                if end > ready_time[s] {
                    ready_time[s] = end;
                }
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    let start = match tasks[s].resource {
                        Some(r) => ready_time[s].max(resource_free[r as usize]),
                        None => ready_time[s],
                    };
                    heap.push(Reverse(ReadyTask { start, seq: s }));
                }
            }
        }
        if committed + skipped != n {
            return Err(SimError::InvalidPlan {
                what: "dependency deadlock: no ready task found".into(),
            });
        }

        report.makespan = report
            .request_completion
            .iter()
            .copied()
            .fold(0.0, f64::max);
        report
            .request_arrival
            .extend(requests.iter().map(StreamEntry::arrival));
        Ok(())
    }
}

/// Simulates a single plan starting at time zero.
///
/// # Errors
///
/// Returns an error when the plan is invalid or references unknown
/// processors/nodes.
pub fn simulate(plan: &ExecutionPlan, cluster: &Cluster) -> Result<SimReport, SimError> {
    simulate_stream(&[(0.0, plan)], cluster)
}

/// Simulates a stream of inference requests, each with an arrival time and a
/// plan. Resources are shared across requests, so a long-running request
/// delays later ones — the effect the paper's Fig. 6/7 experiments measure.
///
/// Plans are taken by [`Borrow`], so `&[(f64, ExecutionPlan)]`,
/// `&[(f64, Arc<ExecutionPlan>)]` and `&[(f64, &ExecutionPlan)]` all work —
/// shared plans are read in place, never copied.
///
/// # Errors
///
/// Returns an error when any plan is invalid, arrival times are not finite
/// and non-negative, or a plan references unknown processors/nodes.
pub fn simulate_stream<P: Borrow<ExecutionPlan>>(
    requests: &[(f64, P)],
    cluster: &Cluster,
) -> Result<SimReport, SimError> {
    simulate_stream_detailed(requests, cluster, TraceDetail::Full)
}

/// [`simulate_stream`] with an explicit [`TraceDetail`], still allocating a
/// fresh report per call.
///
/// # Errors
///
/// Same conditions as [`simulate_stream`].
pub fn simulate_stream_detailed<P: Borrow<ExecutionPlan>>(
    requests: &[(f64, P)],
    cluster: &Cluster,
    detail: TraceDetail,
) -> Result<SimReport, SimError> {
    let mut scratch = SimScratch::new();
    scratch.run(requests, cluster, detail, &[])?;
    Ok(std::mem::take(&mut scratch.report))
}

/// [`simulate_stream`] against caller-owned working memory: every internal
/// buffer and the returned report's buffers live in `scratch` and are reused
/// across calls, so steady-state re-simulation allocates nothing (see
/// [`SimScratch`]). The report borrow is valid until the next run.
///
/// # Errors
///
/// Same conditions as [`simulate_stream`]. On error the scratch stays valid
/// for further runs (its buffers are simply cleared again).
pub fn simulate_stream_in<'s, P: Borrow<ExecutionPlan>>(
    scratch: &'s mut SimScratch,
    requests: &[(f64, P)],
    cluster: &Cluster,
    detail: TraceDetail,
) -> Result<&'s SimReport, SimError> {
    scratch.run(requests, cluster, detail, &[])?;
    Ok(&scratch.report)
}

/// Simulates an **admitted** request stream: each entry is
/// `(arrival, admitted, plan)`, and the request's subgraph is released at
/// its admitted time while latency accounting still runs from arrival —
/// `SimReport::latencies` then includes the queueing delay the admission
/// layer imposed. With `admitted == arrival` for every entry this is
/// bit-identical to [`simulate_stream_detailed`].
///
/// # Errors
///
/// Same conditions as [`simulate_stream`], plus an error when any admitted
/// time is non-finite or earlier than its arrival.
pub fn simulate_admitted_stream<P: Borrow<ExecutionPlan>>(
    requests: &[(f64, f64, P)],
    cluster: &Cluster,
    detail: TraceDetail,
) -> Result<SimReport, SimError> {
    let mut scratch = SimScratch::new();
    scratch.run(requests, cluster, detail, &[])?;
    Ok(std::mem::take(&mut scratch.report))
}

/// [`simulate_admitted_stream`] against caller-owned working memory (see
/// [`SimScratch`]); the report borrow is valid until the next run.
///
/// # Errors
///
/// Same conditions as [`simulate_admitted_stream`]. On error the scratch
/// stays valid for further runs.
pub fn simulate_admitted_stream_in<'s, P: Borrow<ExecutionPlan>>(
    scratch: &'s mut SimScratch,
    requests: &[(f64, f64, P)],
    cluster: &Cluster,
    detail: TraceDetail,
) -> Result<&'s SimReport, SimError> {
    scratch.run(requests, cluster, detail, &[])?;
    Ok(&scratch.report)
}

/// Simulates an **admitted** request stream under a failure timeline — the
/// failure-aware admitted-stream mode.
///
/// `faults` is a time-sorted availability timeline (what
/// [`hidp_platform::ClusterTimeline::events`] yields). When a down-flip at
/// time `t` hits a node, every request that still has **unstarted** work
/// touching that node is killed: it surfaces as a [`FailureEvent`] instead
/// of a fictitious completion on dead hardware. Tasks that started before
/// the flip run to completion and keep their resource reservations — the
/// abandoned work occupies real hardware, exactly the cost a recovery
/// policy has to route around. Up-flips never affect in-flight work (new
/// capacity only matters to future planning, which the admission layer
/// re-keys by epoch fingerprint).
///
/// With no down-flips in `faults` this is **bit-identical** to
/// [`simulate_admitted_stream`] (pinned by test): the kill bookkeeping is
/// gated on the presence of down events and no commit arithmetic changes.
///
/// # Errors
///
/// Same conditions as [`simulate_admitted_stream`], plus an error when the
/// fault timeline is unsorted, non-finite, or names an unknown node.
pub fn simulate_admitted_stream_faulty<P: Borrow<ExecutionPlan>>(
    requests: &[(f64, f64, P)],
    cluster: &Cluster,
    faults: &[AvailabilityEvent],
    detail: TraceDetail,
) -> Result<(SimReport, Vec<FailureEvent>), SimError> {
    let mut scratch = SimScratch::new();
    scratch.run(requests, cluster, detail, faults)?;
    Ok((
        std::mem::take(&mut scratch.report),
        std::mem::take(&mut scratch.failures),
    ))
}

/// [`simulate_admitted_stream_faulty`] against caller-owned working memory
/// (see [`SimScratch`]); the report and failure borrows are valid until the
/// next run. Failures are ordered by flip time, then request index.
///
/// # Errors
///
/// Same conditions as [`simulate_admitted_stream_faulty`]. On error the
/// scratch stays valid for further runs.
pub fn simulate_admitted_stream_faulty_in<'s, P: Borrow<ExecutionPlan>>(
    scratch: &'s mut SimScratch,
    requests: &[(f64, f64, P)],
    cluster: &Cluster,
    faults: &[AvailabilityEvent],
    detail: TraceDetail,
) -> Result<(&'s SimReport, &'s [FailureEvent]), SimError> {
    scratch.run(requests, cluster, detail, faults)?;
    Ok((&scratch.report, &scratch.failures))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_platform::{presets, ProcessorIndex};

    fn addr(node: usize, proc: usize) -> ProcessorAddr {
        ProcessorAddr {
            node: NodeIndex(node),
            processor: ProcessorIndex(proc),
        }
    }

    #[test]
    fn sequential_chain_adds_durations() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let t = plan.add_transfer("xfer", NodeIndex(0), NodeIndex(1), 8_000_000, &[a]);
        let b = plan.add_compute("b", addr(1, 2), 1_000_000_000, 1.0, &[t]);
        let _ = b;
        let report = simulate(&plan, &cluster).unwrap();

        let gpu0 = cluster.processor(addr(0, 1)).unwrap();
        let gpu1 = cluster.processor(addr(1, 2)).unwrap();
        let expected = gpu0.compute_time(1_000_000_000, 1.0)
            + cluster
                .network()
                .transfer_time(NodeIndex(0), NodeIndex(1), 8_000_000)
            + gpu1.compute_time(1_000_000_000, 1.0);
        assert!((report.makespan - expected).abs() < 1e-9);
        assert_eq!(report.records.len(), 3);
        assert!((report.latency(0).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_on_different_processors_overlap() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 0), 2_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 2_000_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let cpu = cluster.processor(addr(0, 0)).unwrap();
        let slowest = cpu.compute_time(2_000_000_000, 1.0);
        // Parallel execution: makespan is the slower of the two, not the sum.
        assert!((report.makespan - slowest).abs() < 1e-9);
    }

    #[test]
    fn same_processor_tasks_serialise() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 1_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let gpu = cluster.processor(addr(0, 1)).unwrap();
        let single = gpu.compute_time(1_000_000_000, 1.0);
        assert!((report.makespan - 2.0 * single).abs() < 1e-9);
    }

    #[test]
    fn link_contention_serialises_transfers() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_transfer("x1", NodeIndex(0), NodeIndex(1), 40_000_000, &[]);
        plan.add_transfer("x2", NodeIndex(1), NodeIndex(0), 40_000_000, &[]);
        // Different node pair: can run in parallel with the above.
        plan.add_transfer("x3", NodeIndex(2), NodeIndex(3), 40_000_000, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let one = cluster
            .network()
            .transfer_time(NodeIndex(0), NodeIndex(1), 40_000_000);
        assert!((report.makespan - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn energy_reflects_busy_processors() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(1, 2), 6_600_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let dynamic = report.dynamic_energy(&cluster).unwrap();
        let gpu = cluster.processor(addr(1, 2)).unwrap();
        let expected = (gpu.active_power_w - gpu.idle_power_w) * report.makespan;
        assert!((dynamic - expected).abs() < 1e-6);
        assert!(report.total_energy(&cluster).unwrap() > dynamic);
    }

    #[test]
    fn stream_requests_queue_on_shared_resources() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 18_800_000_000, 1.0, &[]);
        // Two identical requests arriving together: the second must wait.
        let report =
            simulate_stream(&[(0.0, plan.clone()), (0.0, plan.clone())], &cluster).unwrap();
        let single = cluster
            .processor(addr(0, 1))
            .unwrap()
            .compute_time(18_800_000_000, 1.0);
        assert!((report.latency(0).unwrap() - single).abs() < 1e-9);
        assert!((report.latency(1).unwrap() - 2.0 * single).abs() < 1e-9);

        // Arriving after the first finished: no queueing delay.
        let report2 = simulate_stream(
            &[(0.0, plan.clone()), (2.0 * single, plan.clone())],
            &cluster,
        )
        .unwrap();
        assert!((report2.latency(1).unwrap() - single).abs() < 1e-9);
    }

    #[test]
    fn shared_arc_plans_match_owned_plans() {
        // The same stream through owned clones and through one shared Arc
        // must produce bit-identical reports — sharing is pure cost removal.
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 1), 900_000_000, 1.0, &[]);
        plan.add_transfer("t", NodeIndex(0), NodeIndex(2), 4_000_000, &[a]);
        let owned: Vec<(f64, ExecutionPlan)> =
            (0..5).map(|i| (i as f64 * 0.01, plan.clone())).collect();
        let shared_plan = std::sync::Arc::new(plan);
        let shared: Vec<(f64, std::sync::Arc<ExecutionPlan>)> = (0..5)
            .map(|i| (i as f64 * 0.01, std::sync::Arc::clone(&shared_plan)))
            .collect();
        let from_owned = simulate_stream(&owned, &cluster).unwrap();
        let from_shared = simulate_stream(&shared, &cluster).unwrap();
        assert_eq!(from_owned, from_shared);
    }

    #[test]
    fn summary_detail_matches_full_metrics_without_records() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 1), 900_000_000, 1.0, &[]);
        let t = plan.add_transfer("t", NodeIndex(0), NodeIndex(2), 4_000_000, &[a]);
        plan.add_compute("b", addr(2, 1), 700_000_000, 0.8, &[t]);
        let requests: Vec<(f64, ExecutionPlan)> =
            (0..4).map(|i| (i as f64 * 0.02, plan.clone())).collect();
        let full = simulate_stream_detailed(&requests, &cluster, TraceDetail::Full).unwrap();
        let summary = simulate_stream_detailed(&requests, &cluster, TraceDetail::Summary).unwrap();
        assert!(summary.records.is_empty());
        assert_eq!(full.records.len(), 12);
        // Every aggregate is bit-identical — including exact energy sums.
        assert_eq!(full.request_completion, summary.request_completion);
        assert_eq!(full.request_arrival, summary.request_arrival);
        assert_eq!(full.makespan, summary.makespan);
        assert_eq!(full.meter, summary.meter);
        assert_eq!(
            full.total_energy(&cluster).unwrap(),
            summary.total_energy(&cluster).unwrap()
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_different_streams() {
        // One scratch, interleaved runs of two differently-shaped streams:
        // every run must match the one-shot wrapper exactly, including after
        // the buffers were sized by a larger run.
        let cluster = presets::paper_cluster();
        let mut small = ExecutionPlan::new();
        small.add_compute("s", addr(0, 0), 500_000_000, 1.0, &[]);
        let mut big = ExecutionPlan::new();
        let a = big.add_compute("a", addr(0, 1), 900_000_000, 1.0, &[]);
        let t = big.add_transfer("t", NodeIndex(0), NodeIndex(3), 4_000_000, &[a]);
        big.add_compute("b", addr(3, 1), 700_000_000, 0.9, &[t]);

        let stream_a: Vec<(f64, ExecutionPlan)> =
            (0..8).map(|i| (i as f64 * 0.01, big.clone())).collect();
        let stream_b = vec![(0.0, small.clone()), (0.3, small.clone())];

        let mut scratch = SimScratch::new();
        for _ in 0..3 {
            for (stream, detail) in [
                (&stream_a, TraceDetail::Full),
                (&stream_b, TraceDetail::Full),
                (&stream_a, TraceDetail::Summary),
            ] {
                let expected = simulate_stream_detailed(stream, &cluster, detail).unwrap();
                let got = simulate_stream_in(&mut scratch, stream, &cluster, detail).unwrap();
                assert_eq!(*got, expected);
            }
        }
    }

    #[test]
    fn scratch_survives_an_erroring_run() {
        let cluster = presets::paper_cluster();
        let mut good = ExecutionPlan::new();
        good.add_compute("g", addr(0, 0), 1_000_000, 1.0, &[]);
        let mut bad = ExecutionPlan::new();
        bad.add_compute("b", addr(9, 0), 1, 1.0, &[]);

        let mut scratch = SimScratch::new();
        let expected = simulate_stream(&[(0.0, good.clone())], &cluster).unwrap();
        assert!(
            simulate_stream_in(&mut scratch, &[(0.0, bad)], &cluster, TraceDetail::Full).is_err()
        );
        let got =
            simulate_stream_in(&mut scratch, &[(0.0, good)], &cluster, TraceDetail::Full).unwrap();
        assert_eq!(*got, expected);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let cluster = presets::paper_cluster();
        assert!(simulate_stream(&[] as &[(f64, ExecutionPlan)], &cluster).is_err());
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(9, 0), 1, 1.0, &[]);
        assert!(simulate(&plan, &cluster).is_err());
        let mut plan2 = ExecutionPlan::new();
        plan2.add_compute("a", addr(0, 0), 1, 1.0, &[]);
        assert!(simulate_stream(&[(f64::NAN, plan2)], &cluster).is_err());
    }

    #[test]
    fn records_are_sorted_by_start_time() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 0), 1_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 500_000_000, 1.0, &[]);
        plan.add_compute("c", addr(0, 0), 100_000_000, 1.0, &[a]);
        let report = simulate(&plan, &cluster).unwrap();
        for pair in report.records.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        assert!(report.records.iter().all(|r| r.duration() > 0.0));
    }

    #[test]
    fn equal_start_tasks_commit_in_submission_order() {
        // Three identical tasks on the same processor, all ready at t = 0:
        // the heap must break the tie by submission order, so the records
        // come out a, b, c back to back.
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 1_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 1_000_000_000, 1.0, &[]);
        plan.add_compute("c", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let names: Vec<&str> = report.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        let single = cluster
            .processor(addr(0, 1))
            .unwrap()
            .compute_time(1_000_000_000, 1.0);
        for (i, record) in report.records.iter().enumerate() {
            assert_eq!(record.start, i as f64 * single);
        }
    }

    #[test]
    fn equal_start_requests_commit_in_request_order() {
        // Two single-task requests arriving at the same instant contend for
        // one processor: request 0 must run first (submission order).
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("only", addr(1, 2), 2_000_000_000, 1.0, &[]);
        let report =
            simulate_stream(&[(0.5, plan.clone()), (0.5, plan.clone())], &cluster).unwrap();
        assert_eq!(report.records[0].request, 0);
        assert_eq!(report.records[1].request, 1);
        assert!(report.latency(0).unwrap() < report.latency(1).unwrap());
    }

    #[test]
    fn negative_zero_arrival_ties_with_positive_zero() {
        // -0.0 is a valid arrival; it must not jump the submission-order
        // queue ahead of a +0.0 arrival (total_cmp orders -0.0 < 0.0, so
        // arrivals are normalised in the pre-pass).
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("only", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let report =
            simulate_stream(&[(0.0, plan.clone()), (-0.0, plan.clone())], &cluster).unwrap();
        assert_eq!(report.records[0].request, 0);
        assert_eq!(report.records[1].request, 1);
    }

    #[test]
    fn admitted_stream_with_admitted_equal_arrival_is_bit_identical() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 1), 900_000_000, 1.0, &[]);
        plan.add_transfer("t", NodeIndex(0), NodeIndex(2), 4_000_000, &[a]);
        let plain: Vec<(f64, ExecutionPlan)> =
            (0..6).map(|i| (i as f64 * 0.03, plan.clone())).collect();
        let gated: Vec<(f64, f64, ExecutionPlan)> =
            plain.iter().map(|(t, p)| (*t, *t, p.clone())).collect();
        for detail in [TraceDetail::Full, TraceDetail::Summary] {
            let from_plain = simulate_stream_detailed(&plain, &cluster, detail).unwrap();
            let from_gated = simulate_admitted_stream(&gated, &cluster, detail).unwrap();
            assert_eq!(from_plain, from_gated);
        }
    }

    #[test]
    fn admitted_time_gates_the_start_and_latency_includes_queueing() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("only", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let single = cluster
            .processor(addr(0, 1))
            .unwrap()
            .compute_time(1_000_000_000, 1.0);
        // Arrives at 0.1, admitted at 0.5: tasks start at 0.5, latency is
        // measured from arrival.
        let report =
            simulate_admitted_stream(&[(0.1, 0.5, plan.clone())], &cluster, TraceDetail::Full)
                .unwrap();
        assert_eq!(report.records[0].start, 0.5);
        assert!((report.latency(0).unwrap() - (0.4 + single)).abs() < 1e-12);
        assert_eq!(report.request_arrival, vec![0.1]);
    }

    #[test]
    fn admitted_before_arrival_is_rejected() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("only", addr(0, 0), 1, 1.0, &[]);
        assert!(
            simulate_admitted_stream(&[(1.0, 0.5, plan.clone())], &cluster, TraceDetail::Full)
                .is_err()
        );
        assert!(
            simulate_admitted_stream(&[(1.0, f64::NAN, plan)], &cluster, TraceDetail::Full)
                .is_err()
        );
    }

    #[test]
    fn faulty_mode_without_down_flips_is_bit_identical() {
        // The fault-free pin: an empty timeline AND a pure up-flip timeline
        // must both reproduce the plain admitted-stream engine exactly.
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 1), 900_000_000, 1.0, &[]);
        let t = plan.add_transfer("t", NodeIndex(0), NodeIndex(2), 4_000_000, &[a]);
        plan.add_compute("b", addr(2, 1), 700_000_000, 0.8, &[t]);
        let stream: Vec<(f64, f64, ExecutionPlan)> = (0..8)
            .map(|i| (i as f64 * 0.02, i as f64 * 0.02 + 0.01, plan.clone()))
            .collect();
        let ups = [
            AvailabilityEvent {
                time: 0.05,
                node: NodeIndex(3),
                up: true,
            },
            AvailabilityEvent {
                time: 0.09,
                node: NodeIndex(0),
                up: true,
            },
        ];
        for detail in [TraceDetail::Full, TraceDetail::Summary] {
            let plain = simulate_admitted_stream(&stream, &cluster, detail).unwrap();
            for faults in [&[] as &[AvailabilityEvent], &ups] {
                let (report, failures) =
                    simulate_admitted_stream_faulty(&stream, &cluster, faults, detail).unwrap();
                assert_eq!(report, plain);
                assert!(failures.is_empty());
            }
        }
    }

    #[test]
    fn down_flip_kills_unstarted_work_and_spares_started_work() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("only", addr(1, 2), 2_000_000_000, 1.0, &[]);
        let single = cluster
            .processor(addr(1, 2))
            .unwrap()
            .compute_time(2_000_000_000, 1.0);
        // Request 0 starts at t = 0 and is mid-flight when node 1 dies;
        // request 1 is queued behind it and has not started: only request 1
        // is killed, request 0 runs to completion.
        let stream = vec![(0.0, 0.0, plan.clone()), (0.0, 0.0, plan.clone())];
        let faults = [AvailabilityEvent {
            time: single * 0.5,
            node: NodeIndex(1),
            up: false,
        }];
        let (report, failures) =
            simulate_admitted_stream_faulty(&stream, &cluster, &faults, TraceDetail::Full).unwrap();
        assert_eq!(
            failures,
            vec![FailureEvent {
                request: 1,
                at: single * 0.5,
                node: NodeIndex(1),
            }]
        );
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].request, 0);
        assert!((report.request_completion[0] - single).abs() < 1e-12);
        // The killed request committed nothing.
        assert_eq!(report.request_completion[1], 0.0);
    }

    #[test]
    fn down_flip_at_time_zero_kills_every_resident_request() {
        // Failure at t = 0: nothing has started, so every request touching
        // the node is killed and nothing at all commits there.
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("only", addr(2, 1), 1_000_000_000, 1.0, &[]);
        let stream = vec![(0.0, 0.0, plan.clone()), (0.1, 0.1, plan.clone())];
        let faults = [AvailabilityEvent {
            time: 0.0,
            node: NodeIndex(2),
            up: false,
        }];
        let (report, failures) =
            simulate_admitted_stream_faulty(&stream, &cluster, &faults, TraceDetail::Full).unwrap();
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].request, 0);
        assert_eq!(failures[1].request, 1);
        assert!(failures.iter().all(|f| f.at == 0.0));
        assert!(report.records.is_empty());
        assert_eq!(report.makespan, 0.0);
    }

    #[test]
    fn transfer_endpoints_count_as_residency() {
        // A request whose only contact with the failed node is a transfer
        // endpoint is still killed — the link's far side is gone.
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 1), 2_000_000_000, 1.0, &[]);
        plan.add_transfer("t", NodeIndex(0), NodeIndex(3), 4_000_000, &[a]);
        let compute = cluster
            .processor(addr(0, 1))
            .unwrap()
            .compute_time(2_000_000_000, 1.0);
        // Node 3 dies while "a" is running on node 0: the transfer to node 3
        // has not started, so the request dies mid-flight.
        let faults = [AvailabilityEvent {
            time: compute * 0.5,
            node: NodeIndex(3),
            up: false,
        }];
        let (_, failures) = simulate_admitted_stream_faulty(
            &[(0.0, 0.0, plan)],
            &cluster,
            &faults,
            TraceDetail::Summary,
        )
        .unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].node, NodeIndex(3));
    }

    #[test]
    fn unsorted_or_invalid_fault_timelines_are_rejected() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("only", addr(0, 0), 1, 1.0, &[]);
        let stream = [(0.0, 0.0, plan)];
        let event = |time, node| AvailabilityEvent {
            time,
            node: NodeIndex(node),
            up: false,
        };
        for faults in [
            vec![event(1.0, 0), event(0.5, 1)],
            vec![event(f64::NAN, 0)],
            vec![event(-1.0, 0)],
            vec![event(1.0, 99)],
        ] {
            assert!(simulate_admitted_stream_faulty(
                &stream,
                &cluster,
                &faults,
                TraceDetail::Summary
            )
            .is_err());
        }
    }

    #[test]
    fn stale_heap_entries_are_requeued_not_dropped() {
        // d1 finishes before d2, so "late" becomes ready (and is pushed)
        // while its processor is still occupied by "early"; the heap entry
        // goes stale when "early" commits and must be re-queued, not run at
        // its original key.
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let d1 = plan.add_compute("d1", addr(0, 0), 100_000_000, 1.0, &[]);
        plan.add_compute("early", addr(0, 1), 2_000_000_000, 1.0, &[]);
        plan.add_compute("late", addr(0, 1), 1_000_000_000, 1.0, &[d1]);
        let report = simulate(&plan, &cluster).unwrap();
        let early = report.records.iter().find(|r| r.name == "early").unwrap();
        let late = report.records.iter().find(|r| r.name == "late").unwrap();
        assert_eq!(late.start, early.finish);
    }
}
