//! The discrete-event cluster simulator.
//!
//! Resources are (a) every processor in the cluster and (b) the wireless
//! link between every pair of distinct nodes. Tasks are scheduled with a
//! deterministic earliest-start list-scheduling policy: among all tasks whose
//! dependencies have finished, the one that can start first (ties broken by
//! submission order) is placed on its resource. Per-resource execution is
//! FIFO, matching the run-queue behaviour of the real middleware.

use crate::plan::{ExecutionPlan, PlanTask, TaskId, TaskKind};
use crate::SimError;
use hidp_platform::{Cluster, EnergyMeter, NodeIndex, ProcessorAddr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The record of one executed task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// The task id within its plan.
    pub task: TaskId,
    /// Index of the request the task belonged to (0 for single-plan runs).
    pub request: usize,
    /// Task label.
    pub name: String,
    /// Simulation time at which the task started, in seconds.
    pub start: f64,
    /// Simulation time at which the task finished, in seconds.
    pub finish: f64,
    /// Flops executed (zero for transfers).
    pub flops: u64,
    /// Bytes transferred (zero for compute tasks).
    pub bytes: u64,
    /// The processor used (None for transfers).
    pub processor: Option<ProcessorAddr>,
}

impl TaskRecord {
    /// Task duration in seconds.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// The result of simulating one or more plans on a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-task execution records, ordered by start time.
    pub records: Vec<TaskRecord>,
    /// Completion time of each request (seconds since simulation start).
    pub request_completion: Vec<f64>,
    /// Arrival time of each request.
    pub request_arrival: Vec<f64>,
    /// Busy-time accounting used for energy computation.
    pub meter: EnergyMeter,
    /// Time at which the last task finished.
    pub makespan: f64,
}

impl SimReport {
    /// Latency of request `i` (completion − arrival), in seconds.
    pub fn latency(&self, request: usize) -> Option<f64> {
        Some(self.request_completion.get(request)? - self.request_arrival.get(request)?)
    }

    /// Latencies of all requests, in seconds.
    pub fn latencies(&self) -> Vec<f64> {
        (0..self.request_completion.len())
            .filter_map(|i| self.latency(i))
            .collect()
    }

    /// Total energy over the makespan window, in joules.
    ///
    /// # Errors
    ///
    /// Propagates platform lookup failures for unknown processors.
    pub fn total_energy(&self, cluster: &Cluster) -> Result<f64, SimError> {
        Ok(self.meter.total_energy(cluster, self.makespan)?)
    }

    /// Dynamic (workload-attributable) energy in joules.
    ///
    /// # Errors
    ///
    /// Propagates platform lookup failures for unknown processors.
    pub fn dynamic_energy(&self, cluster: &Cluster) -> Result<f64, SimError> {
        Ok(self.meter.dynamic_energy(cluster)?)
    }
}

/// Resource identifier used internally by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    Processor(ProcessorAddr),
    Link(usize, usize),
}

fn link_key(a: NodeIndex, b: NodeIndex) -> Resource {
    if a.0 <= b.0 {
        Resource::Link(a.0, b.0)
    } else {
        Resource::Link(b.0, a.0)
    }
}

/// Simulates a single plan starting at time zero.
///
/// # Errors
///
/// Returns an error when the plan is invalid or references unknown
/// processors/nodes.
pub fn simulate(plan: &ExecutionPlan, cluster: &Cluster) -> Result<SimReport, SimError> {
    simulate_stream(&[(0.0, plan.clone())], cluster)
}

/// Simulates a stream of inference requests, each with an arrival time and a
/// plan. Resources are shared across requests, so a long-running request
/// delays later ones — the effect the paper's Fig. 6/7 experiments measure.
///
/// # Errors
///
/// Returns an error when any plan is invalid, arrival times are not finite
/// and non-negative, or a plan references unknown processors/nodes.
pub fn simulate_stream(
    requests: &[(f64, ExecutionPlan)],
    cluster: &Cluster,
) -> Result<SimReport, SimError> {
    if requests.is_empty() {
        return Err(SimError::InvalidPlan {
            what: "no requests to simulate".into(),
        });
    }
    struct Pending<'a> {
        request: usize,
        arrival: f64,
        task: &'a PlanTask,
        duration: f64,
        resource: Option<Resource>,
        processor: Option<ProcessorAddr>,
        flops: u64,
        bytes: u64,
    }

    let mut pending: Vec<Pending<'_>> = Vec::new();
    for (req_idx, (arrival, plan)) in requests.iter().enumerate() {
        if !(arrival.is_finite() && *arrival >= 0.0) {
            return Err(SimError::InvalidPlan {
                what: format!("request {req_idx} has invalid arrival time {arrival}"),
            });
        }
        plan.validate()?;
        for task in plan.tasks() {
            let (duration, resource, processor, flops, bytes) = match &task.kind {
                TaskKind::Compute {
                    target,
                    flops,
                    gpu_affinity,
                } => {
                    let proc = cluster.processor(*target)?;
                    (
                        proc.compute_time(*flops, *gpu_affinity),
                        Some(Resource::Processor(*target)),
                        Some(*target),
                        *flops,
                        0u64,
                    )
                }
                TaskKind::Transfer { from, to, bytes } => {
                    // Validate node indices.
                    cluster.node(*from)?;
                    cluster.node(*to)?;
                    let duration = cluster.network().transfer_time(*from, *to, *bytes);
                    let resource = if from == to {
                        None
                    } else {
                        Some(link_key(*from, *to))
                    };
                    (duration, resource, None, 0u64, *bytes)
                }
            };
            pending.push(Pending {
                request: req_idx,
                arrival: *arrival,
                task,
                duration,
                resource,
                processor,
                flops,
                bytes,
            });
        }
    }

    // finish[(request, task)] = finish time.
    let mut finish: HashMap<(usize, TaskId), f64> = HashMap::new();
    let mut resource_free: HashMap<Resource, f64> = HashMap::new();
    let mut done = vec![false; pending.len()];
    let mut records: Vec<TaskRecord> = Vec::with_capacity(pending.len());
    let mut meter = EnergyMeter::new();

    for _ in 0..pending.len() {
        // Find the ready task with the earliest feasible start time.
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in pending.iter().enumerate() {
            if done[i] {
                continue;
            }
            let deps_ready = p
                .task
                .deps
                .iter()
                .all(|d| finish.contains_key(&(p.request, *d)));
            if !deps_ready {
                continue;
            }
            let deps_finish = p
                .task
                .deps
                .iter()
                .map(|d| finish[&(p.request, *d)])
                .fold(0.0f64, f64::max);
            let resource_ready = p
                .resource
                .map(|r| resource_free.get(&r).copied().unwrap_or(0.0))
                .unwrap_or(0.0);
            let start = p.arrival.max(deps_finish).max(resource_ready);
            let better = match best {
                None => true,
                Some((_, s)) => start < s - 1e-15,
            };
            if better {
                best = Some((i, start));
            }
        }
        let (idx, start) = best.ok_or_else(|| SimError::InvalidPlan {
            what: "dependency deadlock: no ready task found".into(),
        })?;
        let p = &pending[idx];
        let end = start + p.duration;
        finish.insert((p.request, p.task.id), end);
        if let Some(r) = p.resource {
            resource_free.insert(r, end);
        }
        if let Some(addr) = p.processor {
            meter.record_busy(addr, p.duration)?;
        }
        records.push(TaskRecord {
            task: p.task.id,
            request: p.request,
            name: p.task.name.clone(),
            start,
            finish: end,
            flops: p.flops,
            bytes: p.bytes,
            processor: p.processor,
        });
        done[idx] = true;
    }

    records.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("times are finite"));
    let mut request_completion = vec![0.0f64; requests.len()];
    for ((request, _), end) in &finish {
        if *end > request_completion[*request] {
            request_completion[*request] = *end;
        }
    }
    let makespan = request_completion.iter().copied().fold(0.0, f64::max);
    let request_arrival = requests.iter().map(|(a, _)| *a).collect();

    Ok(SimReport {
        records,
        request_completion,
        request_arrival,
        meter,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_platform::{presets, ProcessorIndex};

    fn addr(node: usize, proc: usize) -> ProcessorAddr {
        ProcessorAddr {
            node: NodeIndex(node),
            processor: ProcessorIndex(proc),
        }
    }

    #[test]
    fn sequential_chain_adds_durations() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let t = plan.add_transfer("xfer", NodeIndex(0), NodeIndex(1), 8_000_000, &[a]);
        let b = plan.add_compute("b", addr(1, 2), 1_000_000_000, 1.0, &[t]);
        let _ = b;
        let report = simulate(&plan, &cluster).unwrap();

        let gpu0 = cluster.processor(addr(0, 1)).unwrap();
        let gpu1 = cluster.processor(addr(1, 2)).unwrap();
        let expected = gpu0.compute_time(1_000_000_000, 1.0)
            + cluster
                .network()
                .transfer_time(NodeIndex(0), NodeIndex(1), 8_000_000)
            + gpu1.compute_time(1_000_000_000, 1.0);
        assert!((report.makespan - expected).abs() < 1e-9);
        assert_eq!(report.records.len(), 3);
        assert!((report.latency(0).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_on_different_processors_overlap() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 0), 2_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 2_000_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let cpu = cluster.processor(addr(0, 0)).unwrap();
        let slowest = cpu.compute_time(2_000_000_000, 1.0);
        // Parallel execution: makespan is the slower of the two, not the sum.
        assert!((report.makespan - slowest).abs() < 1e-9);
    }

    #[test]
    fn same_processor_tasks_serialise() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 1_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 1_000_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let gpu = cluster.processor(addr(0, 1)).unwrap();
        let single = gpu.compute_time(1_000_000_000, 1.0);
        assert!((report.makespan - 2.0 * single).abs() < 1e-9);
    }

    #[test]
    fn link_contention_serialises_transfers() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_transfer("x1", NodeIndex(0), NodeIndex(1), 40_000_000, &[]);
        plan.add_transfer("x2", NodeIndex(1), NodeIndex(0), 40_000_000, &[]);
        // Different node pair: can run in parallel with the above.
        plan.add_transfer("x3", NodeIndex(2), NodeIndex(3), 40_000_000, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let one = cluster
            .network()
            .transfer_time(NodeIndex(0), NodeIndex(1), 40_000_000);
        assert!((report.makespan - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn energy_reflects_busy_processors() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(1, 2), 6_600_000_000, 1.0, &[]);
        let report = simulate(&plan, &cluster).unwrap();
        let dynamic = report.dynamic_energy(&cluster).unwrap();
        let gpu = cluster.processor(addr(1, 2)).unwrap();
        let expected = (gpu.active_power_w - gpu.idle_power_w) * report.makespan;
        assert!((dynamic - expected).abs() < 1e-6);
        assert!(report.total_energy(&cluster).unwrap() > dynamic);
    }

    #[test]
    fn stream_requests_queue_on_shared_resources() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 18_800_000_000, 1.0, &[]);
        // Two identical requests arriving together: the second must wait.
        let report =
            simulate_stream(&[(0.0, plan.clone()), (0.0, plan.clone())], &cluster).unwrap();
        let single = cluster
            .processor(addr(0, 1))
            .unwrap()
            .compute_time(18_800_000_000, 1.0);
        assert!((report.latency(0).unwrap() - single).abs() < 1e-9);
        assert!((report.latency(1).unwrap() - 2.0 * single).abs() < 1e-9);

        // Arriving after the first finished: no queueing delay.
        let report2 = simulate_stream(
            &[(0.0, plan.clone()), (2.0 * single, plan.clone())],
            &cluster,
        )
        .unwrap();
        assert!((report2.latency(1).unwrap() - single).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let cluster = presets::paper_cluster();
        assert!(simulate_stream(&[], &cluster).is_err());
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(9, 0), 1, 1.0, &[]);
        assert!(simulate(&plan, &cluster).is_err());
        let mut plan2 = ExecutionPlan::new();
        plan2.add_compute("a", addr(0, 0), 1, 1.0, &[]);
        assert!(simulate_stream(&[(f64::NAN, plan2)], &cluster).is_err());
    }

    #[test]
    fn records_are_sorted_by_start_time() {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 0), 1_000_000_000, 1.0, &[]);
        plan.add_compute("b", addr(0, 1), 500_000_000, 1.0, &[]);
        plan.add_compute("c", addr(0, 0), 100_000_000, 1.0, &[a]);
        let report = simulate(&plan, &cluster).unwrap();
        for pair in report.records.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
        assert!(report.records.iter().all(|r| r.duration() > 0.0));
    }
}
