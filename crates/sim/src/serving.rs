//! Serving-quality accounting: SLA classes, per-request queueing metrics and
//! latency-tail summaries.
//!
//! The serving runtime (hidp-core's `ServingScenario`) admits requests onto
//! the cluster at times later than their arrival — batching, priority
//! scheduling and capacity limits all introduce queueing. This module holds
//! the vocabulary for reporting that regime: the [`SlaClass`] a request is
//! served under (priority + latency deadline), one [`ServedRequestRecord`]
//! per request (arrival → admitted → completed), and the aggregate
//! [`ServingMetrics`] (p50/p95/p99 latency overall and per class, queueing
//! delay, deadline hits/misses) every serving experiment reports.
//!
//! All aggregates are plain deterministic functions of the records, so any
//! consumer — `TraceDetail::Summary` sweeps included — gets bit-identical
//! numbers from the same served stream.
//!
//! # The deadline rule
//!
//! An SLA miss is always measured **arrival → final completion**. A
//! request's latency runs from its original arrival to the completion of
//! whichever attempt finally served it, so everything the client actually
//! waited through is inside the measured window: queueing delay, every
//! retry backoff after an in-flight node failure (a retried request keeps
//! its original arrival — its deadline does not reset), and, at the fleet
//! tier, the WAN round trip of the final serving route. The
//! earliest-deadline admission policy ranks by the same absolute deadline
//! the miss check uses — `arrival + deadline` at the serving tier,
//! `arrival + deadline − wan_round_trip` at the fleet tier (the WAN toll is
//! paid outside the cluster, so the cluster-local slack is smaller by
//! exactly that much) — keeping ordering and reporting consistent.
//! Requests that never complete (shed at admission, aborted as unmeetable,
//! or permanently lost after exhausting retries) are accounted as drops in
//! the robustness counters, never as latency samples.

use crate::stats::{percentile, P2Quantile};
use serde::{Deserialize, Serialize};

/// The service-level class of a request: a scheduling priority and a
/// completion deadline (seconds from arrival).
///
/// Classes order from most to least urgent; [`SlaClass::priority`] is the
/// numeric rank (lower = more urgent) admission policies sort by.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum SlaClass {
    /// Interactive traffic: tightest deadline, served first under priority
    /// admission.
    Premium,
    /// The default class for ordinary requests.
    #[default]
    Standard,
    /// Throughput traffic (batch jobs, prefetches): loosest deadline.
    BestEffort,
}

impl SlaClass {
    /// All classes, most urgent first.
    pub const ALL: [SlaClass; 3] = [SlaClass::Premium, SlaClass::Standard, SlaClass::BestEffort];

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            SlaClass::Premium => "premium",
            SlaClass::Standard => "standard",
            SlaClass::BestEffort => "best_effort",
        }
    }

    /// Scheduling priority: lower is more urgent.
    pub fn priority(&self) -> u8 {
        match self {
            SlaClass::Premium => 0,
            SlaClass::Standard => 1,
            SlaClass::BestEffort => 2,
        }
    }

    /// The class deadline: a request meets its SLA when
    /// `completion - arrival <= deadline_seconds()`.
    pub fn deadline_seconds(&self) -> f64 {
        match self {
            SlaClass::Premium => 0.25,
            SlaClass::Standard => 1.0,
            SlaClass::BestEffort => 4.0,
        }
    }
}

impl std::fmt::Display for SlaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The served life cycle of one request: when it arrived, when the admission
/// layer released it onto the cluster, when its (possibly batched) plan
/// finished, and the SLA class it was served under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServedRequestRecord {
    /// Arrival time, seconds since scenario start.
    pub arrival: f64,
    /// Admission time (`>= arrival`); the subgraph starts here, not at
    /// arrival.
    pub admitted: f64,
    /// Completion time of the plan serving this request.
    pub completion: f64,
    /// The SLA class the request was served under.
    pub sla: SlaClass,
}

impl ServedRequestRecord {
    /// Time spent queueing before admission, seconds.
    pub fn queueing_delay(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// End-to-end latency (completion − arrival, queueing included), seconds.
    pub fn latency(&self) -> f64 {
        self.completion - self.arrival
    }

    /// Whether the request met its class deadline.
    pub fn deadline_met(&self) -> bool {
        self.latency() <= self.sla.deadline_seconds()
    }
}

/// Latency-tail summary of a set of requests, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of requests summarised.
    pub count: usize,
    /// Median latency.
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Mean latency.
    pub mean: f64,
}

impl LatencySummary {
    /// Summarises a latency slice; `None` when it is empty.
    pub fn of(latencies: &[f64]) -> Option<Self> {
        if latencies.is_empty() {
            return None;
        }
        Some(Self {
            count: latencies.len(),
            p50: percentile(latencies, 50.0).expect("non-empty"),
            p95: percentile(latencies, 95.0).expect("non-empty"),
            p99: percentile(latencies, 99.0).expect("non-empty"),
            mean: latencies.iter().sum::<f64>() / latencies.len() as f64,
        })
    }
}

/// Streaming latency-tail accumulator: mean, max and P²-estimated
/// p50/p95/p99 in constant memory. This is the bounded-memory counterpart of
/// [`LatencySummary::of`] — feed it one latency at a time and take a
/// [`LatencySummary`] at the end, without ever materialising the latency
/// vector. Below five observations the summary is exact; beyond that the
/// percentiles are [`P2Quantile`] estimates (accuracy pinned in
/// `stats::tests`), while `count`, `mean` and the separately tracked maximum
/// stay exact at any scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingTail {
    sum: f64,
    max: f64,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl StreamingTail {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            sum: 0.0,
            max: 0.0,
            p50: P2Quantile::new(50.0),
            p95: P2Quantile::new(95.0),
            p99: P2Quantile::new(99.0),
        }
    }

    /// Feeds one observation (a latency or delay, seconds).
    pub fn observe(&mut self, value: f64) {
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
        self.p50.observe(value);
        self.p95.observe(value);
        self.p99.observe(value);
    }

    /// Observations seen so far.
    pub fn count(&self) -> usize {
        self.p50.count()
    }

    /// Mean of all observations, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.sum / self.count() as f64
        }
    }

    /// Largest observation, 0 when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The tail summary, `None` before the first observation.
    pub fn summary(&self) -> Option<LatencySummary> {
        Some(LatencySummary {
            count: self.count(),
            p50: self.p50.value()?,
            p95: self.p95.value()?,
            p99: self.p99.value()?,
            mean: self.mean(),
        })
    }

    /// Forgets all observations.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

impl Default for StreamingTail {
    fn default() -> Self {
        Self::new()
    }
}

/// A mergeable log-binned latency histogram: the fleet tier's per-cluster
/// metrics rollup.
///
/// [`StreamingTail`]'s P² sketches cannot be combined across clusters — two
/// sketches do not merge into the sketch of the union — so a fleet that
/// advances many per-cluster serving loops in parallel needs an accumulator
/// whose merge is *exact* and order-independent: bin counts add. Each
/// cluster worker feeds its own histogram; the rollup merges them in cluster
/// index order, which makes the fleet summary bit-identical at any worker
/// thread count.
///
/// 256 logarithmic bins span 100 µs to 10⁴ s (~7.5% relative width);
/// `count`, `mean`, `min` and `max` are exact, quantiles are bin-resolution
/// estimates (the geometric mean of the containing bin's bounds, clamped to
/// the observed range). Everything is `Copy` — no heap, ~2 KB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyHistogram {
    bins: [u64; Self::BINS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl LatencyHistogram {
    const BINS: usize = 256;
    const LO: f64 = 1e-4;
    const HI: f64 = 1e4;

    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            bins: [0; Self::BINS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// The bin a value lands in: 0 is the underflow bucket, `BINS - 1` the
    /// overflow bucket, everything between log-spaced over `LO..HI`.
    fn bin_of(value: f64) -> usize {
        // NaN deliberately lands in the underflow bucket too.
        if value.is_nan() || value <= Self::LO {
            return 0;
        }
        if value >= Self::HI {
            return Self::BINS - 1;
        }
        let t = (value / Self::LO).ln() / (Self::HI / Self::LO).ln();
        1 + (t * (Self::BINS - 2) as f64) as usize
    }

    /// The lower and upper bounds of a bin.
    fn bin_bounds(bin: usize) -> (f64, f64) {
        if bin == 0 {
            return (0.0, Self::LO);
        }
        let span = (Self::HI / Self::LO).ln();
        let per = span / (Self::BINS - 2) as f64;
        let lo = Self::LO * ((bin - 1) as f64 * per).exp();
        let hi = if bin == Self::BINS - 1 {
            f64::INFINITY
        } else {
            Self::LO * (bin as f64 * per).exp()
        };
        (lo, hi)
    }

    /// Feeds one observation (a latency, seconds).
    pub fn observe(&mut self, value: f64) {
        self.bins[Self::bin_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Merges another histogram in: bin counts add, so
    /// `a.merge(&b)` summarises exactly the union of the two observation
    /// streams — the property P² sketches lack.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.bins.iter_mut().zip(other.bins.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Observations seen so far.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Mean of all observations, 0 when empty (exact).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation, 0 when empty (exact).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Smallest observation, 0 when empty (exact).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The `q`-th percentile (0–100), `None` when empty: the geometric mean
    /// of the containing bin's bounds, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bin, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = Self::bin_bounds(bin);
                if !hi.is_finite() {
                    // Overflow bucket: the exact max is the best estimate.
                    return Some(self.max);
                }
                let mid = (lo * hi).sqrt().max(lo);
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The tail summary (p50/p95/p99 at bin resolution; count and mean
    /// exact), `None` before the first observation.
    pub fn summary(&self) -> Option<LatencySummary> {
        Some(LatencySummary {
            count: self.count(),
            p50: self.quantile(50.0)?,
            p95: self.quantile(95.0)?,
            p99: self.quantile(99.0)?,
            mean: self.mean(),
        })
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Aggregates for one SLA class present in a served stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaClassReport {
    /// The class.
    pub class: SlaClass,
    /// Latency tail of the class's requests.
    pub latency: LatencySummary,
    /// Mean queueing delay of the class's requests, seconds.
    pub mean_queueing_delay: f64,
    /// Requests of this class that missed their deadline.
    pub deadline_misses: usize,
}

impl SlaClassReport {
    /// Fraction of this class's requests that missed their deadline.
    pub fn miss_rate(&self) -> f64 {
        self.deadline_misses as f64 / self.latency.count as f64
    }
}

/// The serving-quality report of one served stream: overall latency tail,
/// queueing delay, deadline accounting, and per-class breakdowns (classes
/// absent from the stream are omitted; present classes appear in
/// [`SlaClass::ALL`] order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingMetrics {
    /// Total requests served.
    pub requests: usize,
    /// Latency tail over all requests.
    pub latency: LatencySummary,
    /// Mean queueing delay over all requests, seconds.
    pub mean_queueing_delay: f64,
    /// Worst queueing delay, seconds.
    pub max_queueing_delay: f64,
    /// Requests that missed their class deadline.
    pub deadline_misses: usize,
    /// Per-class breakdowns, most urgent class first.
    pub per_class: Vec<SlaClassReport>,
}

impl ServingMetrics {
    /// Aggregates a set of served-request records; `None` when empty.
    pub fn from_records(records: &[ServedRequestRecord]) -> Option<Self> {
        if records.is_empty() {
            return None;
        }
        let latencies: Vec<f64> = records.iter().map(ServedRequestRecord::latency).collect();
        let queueing: Vec<f64> = records
            .iter()
            .map(ServedRequestRecord::queueing_delay)
            .collect();
        let per_class = SlaClass::ALL
            .iter()
            .filter_map(|&class| {
                let class_latencies: Vec<f64> = records
                    .iter()
                    .filter(|r| r.sla == class)
                    .map(ServedRequestRecord::latency)
                    .collect();
                let latency = LatencySummary::of(&class_latencies)?;
                let class_records = records.iter().filter(|r| r.sla == class);
                Some(SlaClassReport {
                    class,
                    latency,
                    mean_queueing_delay: class_records
                        .clone()
                        .map(ServedRequestRecord::queueing_delay)
                        .sum::<f64>()
                        / class_latencies.len() as f64,
                    deadline_misses: class_records.filter(|r| !r.deadline_met()).count(),
                })
            })
            .collect();
        Some(Self {
            requests: records.len(),
            latency: LatencySummary::of(&latencies).expect("non-empty"),
            mean_queueing_delay: queueing.iter().sum::<f64>() / queueing.len() as f64,
            max_queueing_delay: queueing.iter().copied().fold(0.0, f64::max),
            deadline_misses: records.iter().filter(|r| !r.deadline_met()).count(),
            per_class,
        })
    }

    /// Fraction of all requests that missed their deadline.
    pub fn sla_miss_rate(&self) -> f64 {
        self.deadline_misses as f64 / self.requests as f64
    }

    /// The report for one class, if any of its requests were served.
    pub fn class(&self, class: SlaClass) -> Option<&SlaClassReport> {
        self.per_class.iter().find(|c| c.class == class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(arrival: f64, admitted: f64, completion: f64, sla: SlaClass) -> ServedRequestRecord {
        ServedRequestRecord {
            arrival,
            admitted,
            completion,
            sla,
        }
    }

    #[test]
    fn classes_order_by_urgency_and_deadline() {
        assert_eq!(SlaClass::ALL.len(), 3);
        for pair in SlaClass::ALL.windows(2) {
            assert!(pair[0].priority() < pair[1].priority());
            assert!(pair[0].deadline_seconds() < pair[1].deadline_seconds());
        }
        assert_eq!(SlaClass::default(), SlaClass::Standard);
        assert_eq!(SlaClass::Premium.to_string(), "premium");
        assert_eq!(SlaClass::BestEffort.name(), "best_effort");
    }

    #[test]
    fn record_derives_queueing_latency_and_deadline() {
        let r = record(1.0, 1.5, 1.7, SlaClass::Premium);
        assert!((r.queueing_delay() - 0.5).abs() < 1e-12);
        assert!((r.latency() - 0.7).abs() < 1e-12);
        // 0.7 s > the 0.25 s premium deadline.
        assert!(!r.deadline_met());
        assert!(record(1.0, 1.0, 1.2, SlaClass::Premium).deadline_met());
    }

    #[test]
    fn metrics_aggregate_per_class_in_urgency_order() {
        let records = vec![
            record(0.0, 0.0, 0.1, SlaClass::BestEffort),
            record(0.0, 0.2, 0.5, SlaClass::Premium), // misses 0.25 s
            record(0.1, 0.1, 0.2, SlaClass::Premium),
            record(0.2, 0.2, 0.4, SlaClass::Standard),
        ];
        let metrics = ServingMetrics::from_records(&records).unwrap();
        assert_eq!(metrics.requests, 4);
        assert_eq!(metrics.deadline_misses, 1);
        assert!((metrics.sla_miss_rate() - 0.25).abs() < 1e-12);
        assert!((metrics.max_queueing_delay - 0.2).abs() < 1e-12);
        // Present classes in ALL order.
        let classes: Vec<SlaClass> = metrics.per_class.iter().map(|c| c.class).collect();
        assert_eq!(
            classes,
            vec![SlaClass::Premium, SlaClass::Standard, SlaClass::BestEffort]
        );
        let premium = metrics.class(SlaClass::Premium).unwrap();
        assert_eq!(premium.latency.count, 2);
        assert_eq!(premium.deadline_misses, 1);
        assert!((premium.miss_rate() - 0.5).abs() < 1e-12);
        assert!((premium.mean_queueing_delay - 0.1).abs() < 1e-12);
        assert!(metrics.class(SlaClass::Standard).is_some());
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(ServingMetrics::from_records(&[]).is_none());
        assert!(LatencySummary::of(&[]).is_none());
        let one = LatencySummary::of(&[0.3]).unwrap();
        assert_eq!(one.count, 1);
        assert_eq!(one.p50, 0.3);
        assert_eq!(one.p99, 0.3);
        assert_eq!(one.mean, 0.3);
    }

    #[test]
    fn streaming_tail_is_exact_below_five_and_tracks_beyond() {
        let mut tail = StreamingTail::new();
        assert_eq!(tail.summary(), None);
        assert_eq!(tail.count(), 0);
        assert_eq!(tail.mean(), 0.0);
        let small = [0.4, 0.1, 0.3, 0.2];
        for v in small {
            tail.observe(v);
        }
        let summary = tail.summary().unwrap();
        let exact = LatencySummary::of(&small).unwrap();
        assert_eq!(summary, exact);
        assert!((tail.max() - 0.4).abs() < 1e-12);

        // Larger stream: mean and max stay exact, percentiles stay close.
        let values: Vec<f64> = (0..1_000).map(|i| 0.001 * (i % 97 + 1) as f64).collect();
        tail.reset();
        assert_eq!(tail.count(), 0);
        for &v in &values {
            tail.observe(v);
        }
        let summary = tail.summary().unwrap();
        let exact = LatencySummary::of(&values).unwrap();
        assert_eq!(summary.count, exact.count);
        assert!((summary.mean - exact.mean).abs() < 1e-12);
        assert!((tail.max() - 0.097).abs() < 1e-12);
        for (estimated, reference) in [
            (summary.p50, exact.p50),
            (summary.p95, exact.p95),
            (summary.p99, exact.p99),
        ] {
            assert!(
                (estimated - reference).abs() / reference < 0.05,
                "estimated {estimated} vs exact {reference}"
            );
        }
    }

    #[test]
    fn absent_classes_are_omitted() {
        let records = vec![record(0.0, 0.0, 0.1, SlaClass::Standard)];
        let metrics = ServingMetrics::from_records(&records).unwrap();
        assert_eq!(metrics.per_class.len(), 1);
        assert!(metrics.class(SlaClass::Premium).is_none());
    }

    #[test]
    fn histogram_tracks_exact_moments_and_bin_resolution_quantiles() {
        let mut hist = LatencyHistogram::new();
        assert_eq!(hist.summary(), None);
        assert_eq!(hist.quantile(50.0), None);
        assert_eq!(hist.mean(), 0.0);
        assert_eq!(hist.min(), 0.0);
        let values: Vec<f64> = (0..1_000).map(|i| 0.001 * (i % 97 + 1) as f64).collect();
        for &v in &values {
            hist.observe(v);
        }
        let summary = hist.summary().unwrap();
        let exact = LatencySummary::of(&values).unwrap();
        assert_eq!(summary.count, exact.count);
        assert!((summary.mean - exact.mean).abs() < 1e-12);
        assert!((hist.max() - 0.097).abs() < 1e-12);
        assert!((hist.min() - 0.001).abs() < 1e-12);
        // Bins are ~7.5% wide, so quantiles land within ~8% of exact.
        for (estimated, reference) in [
            (summary.p50, exact.p50),
            (summary.p95, exact.p95),
            (summary.p99, exact.p99),
        ] {
            assert!(
                (estimated - reference).abs() / reference < 0.08,
                "estimated {estimated} vs exact {reference}"
            );
        }
        // Out-of-range observations land in the clamp buckets, still exact
        // in count/mean/min/max.
        hist.observe(0.0);
        hist.observe(5e4);
        assert_eq!(hist.count(), 1_002);
        assert_eq!(hist.max(), 5e4);
        assert_eq!(hist.min(), 0.0);
        assert_eq!(hist.quantile(100.0), Some(5e4));
    }

    #[test]
    fn histogram_merge_equals_union_stream() {
        // The rollup property StreamingTail lacks: merging per-cluster
        // histograms is exactly the histogram of the concatenated stream.
        let all: Vec<f64> = (0..500).map(|i| 0.002 * (i % 41 + 1) as f64).collect();
        let mut merged = LatencyHistogram::new();
        for (half, chunk) in all.chunks(250).enumerate() {
            let mut part = LatencyHistogram::new();
            for &v in chunk {
                part.observe(v);
            }
            assert_eq!(part.count(), 250, "half {half}");
            merged.merge(&part);
        }
        let mut whole = LatencyHistogram::new();
        for &v in &all {
            whole.observe(v);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.quantile(50.0), whole.quantile(50.0));
        assert_eq!(merged.quantile(99.0), whole.quantile(99.0));
        assert_eq!(merged.max(), whole.max());
        assert_eq!(merged.min(), whole.min());
        assert!((merged.mean() - whole.mean()).abs() < 1e-12);
        // Merging an empty histogram is the identity.
        let before = merged;
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged, before);
    }
}
