//! Execution plans: the device-level schedules produced by HiDP and the
//! baseline strategies, consumed by the simulator.
//!
//! A plan is a DAG of tasks. Compute tasks occupy one processor for a
//! duration derived from the analytical cost model; transfer tasks occupy
//! the wireless link between two nodes. This is the common currency through
//! which all strategies are compared: a strategy is exactly a function from
//! `(DnnGraph, Cluster)` to `ExecutionPlan`.

use crate::SimError;
use hidp_platform::{NodeIndex, ProcessorAddr};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An interned, cheaply clonable task label.
///
/// A plan carries one label per task, and the simulator copies that label
/// into every [`crate::TaskRecord`] it emits — once per task per run. With
/// owned `String`s that copy was the dominant allocation of the warm
/// evaluation path (one heap allocation per task per simulation); `Label`
/// wraps an `Arc<str>`, so cloning is a reference-count increment and the
/// character data is shared between the plan and every record emitted from
/// it. Everything observable — `Display`, comparisons, ordering, the
/// hand-rolled JSON emitters — sees exactly the text the plan was built
/// with, so interning changes cost, never output.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label(Arc<str>);

impl Label {
    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Label {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Self(Arc::from(s))
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Self(Arc::from(s))
    }
}

impl From<&String> for Label {
    fn from(s: &String) -> Self {
        Self(Arc::from(s.as_str()))
    }
}

impl From<Arc<str>> for Label {
    fn from(s: Arc<str>) -> Self {
        Self(s)
    }
}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<Label> for str {
    fn eq(&self, other: &Label) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Label> for &str {
    fn eq(&self, other: &Label) -> bool {
        *self == other.as_str()
    }
}

/// Identifier of a task inside an [`ExecutionPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What a task does and which resource it occupies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Run `flops` of DNN work on one processor.
    Compute {
        /// The processor executing the work.
        target: ProcessorAddr,
        /// Amount of work in floating point operations.
        flops: u64,
        /// Flops-weighted GPU affinity of the work (0..=1), which determines
        /// the processor's effective throughput.
        gpu_affinity: f64,
    },
    /// Move `bytes` from one node to another over the wireless network.
    /// Transfers within the same node are free.
    Transfer {
        /// Sending node.
        from: NodeIndex,
        /// Receiving node.
        to: NodeIndex,
        /// Payload size in bytes.
        bytes: u64,
    },
}

/// One schedulable unit in a plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanTask {
    /// Task identifier (position in the plan).
    pub id: TaskId,
    /// Human-readable label used in traces (e.g. `"block2@jetson-tx2/gpu"`),
    /// interned so record emission clones a pointer, not the text.
    pub name: Label,
    /// What the task does.
    pub kind: TaskKind,
    /// Tasks that must finish before this one can start.
    pub deps: Vec<TaskId>,
}

/// A complete schedule for one inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    tasks: Vec<PlanTask>,
    /// The launch batch the plan's compute costs are evaluated at (≥ 1):
    /// the batch dimension of the graph the plan was built for. The
    /// simulator divides compute durations by the target processor's
    /// [`hidp_platform::Processor::batch_efficiency`] at this batch, so
    /// coalesced launches run sublinearly in the compute-bound regime.
    /// Defaults to 1, where the cost model is bit-identical to the
    /// unbatched one.
    batch: usize,
}

impl Default for ExecutionPlan {
    fn default() -> Self {
        Self {
            tasks: Vec::new(),
            batch: 1,
        }
    }
}

impl ExecutionPlan {
    /// Creates an empty plan (launch batch 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// The launch batch the plan's compute costs are evaluated at (≥ 1).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Sets the launch batch (clamped to ≥ 1). `hidp_core::PlanCache`
    /// stamps every freshly planned `ExecutionPlan` with its graph's batch
    /// dimension, so cached plans always carry the batch they were costed
    /// for.
    pub fn set_batch(&mut self, batch: usize) {
        self.batch = batch.max(1);
    }

    /// Sets the launch batch (builder style, clamped to ≥ 1).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.set_batch(batch);
        self
    }

    /// Adds a compute task and returns its id.
    pub fn add_compute(
        &mut self,
        name: impl Into<Label>,
        target: ProcessorAddr,
        flops: u64,
        gpu_affinity: f64,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(
            name,
            TaskKind::Compute {
                target,
                flops,
                gpu_affinity,
            },
            deps,
        )
    }

    /// Adds a transfer task and returns its id.
    pub fn add_transfer(
        &mut self,
        name: impl Into<Label>,
        from: NodeIndex,
        to: NodeIndex,
        bytes: u64,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(name, TaskKind::Transfer { from, to, bytes }, deps)
    }

    fn push(&mut self, name: impl Into<Label>, kind: TaskKind, deps: &[TaskId]) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(PlanTask {
            id,
            name: name.into(),
            kind,
            deps: deps.to_vec(),
        });
        id
    }

    /// All tasks in insertion order.
    pub fn tasks(&self) -> &[PlanTask] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the plan contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total compute flops scheduled by the plan.
    pub fn total_flops(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| match &t.kind {
                TaskKind::Compute { flops, .. } => *flops,
                TaskKind::Transfer { .. } => 0,
            })
            .sum()
    }

    /// Total bytes moved across node boundaries.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| match &t.kind {
                TaskKind::Transfer { from, to, bytes } if from != to => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Validates that every dependency refers to an earlier task (which also
    /// guarantees acyclicity) and that the plan is non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidPlan`] or [`SimError::UnknownTask`] on
    /// violation.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.tasks.is_empty() {
            return Err(SimError::InvalidPlan {
                what: "plan has no tasks".into(),
            });
        }
        for (i, task) in self.tasks.iter().enumerate() {
            if task.id.0 != i {
                return Err(SimError::InvalidPlan {
                    what: format!("task `{}` has id {} but position {i}", task.name, task.id),
                });
            }
            for dep in &task.deps {
                if dep.0 >= self.tasks.len() {
                    return Err(SimError::UnknownTask { id: dep.0 });
                }
                if dep.0 >= i {
                    return Err(SimError::InvalidPlan {
                        what: format!(
                            "task `{}` depends on task {} that does not precede it",
                            task.name, dep.0
                        ),
                    });
                }
            }
            if let TaskKind::Compute { gpu_affinity, .. } = &task.kind {
                if !gpu_affinity.is_finite() {
                    return Err(SimError::InvalidPlan {
                        what: format!("task `{}` has a non-finite gpu affinity", task.name),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_platform::{NodeIndex, ProcessorIndex};

    fn addr(node: usize, proc: usize) -> ProcessorAddr {
        ProcessorAddr {
            node: NodeIndex(node),
            processor: ProcessorIndex(proc),
        }
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut plan = ExecutionPlan::new();
        let a = plan.add_compute("a", addr(0, 0), 100, 1.0, &[]);
        let b = plan.add_transfer("b", NodeIndex(0), NodeIndex(1), 50, &[a]);
        let c = plan.add_compute("c", addr(1, 0), 200, 0.5, &[b]);
        assert_eq!((a, b, c), (TaskId(0), TaskId(1), TaskId(2)));
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.total_flops(), 300);
        assert_eq!(plan.total_transfer_bytes(), 50);
    }

    #[test]
    fn same_node_transfers_do_not_count() {
        let mut plan = ExecutionPlan::new();
        plan.add_transfer("loop", NodeIndex(1), NodeIndex(1), 1000, &[]);
        assert_eq!(plan.total_transfer_bytes(), 0);
    }

    #[test]
    fn forward_dependencies_are_rejected() {
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 0), 1, 1.0, &[TaskId(1)]);
        plan.add_compute("b", addr(0, 0), 1, 1.0, &[]);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn unknown_dependency_is_rejected() {
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 0), 1, 1.0, &[TaskId(7)]);
        assert!(matches!(
            plan.validate(),
            Err(SimError::UnknownTask { id: 7 })
        ));
    }

    #[test]
    fn empty_plan_is_invalid() {
        assert!(ExecutionPlan::new().validate().is_err());
    }

    #[test]
    fn non_finite_affinity_is_rejected() {
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 0), 1, f64::NAN, &[]);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn batch_defaults_to_one_and_clamps() {
        let plan = ExecutionPlan::new();
        assert_eq!(plan.batch(), 1);
        assert_eq!(plan.with_batch(0).batch(), 1);
        let mut plan = ExecutionPlan::new().with_batch(4);
        assert_eq!(plan.batch(), 4);
        plan.set_batch(8);
        assert_eq!(plan.batch(), 8);
        // The batch is part of plan identity.
        let mut a = ExecutionPlan::new();
        a.add_compute("a", addr(0, 0), 1, 1.0, &[]);
        let b = a.clone().with_batch(2);
        assert_ne!(a, b);
    }

    #[test]
    fn labels_behave_like_the_strings_they_intern() {
        let mut plan = ExecutionPlan::new();
        plan.add_compute(format!("block{}@gpu", 2), addr(0, 1), 1, 1.0, &[]);
        let name = &plan.tasks()[0].name;
        assert_eq!(name.as_str(), "block2@gpu");
        assert_eq!(*name, "block2@gpu");
        assert_eq!("block2@gpu", *name);
        assert_eq!(format!("{name}"), "block2@gpu");
        // Cloning shares the interned text instead of copying it.
        let clone = name.clone();
        assert_eq!(&clone, name);
        assert!(std::ptr::eq(clone.as_str(), name.as_str()));
        // All construction routes produce the same label.
        assert_eq!(Label::from("x"), Label::from("x".to_string()));
        assert_eq!(Label::from(&"x".to_string()), Label::from(Arc::from("x")));
    }
}
