//! Statistics helpers over simulation reports: throughput, performance
//! timelines (GFLOP/s over time, Fig. 6) and summary aggregates.

use crate::engine::SimReport;
use serde::{Deserialize, Serialize};

/// One bin of the performance-over-time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineBin {
    /// Start of the bin in seconds.
    pub start: f64,
    /// End of the bin in seconds.
    pub end: f64,
    /// Average delivered performance in GFLOP/s during the bin.
    pub gflops_per_second: f64,
}

/// Computes the delivered GFLOP/s in fixed-width bins over the whole
/// simulation (the series plotted in the paper's Fig. 6).
///
/// Compute work is attributed uniformly over each task's execution interval.
/// Returns an empty vector when `bin_seconds` is not positive or the report
/// is empty.
pub fn performance_timeline(report: &SimReport, bin_seconds: f64) -> Vec<TimelineBin> {
    if bin_seconds <= 0.0 || bin_seconds.is_nan() || report.makespan <= 0.0 {
        return Vec::new();
    }
    let bins = (report.makespan / bin_seconds).ceil() as usize;
    let mut flops_per_bin = vec![0.0f64; bins.max(1)];
    for record in &report.records {
        if record.flops == 0 || record.duration() <= 0.0 {
            continue;
        }
        let rate = record.flops as f64 / record.duration();
        let first_bin = (record.start / bin_seconds).floor() as usize;
        let last_bin = ((record.finish / bin_seconds).ceil() as usize).min(bins);
        for (bin, slot) in flops_per_bin
            .iter_mut()
            .enumerate()
            .take(last_bin)
            .skip(first_bin)
        {
            let bin_start = bin as f64 * bin_seconds;
            let bin_end = bin_start + bin_seconds;
            let overlap = (record.finish.min(bin_end) - record.start.max(bin_start)).max(0.0);
            *slot += rate * overlap;
        }
    }
    flops_per_bin
        .into_iter()
        .enumerate()
        .map(|(i, flops)| TimelineBin {
            start: i as f64 * bin_seconds,
            end: (i + 1) as f64 * bin_seconds,
            gflops_per_second: flops / bin_seconds / 1e9,
        })
        .collect()
}

/// Number of completed inferences per `window_seconds`, assuming the
/// simulated request pattern repeats back-to-back (the paper reports
/// inferences per 100 s). Returns zero for an empty report.
pub fn throughput_per_window(report: &SimReport, window_seconds: f64) -> f64 {
    if report.makespan <= 0.0 || window_seconds <= 0.0 || window_seconds.is_nan() {
        return 0.0;
    }
    report.request_completion.len() as f64 * window_seconds / report.makespan
}

/// The `p`-th percentile (0–100) of a slice using linear interpolation
/// between order statistics, `None` when the slice is empty or `p` is
/// outside 0..=100. Used for the latency tail metrics (p50/p95/p99) of the
/// Poisson stress experiment.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are comparable"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    Some(sorted[lower] * (1.0 - weight) + sorted[upper] * weight)
}

/// Mean of a slice, `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric-mean speedup of `baseline` over `candidate` latencies
/// (values > 1 mean the candidate is faster). `None` when the slices are
/// empty or of different lengths.
pub fn geomean_speedup(baseline: &[f64], candidate: &[f64]) -> Option<f64> {
    if baseline.is_empty() || baseline.len() != candidate.len() {
        return None;
    }
    let log_sum: f64 = baseline
        .iter()
        .zip(candidate.iter())
        .map(|(b, c)| (b / c).ln())
        .sum();
    Some((log_sum / baseline.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutionPlan;
    use crate::simulate;
    use hidp_platform::{presets, NodeIndex, ProcessorAddr, ProcessorIndex};

    fn addr(node: usize, proc: usize) -> ProcessorAddr {
        ProcessorAddr {
            node: NodeIndex(node),
            processor: ProcessorIndex(proc),
        }
    }

    fn sample_report() -> SimReport {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 1_880_000_000, 1.0, &[]);
        simulate(&plan, &cluster).unwrap()
    }

    #[test]
    fn timeline_integrates_to_total_flops() {
        let report = sample_report();
        let bins = performance_timeline(&report, 0.1);
        let integrated: f64 = bins
            .iter()
            .map(|b| b.gflops_per_second * 1e9 * (b.end - b.start))
            .sum();
        let total: u64 = report.records.iter().map(|r| r.flops).sum();
        assert!((integrated - total as f64).abs() / (total as f64) < 1e-6);
    }

    #[test]
    fn timeline_handles_invalid_bins() {
        let report = sample_report();
        assert!(performance_timeline(&report, 0.0).is_empty());
        assert!(performance_timeline(&report, -1.0).is_empty());
    }

    #[test]
    fn throughput_scales_with_window() {
        let report = sample_report();
        let per_100 = throughput_per_window(&report, 100.0);
        let per_10 = throughput_per_window(&report, 10.0);
        assert!((per_100 / per_10 - 10.0).abs() < 1e-9);
        assert_eq!(throughput_per_window(&report, 0.0), 0.0);
    }

    #[test]
    fn percentile_interpolates_order_statistics() {
        let values = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        assert_eq!(percentile(&values, 100.0), Some(4.0));
        assert_eq!(percentile(&values, 50.0), Some(2.5));
        assert_eq!(percentile(&[7.0], 95.0), Some(7.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&values, 101.0), None);
        assert_eq!(percentile(&values, -1.0), None);
    }

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        let s = geomean_speedup(&[2.0, 8.0], &[1.0, 2.0]).unwrap();
        assert!((s - (2.0f64 * 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(geomean_speedup(&[1.0], &[]), None);
    }
}
