//! Statistics helpers over simulation reports: throughput, performance
//! timelines (GFLOP/s over time, Fig. 6) and summary aggregates.

use crate::engine::SimReport;
use serde::{Deserialize, Serialize};

/// One bin of the performance-over-time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineBin {
    /// Start of the bin in seconds.
    pub start: f64,
    /// End of the bin in seconds.
    pub end: f64,
    /// Average delivered performance in GFLOP/s during the bin.
    pub gflops_per_second: f64,
}

/// Computes the delivered GFLOP/s in fixed-width bins over the whole
/// simulation (the series plotted in the paper's Fig. 6).
///
/// Compute work is attributed uniformly over each task's execution interval.
/// Returns an empty vector when `bin_seconds` is not positive or the report
/// is empty.
pub fn performance_timeline(report: &SimReport, bin_seconds: f64) -> Vec<TimelineBin> {
    if bin_seconds <= 0.0 || bin_seconds.is_nan() || report.makespan <= 0.0 {
        return Vec::new();
    }
    let bins = (report.makespan / bin_seconds).ceil() as usize;
    let mut flops_per_bin = vec![0.0f64; bins.max(1)];
    for record in &report.records {
        if record.flops == 0 || record.duration() <= 0.0 {
            continue;
        }
        let rate = record.flops as f64 / record.duration();
        let first_bin = (record.start / bin_seconds).floor() as usize;
        let last_bin = ((record.finish / bin_seconds).ceil() as usize).min(bins);
        for (bin, slot) in flops_per_bin
            .iter_mut()
            .enumerate()
            .take(last_bin)
            .skip(first_bin)
        {
            let bin_start = bin as f64 * bin_seconds;
            let bin_end = bin_start + bin_seconds;
            let overlap = (record.finish.min(bin_end) - record.start.max(bin_start)).max(0.0);
            *slot += rate * overlap;
        }
    }
    flops_per_bin
        .into_iter()
        .enumerate()
        .map(|(i, flops)| TimelineBin {
            start: i as f64 * bin_seconds,
            end: (i + 1) as f64 * bin_seconds,
            gflops_per_second: flops / bin_seconds / 1e9,
        })
        .collect()
}

/// Number of completed inferences per `window_seconds`, assuming the
/// simulated request pattern repeats back-to-back (the paper reports
/// inferences per 100 s). Returns zero for an empty report.
pub fn throughput_per_window(report: &SimReport, window_seconds: f64) -> f64 {
    if report.makespan <= 0.0 || window_seconds <= 0.0 || window_seconds.is_nan() {
        return 0.0;
    }
    report.request_completion.len() as f64 * window_seconds / report.makespan
}

/// The `p`-th percentile (0–100) of a slice using linear interpolation
/// between order statistics, `None` when the slice is empty or `p` is
/// outside 0..=100. Used for the latency tail metrics (p50/p95/p99) of the
/// Poisson stress experiment.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are comparable"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    Some(sorted[lower] * (1.0 - weight) + sorted[upper] * weight)
}

/// A streaming quantile estimator using the P² algorithm
/// (Jain & Chlamtac, CACM 1985): five markers track the target quantile,
/// its two neighbours and the extremes, adjusted per observation with
/// piecewise-parabolic interpolation. Memory is **constant** — five heights
/// and five positions, no heap — which is what lets the serving soak report
/// latency tails over millions of requests without retaining a single
/// per-request record.
///
/// For the first four observations the estimator is *exact* (it holds the
/// sorted sample and interpolates like [`percentile`]); from the fifth
/// observation on it is an estimate whose accuracy is pinned against the
/// exact percentile in this module's tests (uniform, bursty and
/// adversarially-ordered inputs). The state is plain `Copy` data and every
/// update is a deterministic function of the observation sequence, so two
/// identical streams produce bit-identical estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2Quantile {
    /// Target quantile in 0..=100 (same convention as [`percentile`]).
    p: f64,
    /// Observations seen.
    count: usize,
    /// Marker heights (the first `count` entries, sorted, while count < 5).
    q: [f64; 5],
    /// Marker positions, 1-based.
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Per-observation increments of the desired positions.
    dn: [f64; 5],
}

impl P2Quantile {
    /// A streaming estimator of the `p`-th percentile (0–100; clamped).
    pub fn new(p: f64) -> Self {
        let p = p.clamp(0.0, 100.0) / 100.0;
        Self {
            p,
            count: 0,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
        }
    }

    /// Observations seen so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Forgets all observations, keeping the target quantile.
    pub fn reset(&mut self) {
        *self = Self::new(self.p * 100.0);
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            // Insertion sort into the startup buffer.
            let mut i = self.count;
            while i > 0 && self.q[i - 1] > x {
                self.q[i] = self.q[i - 1];
                i -= 1;
            }
            self.q[i] = x;
            self.count += 1;
            return;
        }

        // Find the cell k with q[k] <= x < q[k+1], clamping extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q has 5 entries, so this always finds a cell.
            (0..4)
                .find(|&i| self.q[i] <= x && x < self.q[i + 1])
                .expect("x is within [q0, q4)")
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }
        self.count += 1;

        // Adjust the three interior markers towards their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            let right = self.n[i + 1] - self.n[i];
            let left = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                if self.q[i - 1] < candidate && candidate < self.q[i + 1] {
                    self.q[i] = candidate;
                } else {
                    self.q[i] = self.linear(i, d);
                }
                self.n[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height update for marker `i` moving by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// Linear fallback when the parabolic candidate leaves the bracket.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current estimate, `None` before the first observation. Exact
    /// (interpolated like [`percentile`]) below five observations, the P²
    /// marker height from there on.
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count >= 5 {
            return Some(self.q[2]);
        }
        // Startup: interpolate the sorted buffer exactly like `percentile`.
        let sorted = &self.q[..self.count];
        let rank = self.p * (sorted.len() - 1) as f64;
        let lower = rank.floor() as usize;
        let upper = rank.ceil() as usize;
        let weight = rank - lower as f64;
        Some(sorted[lower] * (1.0 - weight) + sorted[upper] * weight)
    }
}

/// An exponentially weighted moving average over a stream of samples —
/// the online effective-rate estimator the adaptive serving loop keeps per
/// node. Plain `Copy` state (a level, the smoothing factor and a count), so
/// per-resource vectors of these reset and update without touching the
/// heap, and two identical observation sequences produce bit-identical
/// levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    level: f64,
    alpha: f64,
    count: u64,
}

impl Ewma {
    /// Creates an estimator at `initial` with smoothing factor `alpha`
    /// (0 < α ≤ 1; larger α weights recent samples more).
    pub fn new(alpha: f64, initial: f64) -> Self {
        Self {
            level: initial + 0.0,
            alpha,
            count: 0,
        }
    }

    /// Folds one sample in: `level ← (1 − α)·level + α·sample`.
    pub fn observe(&mut self, sample: f64) {
        self.level = (1.0 - self.alpha) * self.level + self.alpha * sample;
        self.count += 1;
    }

    /// The current smoothed level.
    pub fn value(&self) -> f64 {
        self.level
    }

    /// Samples folded in since construction or the last reset.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Rewinds to `initial` with the sample count cleared, keeping α.
    pub fn reset(&mut self, initial: f64) {
        self.level = initial + 0.0;
        self.count = 0;
    }
}

/// Mean of a slice, `None` when empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric-mean speedup of `baseline` over `candidate` latencies
/// (values > 1 mean the candidate is faster). `None` when the slices are
/// empty or of different lengths.
pub fn geomean_speedup(baseline: &[f64], candidate: &[f64]) -> Option<f64> {
    if baseline.is_empty() || baseline.len() != candidate.len() {
        return None;
    }
    let log_sum: f64 = baseline
        .iter()
        .zip(candidate.iter())
        .map(|(b, c)| (b / c).ln())
        .sum();
    Some((log_sum / baseline.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecutionPlan;
    use crate::simulate;
    use hidp_platform::{presets, NodeIndex, ProcessorAddr, ProcessorIndex};

    fn addr(node: usize, proc: usize) -> ProcessorAddr {
        ProcessorAddr {
            node: NodeIndex(node),
            processor: ProcessorIndex(proc),
        }
    }

    fn sample_report() -> SimReport {
        let cluster = presets::paper_cluster();
        let mut plan = ExecutionPlan::new();
        plan.add_compute("a", addr(0, 1), 1_880_000_000, 1.0, &[]);
        simulate(&plan, &cluster).unwrap()
    }

    #[test]
    fn ewma_converges_geometrically_and_resets() {
        let mut e = Ewma::new(0.25, 1.0);
        for _ in 0..64 {
            e.observe(3.0);
        }
        assert!((e.value() - 3.0).abs() < 1e-6, "level {}", e.value());
        assert_eq!(e.count(), 64);
        // Identical streams produce bit-identical estimators.
        let mut f = Ewma::new(0.25, 1.0);
        for _ in 0..64 {
            f.observe(3.0);
        }
        assert_eq!(e, f);
        // Convergence is geometric: the gap shrinks by (1 − α) per sample.
        let mut g = Ewma::new(0.5, 1.0);
        g.observe(2.0);
        assert_eq!(g.value(), 1.5);
        g.observe(2.0);
        assert_eq!(g.value(), 1.75);
        e.reset(1.0);
        assert_eq!(e.value(), 1.0);
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn timeline_integrates_to_total_flops() {
        let report = sample_report();
        let bins = performance_timeline(&report, 0.1);
        let integrated: f64 = bins
            .iter()
            .map(|b| b.gflops_per_second * 1e9 * (b.end - b.start))
            .sum();
        let total: u64 = report.records.iter().map(|r| r.flops).sum();
        assert!((integrated - total as f64).abs() / (total as f64) < 1e-6);
    }

    #[test]
    fn timeline_handles_invalid_bins() {
        let report = sample_report();
        assert!(performance_timeline(&report, 0.0).is_empty());
        assert!(performance_timeline(&report, -1.0).is_empty());
    }

    #[test]
    fn throughput_scales_with_window() {
        let report = sample_report();
        let per_100 = throughput_per_window(&report, 100.0);
        let per_10 = throughput_per_window(&report, 10.0);
        assert!((per_100 / per_10 - 10.0).abs() < 1e-9);
        assert_eq!(throughput_per_window(&report, 0.0), 0.0);
    }

    #[test]
    fn percentile_interpolates_order_statistics() {
        let values = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        assert_eq!(percentile(&values, 100.0), Some(4.0));
        assert_eq!(percentile(&values, 50.0), Some(2.5));
        assert_eq!(percentile(&[7.0], 95.0), Some(7.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&values, 101.0), None);
        assert_eq!(percentile(&values, -1.0), None);
    }

    /// Deterministic splitmix64 stream mapped to `[0, 1)`; keeps the P²
    /// accuracy tests free of external RNG dependencies.
    fn uniform_stream(seed: u64, count: usize) -> Vec<f64> {
        let mut state = seed;
        (0..count)
            .map(|_| {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn p2_relative_error(values: &[f64], p: f64) -> f64 {
        let mut est = P2Quantile::new(p);
        for &v in values {
            est.observe(v);
        }
        assert_eq!(est.count(), values.len());
        let estimated = est.value().unwrap();
        let exact = percentile(values, p).unwrap();
        (estimated - exact).abs() / exact.abs().max(1e-12)
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut est = P2Quantile::new(50.0);
        assert_eq!(est.value(), None);
        assert_eq!(est.count(), 0);
        for (i, v) in [4.0, 1.0, 3.0, 2.0].iter().enumerate() {
            est.observe(*v);
            let seen = &[4.0, 1.0, 3.0, 2.0][..=i];
            assert_eq!(est.value(), percentile(seen, 50.0));
        }
        est.reset();
        assert_eq!(est.count(), 0);
        assert_eq!(est.value(), None);
    }

    #[test]
    fn p2_tracks_uniform_streams() {
        for seed in [1u64, 7, 42] {
            // Shift off zero so relative error is well defined at p50.
            let values: Vec<f64> = uniform_stream(seed, 10_000)
                .into_iter()
                .map(|v| v + 0.5)
                .collect();
            for p in [50.0, 95.0, 99.0] {
                let err = p2_relative_error(&values, p);
                assert!(err < 0.02, "seed {seed} p{p}: relative error {err}");
            }
        }
    }

    #[test]
    fn p2_tracks_bursty_streams() {
        // A bimodal latency mix: a fast mode near 1 ms with a 10% slow tail
        // near 100 ms, the shape serving latency tails actually take. p50
        // sits inside the fast mode, p95/p99 inside the slow tail.
        let values: Vec<f64> = uniform_stream(3, 20_000)
            .iter()
            .zip(uniform_stream(4, 20_000))
            .map(|(&pick, jitter)| {
                if pick < 0.90 {
                    0.001 * (1.0 + jitter)
                } else {
                    0.1 * (1.0 + jitter)
                }
            })
            .collect();
        for p in [50.0, 95.0, 99.0] {
            let err = p2_relative_error(&values, p);
            assert!(err < 0.01, "p{p}: relative error {err}");
        }
    }

    #[test]
    fn p2_tracks_adversarially_ordered_streams() {
        // Sorted ascending, sorted descending, and an interleave of extremes:
        // the orderings that drift naive streaming estimators the furthest.
        // Monotone orders stay within 1%; the extreme interleave is P²'s
        // documented worst case (every observation lands outside the interior
        // markers), so its bounds are looser but still asserted.
        let base: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let ascending = base.clone();
        let descending: Vec<f64> = base.iter().rev().copied().collect();
        let mut interleaved = Vec::with_capacity(base.len());
        for i in 0..base.len() / 2 {
            interleaved.push(base[i]);
            interleaved.push(base[base.len() - 1 - i]);
        }
        for (name, values, bound) in [
            ("ascending", &ascending, 0.01),
            ("descending", &descending, 0.01),
            ("interleaved", &interleaved, 0.6),
        ] {
            for p in [50.0, 95.0, 99.0] {
                let err = p2_relative_error(values, p);
                assert!(err < bound, "{name} p{p}: relative error {err}");
            }
        }
    }

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        let s = geomean_speedup(&[2.0, 8.0], &[1.0, 2.0]).unwrap();
        assert!((s - (2.0f64 * 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(geomean_speedup(&[1.0], &[]), None);
    }
}
