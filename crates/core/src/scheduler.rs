//! The run-time scheduler's scheduling policy, implemented as a finite state
//! machine (paper §III, Fig. 4).
//!
//! The leader node cycles through
//! `Analyze → Explore → Global:Offload → Local:Map → Execute → Global:Offload
//! (merge) → Analyze`, while follower nodes use the reduced
//! `Analyze → Local:Map → Execute → Analyze` cycle. The FSM is pure state
//! bookkeeping — the actual decision making lives in the partitioners — so it
//! can be unit-tested exhaustively and drives both the in-process cluster
//! runtime and the traces printed by the examples.

use serde::{Deserialize, Serialize};

/// The role a node plays for one inference request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// The node that received the request and coordinates the cluster
    /// (`ϕ*` in Algorithm 1).
    Leader,
    /// A node that receives a share from the leader and reports back.
    Follower,
}

/// The scheduler states of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerState {
    /// Waiting for an inference request (leader) or an offloaded share
    /// (follower); checks cluster availability when one arrives.
    Analyze,
    /// Consulting the global DSE agent for the optimal partitioning point.
    Explore,
    /// Distributing shares to the cluster (and, at the end of a request,
    /// merging the collected results).
    GlobalOffload,
    /// Consulting the local DSE agent to map the local share onto processors.
    LocalMap,
    /// Executing the local workload and exchanging intermediate data.
    Execute,
}

/// Events that drive the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerEvent {
    /// A new inference request arrived (leader only).
    RequestArrived,
    /// An offloaded share arrived from the leader (follower only).
    ShareArrived,
    /// The global DSE agent converged on a partitioning point.
    GlobalDecisionReady,
    /// Shares were handed to the communication module for distribution.
    SharesDistributed,
    /// The local DSE agent converged on a processor mapping.
    LocalDecisionReady,
    /// Local execution finished.
    ExecutionFinished,
    /// All remote results were received and merged; the prediction was
    /// reported to the application.
    ResultsMerged,
}

/// Error returned for transitions that Fig. 4 does not allow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTransition {
    /// The role of the machine.
    pub role: Role,
    /// The state the machine was in.
    pub state: SchedulerState,
    /// The event that was not applicable.
    pub event: SchedulerEvent,
}

impl std::fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event {:?} is not valid in state {:?} for a {:?} node",
            self.event, self.state, self.role
        )
    }
}

impl std::error::Error for InvalidTransition {}

/// The run-time scheduler FSM for one node and one request at a time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerFsm {
    role: Role,
    state: SchedulerState,
    history: Vec<SchedulerState>,
}

impl SchedulerFsm {
    /// Creates a scheduler in the `Analyze` state.
    pub fn new(role: Role) -> Self {
        Self {
            role,
            state: SchedulerState::Analyze,
            history: vec![SchedulerState::Analyze],
        }
    }

    /// The node's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The current state.
    pub fn state(&self) -> SchedulerState {
        self.state
    }

    /// All states visited so far, in order (including the initial `Analyze`).
    pub fn history(&self) -> &[SchedulerState] {
        &self.history
    }

    /// Applies an event, returning the new state.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidTransition`] when the event is not applicable to the
    /// current state for this node's role.
    pub fn handle(&mut self, event: SchedulerEvent) -> Result<SchedulerState, InvalidTransition> {
        use SchedulerEvent as E;
        use SchedulerState as S;
        let next = match (self.role, self.state, event) {
            // Leader path (Fig. 4, left).
            (Role::Leader, S::Analyze, E::RequestArrived) => S::Explore,
            (Role::Leader, S::Explore, E::GlobalDecisionReady) => S::GlobalOffload,
            (Role::Leader, S::GlobalOffload, E::SharesDistributed) => S::LocalMap,
            (Role::Leader, S::LocalMap, E::LocalDecisionReady) => S::Execute,
            (Role::Leader, S::Execute, E::ExecutionFinished) => S::GlobalOffload,
            (Role::Leader, S::GlobalOffload, E::ResultsMerged) => S::Analyze,
            // Follower path (Fig. 4, right).
            (Role::Follower, S::Analyze, E::ShareArrived) => S::LocalMap,
            (Role::Follower, S::LocalMap, E::LocalDecisionReady) => S::Execute,
            (Role::Follower, S::Execute, E::ExecutionFinished) => S::Analyze,
            (role, state, event) => {
                return Err(InvalidTransition { role, state, event });
            }
        };
        self.state = next;
        self.history.push(next);
        Ok(next)
    }

    /// Runs one full request cycle for this role and returns the visited
    /// states. Convenience for tests and traces.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in event sequences; propagated for safety.
    pub fn run_request_cycle(&mut self) -> Result<Vec<SchedulerState>, InvalidTransition> {
        let events: &[SchedulerEvent] = match self.role {
            Role::Leader => &[
                SchedulerEvent::RequestArrived,
                SchedulerEvent::GlobalDecisionReady,
                SchedulerEvent::SharesDistributed,
                SchedulerEvent::LocalDecisionReady,
                SchedulerEvent::ExecutionFinished,
                SchedulerEvent::ResultsMerged,
            ],
            Role::Follower => &[
                SchedulerEvent::ShareArrived,
                SchedulerEvent::LocalDecisionReady,
                SchedulerEvent::ExecutionFinished,
            ],
        };
        let mut visited = Vec::with_capacity(events.len());
        for event in events {
            visited.push(self.handle(*event)?);
        }
        Ok(visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_cycle_visits_all_states_and_returns_to_analyze() {
        let mut fsm = SchedulerFsm::new(Role::Leader);
        let visited = fsm.run_request_cycle().unwrap();
        assert_eq!(
            visited,
            vec![
                SchedulerState::Explore,
                SchedulerState::GlobalOffload,
                SchedulerState::LocalMap,
                SchedulerState::Execute,
                SchedulerState::GlobalOffload,
                SchedulerState::Analyze,
            ]
        );
        assert_eq!(fsm.state(), SchedulerState::Analyze);
        assert_eq!(fsm.history().len(), 7);
    }

    #[test]
    fn follower_cycle_is_the_reduced_machine() {
        let mut fsm = SchedulerFsm::new(Role::Follower);
        let visited = fsm.run_request_cycle().unwrap();
        assert_eq!(
            visited,
            vec![
                SchedulerState::LocalMap,
                SchedulerState::Execute,
                SchedulerState::Analyze,
            ]
        );
    }

    #[test]
    fn leader_rejects_follower_events_and_vice_versa() {
        let mut leader = SchedulerFsm::new(Role::Leader);
        let err = leader.handle(SchedulerEvent::ShareArrived).unwrap_err();
        assert_eq!(err.state, SchedulerState::Analyze);
        assert!(err.to_string().contains("ShareArrived"));

        let mut follower = SchedulerFsm::new(Role::Follower);
        assert!(follower.handle(SchedulerEvent::RequestArrived).is_err());
        assert!(follower
            .handle(SchedulerEvent::GlobalDecisionReady)
            .is_err());
    }

    #[test]
    fn out_of_order_events_are_rejected_and_do_not_change_state() {
        let mut fsm = SchedulerFsm::new(Role::Leader);
        fsm.handle(SchedulerEvent::RequestArrived).unwrap();
        let before = fsm.state();
        assert!(fsm.handle(SchedulerEvent::ExecutionFinished).is_err());
        assert_eq!(fsm.state(), before);
        assert!(fsm.handle(SchedulerEvent::ResultsMerged).is_err());
        assert_eq!(fsm.state(), before);
    }

    #[test]
    fn multiple_requests_can_be_processed_back_to_back() {
        let mut fsm = SchedulerFsm::new(Role::Leader);
        for _ in 0..3 {
            fsm.run_request_cycle().unwrap();
            assert_eq!(fsm.state(), SchedulerState::Analyze);
        }
        assert_eq!(fsm.history().len(), 1 + 3 * 6);
    }
}
