//! The dynamic-programming partitioning search (paper Algorithm 1, lines
//! 4–6 and 8–10).
//!
//! The same routine is used at both hierarchy levels because the arguments
//! are the same in either case: a chain of candidate segments (derived from
//! the DNN's cut points) and a vector of resources with computation and
//! communication rates (nodes with `Ψ{Λ, β}` globally, processors with
//! `ψ{λ, μ}` locally).
//!
//! * [`model_partition_search`] splits the chain into at most `m` contiguous
//!   blocks, assigns each block to a distinct resource (fastest resources
//!   first, mirroring the paper's "largest possible block sizes following the
//!   resource heterogeneity") and minimises the end-to-end latency of one
//!   request, including inter-block activation transfers and the final
//!   result return.
//! * [`data_partition_search`] explores the number of parallel sub-models
//!   `σ` and assigns input fractions proportional to resource rates,
//!   minimising the slowest part (plus synchronisation overhead).
//!
//! # Allocation-free planning
//!
//! Cold planning sits on the per-request hot path (15–190 µs each per
//! `BENCH_stream_scaling.json`), so the searches keep **no per-call
//! allocations**: all tables — the flattened DP cost/choice matrices, the
//! rate-order permutation and the flops prefix sums — live in a
//! [`PlannerScratch`] that is reused across calls. The public entry points
//! borrow a per-thread scratch (a `thread_local!`), so concurrent planners
//! in a [`crate::ParallelSweep`] never contend on scratch memory; callers
//! that want explicit control can pass their own via the `_in` variants.
//! Results are bit-identical to the original nested-`Vec` implementation.

use crate::system_model::Resource;
use crate::CoreError;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// One segment of the layer chain (the span between two consecutive cut
/// points). Blocks are unions of consecutive segments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainSegment {
    /// Flops of the segment.
    pub flops: u64,
    /// Bytes of the activation tensor crossing the segment's trailing
    /// boundary (what a pipeline would transfer if it cut here).
    pub boundary_bytes: u64,
}

/// Result of the model-partitioning search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSearch {
    /// For each block, the index of the last segment it contains.
    pub block_ends: Vec<usize>,
    /// For each block, the index (into the resource slice) it is assigned to.
    pub assignments: Vec<usize>,
    /// Estimated end-to-end latency in seconds.
    pub latency: f64,
}

impl ModelSearch {
    /// Number of blocks chosen.
    pub fn block_count(&self) -> usize {
        self.block_ends.len()
    }
}

/// One parallel share of the data-partitioning search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataShare {
    /// Index into the resource slice.
    pub resource: usize,
    /// Fraction of the input assigned to the resource (0, 1].
    pub fraction: f64,
}

/// Result of the data-partitioning search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSearch {
    /// The parallel shares (one per participating resource).
    pub shares: Vec<DataShare>,
    /// Estimated end-to-end latency in seconds.
    pub latency: f64,
}

impl DataSearch {
    /// Number of parallel sub-models (`σ`).
    pub fn parallelism(&self) -> usize {
        self.shares.len()
    }
}

/// Total input bytes, output bytes and flops of the workload being searched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Bytes of the tensor entering the workload.
    pub input_bytes: u64,
    /// Bytes of the tensor leaving the workload (returned to the coordinator).
    pub output_bytes: u64,
    /// Total flops.
    pub flops: u64,
    /// Bytes exchanged between neighbouring parts per synchronisation
    /// boundary when the workload is data-partitioned (halo traffic).
    pub sync_bytes: u64,
}

/// Reusable working memory for the DP searches: the flattened cost/choice
/// tables, the resource-order permutation, the flops prefix sums and the
/// per-row running minima. Buffers grow to the largest problem seen and are
/// then reused, so steady-state planning allocates nothing.
///
/// The zero-argument entry points ([`model_partition_search`],
/// [`data_partition_search`]) borrow a per-thread instance; construct one
/// explicitly only to control scratch lifetime yourself (e.g. to keep a
/// dedicated scratch per pinned worker).
#[derive(Debug, Default)]
pub struct PlannerScratch {
    /// Resource indices sorted by descending rate.
    order: Vec<usize>,
    /// `prefix_flops[i]` = total flops of segments `0..i` (length n+1).
    prefix_flops: Vec<u64>,
    /// Flattened `(n+1) × (m+1)` DP cost table, row-major by segment count.
    dp: Vec<f64>,
    /// Flattened choice table; `usize::MAX` marks "no feasible split".
    choice: Vec<usize>,
    /// `min_prev[k]` = min over `jp < j` of `dp[k][jp]`, maintained
    /// incrementally as `j` advances.
    min_prev: Vec<f64>,
}

impl PlannerScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Per-thread scratch behind the zero-argument entry points. Planning
    /// never recurses into itself, so the `RefCell` borrow is never
    /// re-entered.
    static SCRATCH: RefCell<PlannerScratch> = RefCell::new(PlannerScratch::new());
}

fn sorted_by_rate_into(order: &mut Vec<usize>, resources: &[Resource]) {
    order.clear();
    order.extend(0..resources.len());
    order.sort_by(|a, b| {
        resources[*b]
            .rate
            .partial_cmp(&resources[*a].rate)
            .expect("rates are finite")
    });
}

/// Splits a chain of segments into at most `resources.len()` contiguous
/// blocks and assigns them to resources, minimising single-request latency.
///
/// The search runs in `O(n² · m)` for `n` segments and `m` resources; with
/// the block-level cut points of the zoo models and a five-node cluster this
/// is a few hundred thousand table updates (the ~15 ms overhead the paper
/// reports). Scratch memory comes from the calling thread's
/// [`PlannerScratch`].
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when `segments` or `resources` is empty
/// or any resource has a non-positive rate.
pub fn model_partition_search(
    segments: &[ChainSegment],
    resources: &[Resource],
    workload: WorkloadSummary,
) -> Result<ModelSearch, CoreError> {
    SCRATCH.with(|s| model_partition_search_in(&mut s.borrow_mut(), segments, resources, workload))
}

/// [`model_partition_search`] against a caller-owned [`PlannerScratch`].
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when `segments` or `resources` is empty
/// or any resource has a non-positive rate.
pub fn model_partition_search_in(
    scratch: &mut PlannerScratch,
    segments: &[ChainSegment],
    resources: &[Resource],
    workload: WorkloadSummary,
) -> Result<ModelSearch, CoreError> {
    if segments.is_empty() {
        return Err(CoreError::Infeasible {
            what: "model partition search needs at least one segment".into(),
        });
    }
    if resources.is_empty() {
        return Err(CoreError::Infeasible {
            what: "model partition search needs at least one resource".into(),
        });
    }
    if resources.iter().any(|r| r.rate <= 0.0 || r.rate.is_nan()) {
        return Err(CoreError::Infeasible {
            what: "all resources must have a positive computation rate".into(),
        });
    }

    sorted_by_rate_into(&mut scratch.order, resources);
    let n = segments.len();
    let m = resources.len();
    let stride = m + 1;

    // Prefix sums of flops so block flops are O(1).
    scratch.prefix_flops.clear();
    scratch.prefix_flops.reserve(n + 1);
    scratch.prefix_flops.push(0);
    let mut acc = 0u64;
    for seg in segments {
        acc += seg.flops;
        scratch.prefix_flops.push(acc);
    }
    let prefix_flops = &scratch.prefix_flops;
    let block_flops = |first: usize, last: usize| prefix_flops[last + 1] - prefix_flops[first];

    // dp[i·stride + j]: minimal latency to finish segments 0..i using only
    // the first j resources in `order`, where the block ending at segment
    // i-1 ran on resource order[j-1]. Infeasible cells hold f64::INFINITY;
    // choice holds usize::MAX there. The tables are flat reusable buffers —
    // no per-call Vec-of-Vec allocation.
    scratch.dp.clear();
    scratch.dp.resize((n + 1) * stride, f64::INFINITY);
    scratch.choice.clear();
    scratch.choice.resize((n + 1) * stride, usize::MAX);
    scratch.dp[0] = 0.0;
    // min_prev[k] = min over jp < j of dp[k][jp], folded incrementally as j
    // advances — the same left-to-right `min` fold over the same finalized
    // cells the original per-(i,k) rescans performed, so every comparison
    // sees bit-identical values (and the whole search stays O(n²·m) instead
    // of O(n²·m²)).
    scratch.min_prev.clear();
    scratch.min_prev.resize(n + 1, f64::INFINITY);
    for j in 1..=m {
        for k in 0..=n {
            scratch.min_prev[k] = scratch.min_prev[k].min(scratch.dp[k * stride + j - 1]);
        }
        let resource = &resources[scratch.order[j - 1]];
        for i in 1..=n {
            for k in 0..i {
                // Block covers segments k..i-1 (inclusive), runs on resource j-1.
                let best_prev = scratch.min_prev[k];
                if !best_prev.is_finite() {
                    continue;
                }
                // Input to this block: the workload input for the first
                // block, otherwise the boundary activation of segment k-1.
                let input_bytes = if k == 0 {
                    workload.input_bytes
                } else {
                    segments[k - 1].boundary_bytes
                };
                let mut cost = best_prev
                    + resource.transfer_time(input_bytes)
                    + resource.compute_time(block_flops(k, i - 1));
                if i == n {
                    // Return the final result to the coordinator.
                    cost += resource.transfer_time(workload.output_bytes);
                }
                if cost < scratch.dp[i * stride + j] {
                    scratch.dp[i * stride + j] = cost;
                    scratch.choice[i * stride + j] = k;
                }
            }
        }
    }

    // Best over the number of resources actually used.
    let (mut best_j, mut best_latency) = (0usize, f64::INFINITY);
    for (j, &latency) in scratch.dp[n * stride..n * stride + stride]
        .iter()
        .enumerate()
        .skip(1)
    {
        if latency < best_latency {
            best_latency = latency;
            best_j = j;
        }
    }
    if !best_latency.is_finite() {
        return Err(CoreError::Infeasible {
            what: "model partition search found no feasible assignment".into(),
        });
    }

    // Backtrack.
    let mut block_ends_rev = Vec::new();
    let mut assignments_rev = Vec::new();
    let mut i = n;
    let mut j = best_j;
    while i > 0 {
        let k = scratch.choice[i * stride + j];
        debug_assert_ne!(k, usize::MAX, "backtracking follows a feasible path");
        block_ends_rev.push(i - 1);
        assignments_rev.push(scratch.order[j - 1]);
        // Find which jp produced best_prev for dp[k][..j].
        let mut best_jp = 0usize;
        let mut best_val = f64::INFINITY;
        for (jp, &val) in scratch.dp[k * stride..k * stride + j].iter().enumerate() {
            if val < best_val {
                best_val = val;
                best_jp = jp;
            }
        }
        i = k;
        j = best_jp;
        if i == 0 {
            break;
        }
    }
    block_ends_rev.reverse();
    assignments_rev.reverse();
    Ok(ModelSearch {
        block_ends: block_ends_rev,
        assignments: assignments_rev,
        latency: best_latency,
    })
}

/// Explores the number of parallel sub-models `σ` (1 ..= `max_parts`) for
/// data partitioning and returns the fastest configuration. Shares are
/// proportional to resource rates (faster resources take larger slices).
/// Scratch memory comes from the calling thread's [`PlannerScratch`].
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when `resources` is empty, rates are
/// non-positive, or `max_parts` is zero.
pub fn data_partition_search(
    resources: &[Resource],
    workload: WorkloadSummary,
    max_parts: usize,
) -> Result<DataSearch, CoreError> {
    SCRATCH.with(|s| data_partition_search_in(&mut s.borrow_mut(), resources, workload, max_parts))
}

/// [`data_partition_search`] against a caller-owned [`PlannerScratch`].
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when `resources` is empty, rates are
/// non-positive, or `max_parts` is zero.
pub fn data_partition_search_in(
    scratch: &mut PlannerScratch,
    resources: &[Resource],
    workload: WorkloadSummary,
    max_parts: usize,
) -> Result<DataSearch, CoreError> {
    if resources.is_empty() {
        return Err(CoreError::Infeasible {
            what: "data partition search needs at least one resource".into(),
        });
    }
    if resources.iter().any(|r| r.rate <= 0.0 || r.rate.is_nan()) {
        return Err(CoreError::Infeasible {
            what: "all resources must have a positive computation rate".into(),
        });
    }
    if max_parts == 0 {
        return Err(CoreError::Infeasible {
            what: "data partition search needs max_parts >= 1".into(),
        });
    }

    sorted_by_rate_into(&mut scratch.order, resources);
    // First pass: find the best σ without materialising any share vector
    // (fractions are recomputed on the fly — the arithmetic and iteration
    // order match the materialised version exactly).
    let mut best: Option<(usize, f64)> = None;
    for sigma in 1..=max_parts.min(resources.len()) {
        let selected = &scratch.order[..sigma];
        let total_rate: f64 = selected.iter().map(|&i| resources[i].rate).sum();
        // Latency of the slowest part. Interior parts exchange halos with two
        // neighbours, so charge sync traffic per additional part.
        let mut latency: f64 = 0.0;
        for &idx in selected {
            let resource = &resources[idx];
            let fraction = resources[idx].rate / total_rate;
            let flops = (workload.flops as f64 * fraction) as u64;
            let sync = if sigma == 1 { 0 } else { workload.sync_bytes };
            let part_latency = resource
                .transfer_time((workload.input_bytes as f64 * fraction).ceil() as u64)
                + resource.compute_time(flops + sync / 4)
                + resource.transfer_time(
                    (workload.output_bytes as f64 * fraction).ceil() as u64
                        + if sigma == 1 { 0 } else { sync },
                );
            latency = latency.max(part_latency);
        }
        if best.map(|(_, b)| latency < b).unwrap_or(true) {
            best = Some((sigma, latency));
        }
    }
    // Second pass: materialise the winning configuration (the only
    // allocation of the search — it is the returned result).
    best.map(|(sigma, latency)| {
        let selected = &scratch.order[..sigma];
        let total_rate: f64 = selected.iter().map(|&i| resources[i].rate).sum();
        let shares: Vec<DataShare> = selected
            .iter()
            .map(|&i| DataShare {
                resource: i,
                fraction: resources[i].rate / total_rate,
            })
            .collect();
        DataSearch { shares, latency }
    })
    .ok_or_else(|| CoreError::Infeasible {
        what: "data partition search found no feasible configuration".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_platform::NodeIndex;

    fn resource(name: &str, node: usize, rate: f64, comm_rate: f64) -> Resource {
        Resource {
            node: NodeIndex(node),
            processor: None,
            name: name.into(),
            rate,
            comm_rate,
        }
    }

    fn workload(flops: u64) -> WorkloadSummary {
        WorkloadSummary {
            input_bytes: 600_000,
            output_bytes: 4_000,
            flops,
            sync_bytes: 50_000,
        }
    }

    fn uniform_segments(count: usize, flops_each: u64) -> Vec<ChainSegment> {
        (0..count)
            .map(|_| ChainSegment {
                flops: flops_each,
                boundary_bytes: 100_000,
            })
            .collect()
    }

    #[test]
    fn single_resource_model_search_is_one_block() {
        let segments = uniform_segments(10, 1_000_000_000);
        let resources = vec![resource("leader", 0, 1e10, f64::INFINITY)];
        let result =
            model_partition_search(&segments, &resources, workload(10_000_000_000)).unwrap();
        assert_eq!(result.block_count(), 1);
        assert_eq!(result.assignments, vec![0]);
        assert!((result.latency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn free_communication_spreads_blocks_across_resources() {
        let segments = uniform_segments(8, 1_000_000_000);
        // Two equal resources with effectively free communication: splitting
        // would be pointless for a *pipelined* single request (sum of compute
        // is constant), so the search keeps one block on one resource —
        // unless transfers cost nothing AND rates differ. Verify it never
        // does worse than the single-resource answer.
        let resources = vec![
            resource("a", 0, 1e10, f64::INFINITY),
            resource("b", 1, 1e10, 1e12),
        ];
        let result =
            model_partition_search(&segments, &resources, workload(8_000_000_000)).unwrap();
        assert!(result.latency <= 0.8 + 1e-9);
    }

    #[test]
    fn slow_network_keeps_work_on_the_leader() {
        let segments = uniform_segments(6, 2_000_000_000);
        let resources = vec![
            resource("leader", 0, 5e9, f64::INFINITY),
            // Faster node behind a terrible link.
            resource("remote", 1, 50e9, 1e3),
        ];
        let result =
            model_partition_search(&segments, &resources, workload(12_000_000_000)).unwrap();
        assert_eq!(result.assignments, vec![0], "work must stay local");
    }

    #[test]
    fn fast_network_offloads_to_the_faster_node() {
        let segments = uniform_segments(6, 2_000_000_000);
        let resources = vec![
            resource("leader", 0, 5e9, f64::INFINITY),
            resource("remote", 1, 50e9, 1e9),
        ];
        let result =
            model_partition_search(&segments, &resources, workload(12_000_000_000)).unwrap();
        // The remote node must execute at least one block.
        assert!(result.assignments.contains(&1));
        // And the result must beat leader-only execution (2.4 s).
        assert!(result.latency < 12.0 / 5.0);
    }

    #[test]
    fn model_search_rejects_degenerate_inputs() {
        let resources = vec![resource("a", 0, 1e9, f64::INFINITY)];
        assert!(model_partition_search(&[], &resources, workload(1)).is_err());
        let segments = uniform_segments(2, 100);
        assert!(model_partition_search(&segments, &[], workload(1)).is_err());
        let bad = vec![resource("a", 0, 0.0, f64::INFINITY)];
        assert!(model_partition_search(&segments, &bad, workload(1)).is_err());
    }

    #[test]
    fn data_search_fractions_are_rate_proportional() {
        let resources = vec![
            resource("fast", 0, 3e9, f64::INFINITY),
            resource("slow", 1, 1e9, 80e6),
        ];
        let result = data_partition_search(&resources, workload(4_000_000_000), 2).unwrap();
        if result.parallelism() == 2 {
            let fast = result
                .shares
                .iter()
                .find(|s| s.resource == 0)
                .unwrap()
                .fraction;
            let slow = result
                .shares
                .iter()
                .find(|s| s.resource == 1)
                .unwrap()
                .fraction;
            assert!((fast / slow - 3.0).abs() < 1e-9);
            assert!((fast + slow - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn data_search_parallelism_helps_until_comm_dominates() {
        // Large compute, decent network: two parts beat one.
        let resources = vec![
            resource("a", 0, 1e9, f64::INFINITY),
            resource("b", 1, 1e9, 80e6),
        ];
        let heavy = WorkloadSummary {
            input_bytes: 600_000,
            output_bytes: 4_000,
            flops: 20_000_000_000,
            sync_bytes: 100_000,
        };
        let one = data_partition_search(&resources, heavy, 1).unwrap();
        let two = data_partition_search(&resources, heavy, 2).unwrap();
        assert!(two.latency < one.latency);

        // Tiny compute, expensive sync: stays at σ = 1.
        let light = WorkloadSummary {
            input_bytes: 600_000,
            output_bytes: 4_000,
            flops: 10_000_000,
            sync_bytes: 50_000_000,
        };
        let best = data_partition_search(&resources, light, 4).unwrap();
        assert_eq!(best.parallelism(), 1);
    }

    #[test]
    fn data_search_rejects_degenerate_inputs() {
        assert!(data_partition_search(&[], workload(1), 2).is_err());
        let resources = vec![resource("a", 0, 1e9, f64::INFINITY)];
        assert!(data_partition_search(&resources, workload(1), 0).is_err());
        let bad = vec![resource("a", 0, -1.0, f64::INFINITY)];
        assert!(data_partition_search(&bad, workload(1), 1).is_err());
    }

    #[test]
    fn block_ends_are_increasing_and_cover_the_chain() {
        let segments = uniform_segments(12, 500_000_000);
        let resources = vec![
            resource("a", 0, 4e9, f64::INFINITY),
            resource("b", 1, 2e9, 5e8),
            resource("c", 2, 1e9, 5e8),
        ];
        let result =
            model_partition_search(&segments, &resources, workload(6_000_000_000)).unwrap();
        assert_eq!(*result.block_ends.last().unwrap(), 11);
        for pair in result.block_ends.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert_eq!(result.block_ends.len(), result.assignments.len());
        // Assignments must be distinct resources.
        let mut sorted = result.assignments.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), result.assignments.len());
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch_bit_for_bit() {
        // The whole point of PlannerScratch: reuse across differently-sized
        // problems must never leak state between searches.
        let mut scratch = PlannerScratch::new();
        let cases: Vec<(Vec<ChainSegment>, Vec<Resource>, u64)> = vec![
            (
                uniform_segments(12, 500_000_000),
                vec![
                    resource("a", 0, 4e9, f64::INFINITY),
                    resource("b", 1, 2e9, 5e8),
                    resource("c", 2, 1e9, 5e8),
                ],
                6_000_000_000,
            ),
            (
                uniform_segments(3, 2_000_000_000),
                vec![
                    resource("a", 0, 5e9, f64::INFINITY),
                    resource("b", 1, 50e9, 1e9),
                ],
                6_000_000_000,
            ),
            (
                uniform_segments(30, 100_000_000),
                vec![resource("a", 0, 1e10, f64::INFINITY)],
                3_000_000_000,
            ),
        ];
        for (segments, resources, flops) in &cases {
            let fresh_model = model_partition_search_in(
                &mut PlannerScratch::new(),
                segments,
                resources,
                workload(*flops),
            )
            .unwrap();
            let reused_model =
                model_partition_search_in(&mut scratch, segments, resources, workload(*flops))
                    .unwrap();
            assert_eq!(fresh_model, reused_model);

            let fresh_data = data_partition_search_in(
                &mut PlannerScratch::new(),
                resources,
                workload(*flops),
                resources.len(),
            )
            .unwrap();
            let reused_data = data_partition_search_in(
                &mut scratch,
                resources,
                workload(*flops),
                resources.len(),
            )
            .unwrap();
            assert_eq!(fresh_data, reused_data);
        }
    }
}
