//! The HiDP system model (paper §III, *System Model*).
//!
//! For a DNN `D(L_i)` and a cluster `N(ϕ_j)` the model derives:
//!
//! * per-processor computation rates `λ_k = f_k / δ` (we obtain them from the
//!   platform's effective-throughput model and the DNN's GPU affinity);
//! * the local computation-to-communication ratio vector `ψ{λ, μ}` (Eq. 1);
//! * per-node aggregate rates `Λ_j(ρ_k)` (Eq. 2);
//! * the global ratio vector `Ψ{Λ, β}` (Eq. 3);
//! * the availability vector `A(N_ϕ)` (Eq. 4).
//!
//! These vectors are the only inputs the DP partitioning search needs, which
//! is why (as the paper notes) the same algorithm serves both the global and
//! the local exploration.

use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex, ProcessorAddr, ProcessorIndex};
use serde::{Deserialize, Serialize};

/// A computation resource as seen by the DP search: either an edge node
/// (global level) or a single processor (local level).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// Node this resource belongs to.
    pub node: NodeIndex,
    /// Processor within the node, when the resource is a single processor.
    /// `None` means "the whole node" (global level).
    pub processor: Option<ProcessorIndex>,
    /// Human-readable name.
    pub name: String,
    /// Computation rate in flops/second (`λ` or `Λ`).
    pub rate: f64,
    /// Communication rate towards the coordinating entity in bytes/second
    /// (`μ` locally, `β` globally). `f64::INFINITY` for the coordinator
    /// itself.
    pub comm_rate: f64,
}

impl Resource {
    /// Computation-to-communication ratio of this resource (`λ/μ` or `Λ/β`),
    /// zero when communication is free.
    pub fn ratio(&self) -> f64 {
        if self.comm_rate.is_infinite() {
            0.0
        } else {
            self.rate / self.comm_rate
        }
    }

    /// Time to execute `flops` on this resource.
    pub fn compute_time(&self, flops: u64) -> f64 {
        flops as f64 / self.rate
    }

    /// Time to ship `bytes` to this resource from the coordinator.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        if self.comm_rate.is_infinite() {
            0.0
        } else {
            bytes as f64 / self.comm_rate
        }
    }
}

/// The system model for one `(DNN, cluster, leader)` combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    /// Flops-weighted GPU affinity of the DNN (`1/δ`-like workload factor).
    pub gpu_affinity: f64,
    /// The leader node coordinating this request.
    pub leader: NodeIndex,
    /// Reference message size used to derive `β` (bytes).
    pub message_bytes: u64,
}

impl SystemModel {
    /// Builds the system model for `graph` led by `leader`.
    pub fn new(graph: &DnnGraph, leader: NodeIndex) -> Self {
        // β is measured with pseudo packets sized like the tensors the
        // request will actually move; we use the network input size.
        let message_bytes = graph.input_shape().bytes();
        Self {
            gpu_affinity: graph.gpu_affinity(),
            leader,
            message_bytes,
        }
    }

    /// Global resources: one entry per *available* node, rate `Λ_j`, comm
    /// rate `β_ϕj` (Eq. 2–3). The leader's own entry has infinite comm rate.
    pub fn global_resources(&self, cluster: &Cluster) -> Vec<Resource> {
        cluster
            .available_nodes()
            .into_iter()
            .map(|idx| {
                let node = &cluster.nodes()[idx.0];
                let rate = node.aggregate_rate(self.gpu_affinity);
                let comm_rate = if idx == self.leader {
                    f64::INFINITY
                } else {
                    cluster
                        .network()
                        .link(self.leader, idx)
                        .map(|l| l.effective_rate(self.message_bytes))
                        .unwrap_or(f64::INFINITY)
                };
                Resource {
                    node: idx,
                    processor: None,
                    name: node.name.clone(),
                    rate,
                    comm_rate,
                }
            })
            .collect()
    }

    /// Global resources restricted to each node's *default* processor (the
    /// GPU, falling back to the fastest CPU): what a framework-default
    /// (TensorFlow-style) local execution delivers. Used by the baselines
    /// that ignore core-level heterogeneity.
    pub fn global_resources_gpu_only(&self, cluster: &Cluster) -> Vec<Resource> {
        cluster
            .available_nodes()
            .into_iter()
            .map(|idx| {
                let node = &cluster.nodes()[idx.0];
                let rate = match node.gpu_index() {
                    Some(gpu) => node.processors[gpu.0].computation_rate(self.gpu_affinity),
                    None => node.best_single_rate(self.gpu_affinity),
                };
                let comm_rate = if idx == self.leader {
                    f64::INFINITY
                } else {
                    cluster
                        .network()
                        .link(self.leader, idx)
                        .map(|l| l.effective_rate(self.message_bytes))
                        .unwrap_or(f64::INFINITY)
                };
                Resource {
                    node: idx,
                    processor: None,
                    name: format!("{}(gpu-only)", node.name),
                    rate,
                    comm_rate,
                }
            })
            .collect()
    }

    /// Local resources of one node: one entry per processor, rate `λ_k`,
    /// comm rate `μ_k` (Eq. 1).
    pub fn local_resources(&self, cluster: &Cluster, node_idx: NodeIndex) -> Vec<Resource> {
        let Ok(node) = cluster.node(node_idx) else {
            return Vec::new();
        };
        node.processors
            .iter()
            .enumerate()
            .map(|(pi, p)| Resource {
                node: node_idx,
                processor: Some(ProcessorIndex(pi)),
                name: format!("{}/{}", node.name, p.name),
                rate: p.computation_rate(self.gpu_affinity),
                comm_rate: p.local_bandwidth_mbps * 1e6,
            })
            .collect()
    }

    /// The availability vector `A(N_ϕ)` (Eq. 4).
    pub fn availability(&self, cluster: &Cluster) -> Vec<bool> {
        cluster.availability().to_vec()
    }

    /// Fully qualified processor address of a local resource.
    pub fn resource_addr(resource: &Resource) -> Option<ProcessorAddr> {
        resource.processor.map(|p| ProcessorAddr {
            node: resource.node,
            processor: p,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn global_resources_cover_available_nodes() {
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        let model = SystemModel::new(&graph, NodeIndex(0));
        let res = model.global_resources(&cluster);
        assert_eq!(res.len(), 5);
        assert!(res[0].comm_rate.is_infinite());
        assert_eq!(res[0].ratio(), 0.0);
        assert!(res[1..].iter().all(|r| r.comm_rate.is_finite()));
        assert!(res.iter().all(|r| r.rate > 0.0));
    }

    #[test]
    fn unavailable_nodes_are_excluded() {
        let mut cluster = presets::paper_cluster();
        cluster.set_available(NodeIndex(4), false).unwrap();
        let graph = WorkloadModel::Vgg19.graph(1);
        let model = SystemModel::new(&graph, NodeIndex(0));
        assert_eq!(model.global_resources(&cluster).len(), 4);
        assert_eq!(
            model.availability(&cluster),
            vec![true, true, true, true, false]
        );
    }

    #[test]
    fn gpu_only_resources_are_slower_than_full_node() {
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::ResNet152.graph(1);
        let model = SystemModel::new(&graph, NodeIndex(0));
        let full = model.global_resources(&cluster);
        let gpu_only = model.global_resources_gpu_only(&cluster);
        for (f, g) in full.iter().zip(gpu_only.iter()) {
            assert!(g.rate < f.rate, "{}", f.name);
        }
    }

    #[test]
    fn local_resources_match_processor_count() {
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::InceptionV3.graph(1);
        let model = SystemModel::new(&graph, NodeIndex(1));
        let local = model.local_resources(&cluster, NodeIndex(1));
        assert_eq!(local.len(), cluster.nodes()[1].processor_count());
        assert!(local.iter().all(|r| r.processor.is_some()));
        assert!(local
            .iter()
            .all(|r| SystemModel::resource_addr(r).is_some()));
        // Unknown node yields an empty vector rather than a panic.
        assert!(model.local_resources(&cluster, NodeIndex(9)).is_empty());
    }

    #[test]
    fn resource_timing_helpers() {
        let r = Resource {
            node: NodeIndex(0),
            processor: None,
            name: "n".into(),
            rate: 1e9,
            comm_rate: 1e6,
        };
        assert!((r.compute_time(2_000_000_000) - 2.0).abs() < 1e-12);
        assert!((r.transfer_time(3_000_000) - 3.0).abs() < 1e-12);
        assert!((r.ratio() - 1e3).abs() < 1e-9);
    }

    #[test]
    fn affinity_tracks_model_structure() {
        let eff = SystemModel::new(&WorkloadModel::EfficientNetB0.graph(1), NodeIndex(0));
        let vgg = SystemModel::new(&WorkloadModel::Vgg19.graph(1), NodeIndex(0));
        assert!(eff.gpu_affinity < vgg.gpu_affinity);
    }
}
