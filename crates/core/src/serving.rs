//! The online serving runtime: admission, dynamic batching, SLA classes and
//! node-failure timelines interleaved with planning and simulation on one
//! virtual clock.
//!
//! [`crate::Scenario`] evaluates a *frozen* regime: every request's plan is
//! resolved up front against one cluster state, then the whole stream is
//! simulated. [`ServingScenario`] models the paper's *dynamic* regime
//! (§III, Eq. 4) instead: a virtual-time loop walks request arrivals, a
//! [`ClusterTimeline`] of node failures/recoveries, and service completions;
//! an [`AdmissionPolicy`] picks which queued request is served next; a
//! batcher coalesces up to `max_batch` queued same-model requests into one
//! batched plan; and every admission plans against the *current* epoch's
//! cluster — the epoch's [`Cluster::fingerprint`] is part of the
//! [`crate::PlanKey`], so a timeline flip automatically re-plans through the
//! shared [`PlanCache`] instead of serving a stale plan.
//!
//! # Indexed admission
//!
//! The admission queue is a priority-indexed structure
//! ([`IndexedQueue`](self)): one global FIFO list, one FIFO list per SLA
//! class, one intrusive list per `(model, batch)` coalesce bucket, and a
//! lazily-pruned deadline heap — all over flat per-request index arrays, no
//! per-entry allocation. Picking the next request is O(1) under FIFO and
//! priority and amortised O(log n) under earliest-deadline; coalescing a
//! batch walks only the head's bucket, O(batch). The original O(n)-per-pick
//! `Vec` scan survives verbatim as [`ServingScenario::run_reference`] and a
//! property test (`tests/serving_admission_equivalence.rs`) pins the two
//! **bit-identical** — same admission order, same batch membership, same
//! epochs — across every policy, batching level and timeline.
//!
//! # Measured-completion feedback
//!
//! Admission control gates on **measured** estimated completions: a
//! persistent per-resource dispatch model replays every admitted plan's
//! tasks (same durations as the event engine) against the resource free
//! times left by all earlier admissions, so with
//! [`ServingConfig::max_inflight`] set the window sees queueing *contention*
//! rather than idle-cluster solo makespans — a saturated processor pushes
//! later completions out, which is exactly the feedback a real admission
//! controller observes. In the records mode the reported metrics still come
//! from one full contention-aware simulation of the admitted stream (the
//! event engine releases every subgraph at its *admitted* time and measures
//! latency from *arrival*); in the streaming mode the dispatch model's
//! completions *are* the completions.
//!
//! # The streaming (soak) mode
//!
//! [`ServingScenario::run_streaming`] runs the same indexed admission loop
//! but retains **no per-request state**: latency and queueing tails go into
//! constant-memory P² sketches ([`StreamingTail`]), per-class aggregates
//! into fixed arrays, and the result is an all-`Copy` [`ServingSummary`].
//! After the first pass has sized the scratch buffers, a steady-state
//! streaming pass performs zero heap allocations
//! (`tests/zero_alloc_warm_path.rs`), which is what lets the 1M-request
//! soak (`exp_soak`) run at full throughput in bounded memory.
//!
//! # The degenerate mode
//!
//! A `ServingScenario` with the default config — FIFO admission,
//! `max_batch == 1`, unbounded in-flight, empty timeline — admits every
//! request at its own arrival instant and is **bit-identical** to
//! [`crate::Scenario::run`] on the same **arrival-ordered** stream (pinned
//! by `tests/serving_equivalence.rs`), so the whole static experiment grid
//! is a special case of this loop. The ordering caveat exists because a
//! serving loop necessarily processes arrivals in time order while the
//! static pipeline preserves input order: on a stream whose requests are
//! not sorted by arrival the two submit requests to the simulator in
//! different orders, which relabels per-request outputs and can change
//! exact-tie scheduling. Every generator in `hidp-workloads` produces
//! arrival-ordered streams.
//!
//! # Failure semantics and recovery
//!
//! By default a timeline flip only re-keys *future* planning
//! ([`FailureMode::Ignore`], the historical behaviour): batches already in
//! flight on the failed node still complete. With [`FailureMode::Kill`] a
//! down-flip *kills* every in-flight batch whose plan touches the failed
//! node; the killed members flow through the configured [`RecoveryPolicy`]
//! — bounded retry with exponential backoff and deterministic jitter
//! (re-planned under the post-failure fingerprint through the shared
//! [`PlanCache`]), deadline abort, queue-time load shedding, and hedged
//! dispatch for premium traffic. Every outcome is accounted in
//! [`RobustnessStats`]: `offered == completed + shed + aborted + lost +
//! in_flight_at_horizon` always holds.
//!
//! Recovery policies and straggler [`SlowdownWindow`]s run in the
//! **streaming** mode only (the dispatch model owns the completions the
//! kill test needs). The records mode supports `FailureMode::Kill` alone:
//! the admitted stream is simulated by the failure-aware event engine
//! ([`hidp_sim::simulate_admitted_stream_faulty_in`]) and killed requests
//! surface as [`FailureEvent`]s with infinite latency, excluded from the
//! served metrics. A no-fault robust config is **bit-identical** to the
//! fault-free paths (pinned by `tests/chaos_robustness.rs`).

use crate::adaptive::{AdaptiveConfig, AdaptiveState, DriftStats};
use crate::fleet::fnv64;
use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::scenario::{Evaluation, Scenario};
use crate::strategy::DistributedStrategy;
use crate::{CoreError, PlanKey};
use hidp_dnn::zoo::WorkloadModel;
use hidp_dnn::DnnGraph;
use hidp_platform::{
    Cluster, ClusterTimeline, DriftModel, NodeIndex, ProcessorAddr, SlowdownWindow,
};
use hidp_sim::serving::{
    LatencySummary, ServedRequestRecord, ServingMetrics, SlaClass, SlaClassReport, StreamingTail,
};
use hidp_sim::Ewma;
use hidp_sim::{
    simulate_admitted_stream_faulty_in, simulate_admitted_stream_in, ExecutionPlan, FailureEvent,
    SimScratch, TaskKind, TraceDetail,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// One request entering the serving runtime: which model at which batch
/// size, when it arrives, and the SLA class it is served under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// The DNN model requested.
    pub model: WorkloadModel,
    /// Images per request (the batcher multiplies this when coalescing).
    pub batch: usize,
    /// Arrival time, seconds since scenario start.
    pub arrival: f64,
    /// The SLA class (priority + deadline).
    pub sla: SlaClass,
}

impl ServingRequest {
    /// A single-image [`SlaClass::Standard`] request arriving at `arrival`.
    pub fn new(model: WorkloadModel, arrival: f64) -> Self {
        Self {
            model,
            batch: 1,
            arrival,
            sla: SlaClass::Standard,
        }
    }

    /// Sets the per-request batch size (builder style, clamped to ≥ 1).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the SLA class (builder style).
    #[must_use]
    pub fn with_sla(mut self, sla: SlaClass) -> Self {
        self.sla = sla;
        self
    }
}

/// How the serving loop picks the next queued request to admit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// First in, first out (arrival order; ties by input order).
    #[default]
    Fifo,
    /// Most urgent [`SlaClass`] first; FIFO among equals.
    Priority,
    /// Earliest absolute deadline (`arrival + class deadline`) first; FIFO
    /// among equals.
    EarliestDeadline,
}

impl AdmissionPolicy {
    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::Priority => "priority",
            AdmissionPolicy::EarliestDeadline => "edf",
        }
    }
}

/// What an availability down-flip does to batches already in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureMode {
    /// Flips only re-key *future* planning (the historical behaviour):
    /// in-flight batches on the failed node still complete.
    #[default]
    Ignore,
    /// Flips kill every in-flight batch whose plan touches the failed
    /// node; the killed members flow through the [`RecoveryPolicy`].
    /// Requires a cluster of ≤ 64 nodes (plan residency is tracked in a
    /// 64-bit node mask).
    Kill,
}

/// Bounded retry with exponential backoff and deterministic jitter on the
/// virtual clock. A killed request's attempt `k` (1-based) is re-released
/// at `kill_time + backoff_base_s · backoff_factor^(k-1) · (1 +
/// jitter_frac · u)` where `u ∈ [0, 1]` is a pure hash of `(seed, request
/// index, k)` — the same seed replays the same jitter, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum *re*-tries per request (beyond the original attempt); when
    /// exhausted the request is permanently lost.
    pub max_attempts: u32,
    /// First backoff interval, seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff per additional attempt.
    pub backoff_factor: f64,
    /// Jitter amplitude as a fraction of the backoff (0 = none).
    pub jitter_frac: f64,
    /// Seed of the deterministic jitter hash.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_s: 0.05,
            backoff_factor: 2.0,
            jitter_frac: 0.5,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    pub(crate) fn validate(&self) -> Result<(), CoreError> {
        let ok = self.max_attempts >= 1
            && self.backoff_base_s.is_finite()
            && self.backoff_base_s > 0.0
            && self.backoff_factor.is_finite()
            && self.backoff_factor >= 1.0
            && self.jitter_frac.is_finite()
            && self.jitter_frac >= 0.0;
        if ok {
            Ok(())
        } else {
            Err(CoreError::Infeasible {
                what: format!(
                    "retry policy needs attempts ≥ 1, positive finite backoff, \
                     factor ≥ 1 and non-negative jitter (got {self:?})"
                ),
            })
        }
    }
}

/// How the serving loop responds to killed and at-risk requests. The
/// default is no recovery — kills become permanent losses, nothing is
/// shed, nothing is hedged — which is the no-recovery baseline the chaos
/// gates measure degradation against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Re-queue killed requests with backoff ([`RetryPolicy`]); `None`
    /// means kills are permanent.
    pub retry: Option<RetryPolicy>,
    /// Drop a killed request instead of retrying when its backoff release
    /// already overruns the SLA deadline (the retry could never help).
    pub deadline_abort: bool,
    /// Shed a queued request at pick time when a sound lower bound on any
    /// completion admitted now already overruns its deadline.
    pub shed: bool,
    /// Dispatch a second, node-disjoint-where-possible copy of every
    /// premium batch; the earlier surviving copy wins. Streaming-tier
    /// only.
    pub hedge_premium: bool,
}

impl RecoveryPolicy {
    /// Retry with the default backoff plus deadline abort — the standard
    /// recovery configuration the chaos gates run.
    pub fn standard() -> Self {
        Self {
            retry: Some(RetryPolicy::default()),
            deadline_abort: true,
            shed: false,
            hedge_premium: false,
        }
    }

    /// Whether any recovery response is enabled.
    pub(crate) fn is_active(&self) -> bool {
        self.retry.is_some() || self.deadline_abort || self.shed || self.hedge_premium
    }
}

/// Explicit offered/completed/dropped accounting for one serving run,
/// including recovery traffic. The invariant `offered == completed +
/// dropped() + in_flight_at_horizon` always holds
/// ([`RobustnessStats::accounts_for_every_request`]); fault-free runs
/// report `offered == completed == requests`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustnessStats {
    /// Requests offered to the runtime (the input stream).
    pub offered: u64,
    /// Requests that completed (possibly after retries).
    pub completed: u64,
    /// Requests shed at admission (deadline provably unmeetable).
    pub shed: u64,
    /// Killed requests dropped because their retry release would already
    /// overrun the deadline.
    pub aborted: u64,
    /// Requests permanently lost (killed with retries exhausted or
    /// disabled).
    pub lost: u64,
    /// Kill events (a request retried and killed again counts once per
    /// kill).
    pub killed: u64,
    /// Retry attempts re-queued.
    pub retried: u64,
    /// Requests that received a hedge copy.
    pub hedged: u64,
    /// Requests still unresolved when the run ended (0 for serving runs,
    /// which drain; fleet rounds can truncate).
    pub in_flight_at_horizon: u64,
}

impl RobustnessStats {
    /// The accounting for a fault-free run: everything offered completed.
    pub(crate) fn all_completed(n: usize) -> Self {
        Self {
            offered: n as u64,
            completed: n as u64,
            ..Self::default()
        }
    }

    /// Requests dropped for any reason (shed + aborted + lost).
    pub fn dropped(&self) -> u64 {
        self.shed + self.aborted + self.lost
    }

    /// Renders the stats as one JSON object (hand-rolled: the build
    /// environment has no serde_json). Every robustness benchmark document
    /// (`BENCH_chaos.json`, `BENCH_drift.json`) nests this same shape.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"offered\": {}, \"completed\": {}, \"shed\": {}, \"aborted\": {}, \
             \"lost\": {}, \"killed\": {}, \"retried\": {}, \"hedged\": {}, \
             \"in_flight_at_horizon\": {}}}",
            self.offered,
            self.completed,
            self.shed,
            self.aborted,
            self.lost,
            self.killed,
            self.retried,
            self.hedged,
            self.in_flight_at_horizon
        )
    }

    /// Whether the conservation invariant holds: every offered request is
    /// completed, dropped, or still in flight.
    pub fn accounts_for_every_request(&self) -> bool {
        self.offered == self.completed + self.dropped() + self.in_flight_at_horizon
    }

    /// Field-wise accumulation (fleet rollup).
    pub fn merge(&mut self, other: &Self) {
        self.offered += other.offered;
        self.completed += other.completed;
        self.shed += other.shed;
        self.aborted += other.aborted;
        self.lost += other.lost;
        self.killed += other.killed;
        self.retried += other.retried;
        self.hedged += other.hedged;
        self.in_flight_at_horizon += other.in_flight_at_horizon;
    }
}

/// Configuration of the serving loop. The default is the degenerate mode:
/// FIFO, no batching, unbounded in-flight, static cluster — exactly the
/// regime [`crate::Scenario`] evaluates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Which queued request is admitted next.
    pub policy: AdmissionPolicy,
    /// Maximum same-`(model, batch)` requests coalesced into one batched
    /// plan (1 = no batching).
    pub max_batch: usize,
    /// Maximum batches in estimated flight before admission stalls
    /// (`None` = unbounded: every request is admitted at its arrival;
    /// `Some(0)` is treated as `Some(1)` — a window that can never admit
    /// would serve nothing).
    pub max_inflight: Option<usize>,
    /// Timed node failures/recoveries replayed while serving.
    pub timeline: ClusterTimeline,
    /// What a down-flip does to batches already in flight.
    pub failures: FailureMode,
    /// Recovery responses for killed and at-risk requests.
    pub recovery: RecoveryPolicy,
    /// Straggler windows the dispatch estimator replays: compute starting
    /// inside a window on its node runs `factor`× slower. Streaming-mode
    /// only.
    pub slowdowns: Vec<SlowdownWindow>,
    /// Continuous drift the dispatch estimator replays: throttle curves
    /// per node, seeded background-load windows and contention-dependent
    /// bandwidth. Empty = no drift (bit-identical to the drift-free
    /// arithmetic). Streaming-mode only.
    pub drift: DriftModel,
    /// The adaptive loop: online per-node rate estimation plus
    /// hysteresis-bounded re-planning against a believed cluster. `None`
    /// keeps planning static. Streaming-mode only.
    pub adaptive: Option<AdaptiveConfig>,
}

/// One admission the serving loop performed: when, under which epoch, and
/// which requests (by input index) the batch served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmittedBatch {
    /// Admission (release) time, seconds.
    pub admitted: f64,
    /// Cluster epoch the batch was planned under (number of timeline events
    /// applied before planning).
    pub epoch: usize,
    /// Input indices of the requests the batch serves, arrival order.
    pub members: Vec<usize>,
}

/// A serving workload: requests plus the [`ServingConfig`] governing
/// admission, batching and the failure timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingScenario {
    label: String,
    requests: Vec<ServingRequest>,
    config: ServingConfig,
    trace: TraceDetail,
}

impl ServingScenario {
    /// Wraps `requests` with the degenerate default config; labelled
    /// `serving[n]`.
    pub fn new(requests: Vec<ServingRequest>) -> Self {
        let label = format!("serving[{}]", requests.len());
        Self {
            label,
            requests,
            config: ServingConfig {
                max_batch: 1,
                ..ServingConfig::default()
            },
            trace: TraceDetail::Full,
        }
    }

    /// Replaces the report label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Replaces the whole config (builder style); `max_batch` is clamped to
    /// at least 1.
    #[must_use]
    pub fn with_config(mut self, config: ServingConfig) -> Self {
        self.config = config;
        self.config.max_batch = self.config.max_batch.max(1);
        self
    }

    /// Sets the admission policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the batching limit (builder style, clamped to ≥ 1).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch.max(1);
        self
    }

    /// Sets the in-flight admission window (builder style).
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: Option<usize>) -> Self {
        self.config.max_inflight = max_inflight;
        self
    }

    /// Sets the failure timeline (builder style).
    #[must_use]
    pub fn with_timeline(mut self, timeline: ClusterTimeline) -> Self {
        self.config.timeline = timeline;
        self
    }

    /// Sets what down-flips do to in-flight batches (builder style).
    #[must_use]
    pub fn with_failure_mode(mut self, failures: FailureMode) -> Self {
        self.config.failures = failures;
        self
    }

    /// Sets the recovery policy (builder style).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.config.recovery = recovery;
        self
    }

    /// Sets the straggler slowdown windows (builder style).
    #[must_use]
    pub fn with_slowdowns(mut self, slowdowns: Vec<SlowdownWindow>) -> Self {
        self.config.slowdowns = slowdowns;
        self
    }

    /// Sets the continuous drift model (builder style).
    #[must_use]
    pub fn with_drift(mut self, drift: DriftModel) -> Self {
        self.config.drift = drift;
        self
    }

    /// Enables the adaptive estimation/re-planning loop (builder style).
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.config.adaptive = Some(adaptive);
        self
    }

    /// Sets how much of the execution trace simulation materialises
    /// (builder style); serving aggregates are identical in both modes.
    #[must_use]
    pub fn with_trace_detail(mut self, trace: TraceDetail) -> Self {
        self.trace = trace;
        self
    }

    /// The report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The requests, input order.
    pub fn requests(&self) -> &[ServingRequest] {
        &self.requests
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the scenario has no requests (such a scenario cannot run).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Runs the serving loop with a scenario-local [`PlanCache`].
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario is empty, a request or timeline
    /// event is invalid, or planning/simulation fails.
    pub fn run(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ServingEvaluation, CoreError> {
        self.run_with_cache(strategy, cluster, leader, &PlanCache::new())
    }

    /// [`ServingScenario::run`] against a caller-owned [`PlanCache`], for
    /// plan reuse across runs (batched plans and per-epoch replans share
    /// the same `(strategy, graph, batch, leader, cluster-epoch)` keys the
    /// static pipeline uses).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServingScenario::run`].
    pub fn run_with_cache(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
    ) -> Result<ServingEvaluation, CoreError> {
        let mut scratch = ServingScratch::new();
        self.run_with_cache_in(strategy, cluster, leader, cache, &mut scratch)
    }

    /// [`ServingScenario::run_with_cache`] against caller-owned working
    /// memory (what sweep workers use). Results are bit-identical to the
    /// other entry points.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServingScenario::run`].
    pub fn run_with_cache_in(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
        scratch: &mut ServingScratch,
    ) -> Result<ServingEvaluation, CoreError> {
        self.validate(cluster)?;
        self.ensure_records_mode_supported()?;
        let requests = &self.requests;
        let mut stream: Vec<(f64, f64, Arc<ExecutionPlan>)> = Vec::new();
        let mut batches: Vec<AdmittedBatch> = Vec::new();
        let (stats, epochs_applied) = self.indexed_admission(
            strategy,
            cluster,
            leader,
            cache,
            scratch,
            false,
            |now, epoch, members, plan, _| {
                stream.push((requests[members[0] as usize].arrival, now, Arc::clone(plan)));
                batches.push(AdmittedBatch {
                    admitted: now,
                    epoch,
                    members: members.iter().map(|&m| m as usize).collect(),
                });
            },
        )?;
        self.finish(
            strategy,
            cluster,
            AdmissionOutcome {
                stream,
                batches,
                stats,
                epochs_applied,
            },
            &mut scratch.sim,
        )
    }

    /// [`ServingScenario::run`] through the original `Vec`-scan admission
    /// loop, kept as the frozen baseline for the indexed structure. Output
    /// is bit-identical to [`ServingScenario::run`] (pinned by
    /// `tests/serving_admission_equivalence.rs`); complexity is O(n) per
    /// admission instead of O(log n). Exists for the equivalence tests and
    /// the admission benchmark — new code should call
    /// [`ServingScenario::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServingScenario::run`].
    pub fn run_reference(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ServingEvaluation, CoreError> {
        self.validate(cluster)?;
        self.ensure_records_mode_supported()?;
        let cache = PlanCache::new();
        let outcome = self.admission_loop_reference(strategy, cluster, leader, &cache)?;
        let mut scratch = SimScratch::new();
        self.finish(strategy, cluster, outcome, &mut scratch)
    }

    /// Runs the serving loop in **streaming** mode: same indexed admission,
    /// but no per-request records, no admission log and no full-stream
    /// simulation — completions come from the dispatch model, latency tails
    /// from constant-memory P² sketches, and the result is the all-`Copy`
    /// [`ServingSummary`]. Memory is O(requests) for the input plus O(1)
    /// for the aggregates, which is what the 1M-request soak runs on.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServingScenario::run`].
    pub fn run_streaming(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ServingSummary, CoreError> {
        let mut scratch = ServingScratch::new();
        self.run_streaming_with_cache_in(strategy, cluster, leader, &PlanCache::new(), &mut scratch)
    }

    /// [`ServingScenario::run_streaming`] against a caller-owned
    /// [`PlanCache`] and [`ServingScratch`]. After the first pass has sized
    /// the scratch, a steady-state pass over the same workload shape
    /// performs zero heap allocations (`tests/zero_alloc_warm_path.rs`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServingScenario::run`].
    pub fn run_streaming_with_cache_in(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
        scratch: &mut ServingScratch,
    ) -> Result<ServingSummary, CoreError> {
        self.validate(cluster)?;
        if self.config.is_robust() {
            return self.run_robust_streaming(strategy, cluster, leader, cache, scratch);
        }
        let requests = &self.requests;
        let mut latency_tail = StreamingTail::new();
        let mut queueing_tail = StreamingTail::new();
        let mut class_tail = [StreamingTail::new(); 3];
        let mut class_queueing_sum = [0.0f64; 3];
        let mut class_misses = [0usize; 3];
        let mut deadline_misses = 0usize;
        let mut makespan = 0.0f64;
        let mut batch_count = 0usize;
        let (stats, epochs_applied) = self.indexed_admission(
            strategy,
            cluster,
            leader,
            cache,
            scratch,
            true,
            |now, _epoch, members, _plan, completion| {
                let completion = completion.expect("streaming mode always estimates");
                batch_count += 1;
                if completion > makespan {
                    makespan = completion;
                }
                for &m in members {
                    let request = &requests[m as usize];
                    let latency = completion - request.arrival;
                    let delay = now - request.arrival;
                    latency_tail.observe(latency);
                    queueing_tail.observe(delay);
                    let class = request.sla.priority() as usize;
                    class_tail[class].observe(latency);
                    class_queueing_sum[class] += delay;
                    if latency > request.sla.deadline_seconds() {
                        deadline_misses += 1;
                        class_misses[class] += 1;
                    }
                }
            },
        )?;
        let mut per_class = [None; 3];
        for (c, &class) in SlaClass::ALL.iter().enumerate() {
            if let Some(latency) = class_tail[c].summary() {
                per_class[c] = Some(SlaClassReport {
                    class,
                    latency,
                    mean_queueing_delay: class_queueing_sum[c] / latency.count as f64,
                    deadline_misses: class_misses[c],
                });
            }
        }
        Ok(ServingSummary {
            requests: requests.len(),
            batches: batch_count,
            epochs_applied,
            makespan,
            latency: latency_tail.summary().expect("scenario is non-empty"),
            mean_queueing_delay: queueing_tail.mean(),
            max_queueing_delay: queueing_tail.max(),
            deadline_misses,
            per_class,
            plan_cache: stats,
            robustness: RobustnessStats::all_completed(requests.len()),
            drift: DriftStats {
                replans: 0,
                observations: 0,
                energy_j: scratch.dispatch.energy_j,
            },
        })
    }

    /// The failure-aware streaming loop: the same indexed admission as
    /// [`ServingScenario::run_streaming`], extended with kill semantics and
    /// the [`RecoveryPolicy`] responses.
    ///
    /// Structurally, admitted batches enter a pending FIFO (admission
    /// order) instead of being observed immediately; a batch is
    /// *finalised* — observed into the latency tails — once the virtual
    /// clock passes its effective completion, and *killed* when a
    /// down-flip lands on a node its plan touches while it is still in
    /// flight. Because finalisation pops the FIFO in admission order, a
    /// fault-free robust run feeds the order-sensitive P² sketches exactly
    /// the sequence the legacy loop does, which is what makes the no-fault
    /// degenerate config bit-identical to `run_streaming` (pinned by
    /// `tests/chaos_robustness.rs`).
    ///
    /// Retried requests keep their original arrival and input index: the
    /// deadline rule (see `hidp_sim::serving`) measures SLA misses
    /// arrival → *final* completion across every attempt, and re-planning
    /// flows through the shared [`PlanCache`] keyed by the post-failure
    /// cluster fingerprint. Hedge copies consume real estimator capacity
    /// (a hedge is not free) and are planned against the epoch cluster
    /// with the primary's most exposed non-leader node marked down, so the
    /// copy survives exactly the failure most likely to kill the primary.
    fn run_robust_streaming(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
        scratch: &mut ServingScratch,
    ) -> Result<ServingSummary, CoreError> {
        let requests = &self.requests;
        let n = requests.len();
        let max_inflight = self.config.max_inflight.map(|w| w.max(1));
        let kill = self.config.failures == FailureMode::Kill;
        let recovery = self.config.recovery;
        let retry_policy = recovery.retry;
        let slowdowns = self.config.slowdowns.as_slice();
        let drift = (!self.config.drift.is_empty()).then_some(&self.config.drift);
        let acfg = self.config.adaptive;
        let ServingScratch {
            key,
            order,
            queue,
            members,
            graphs,
            dispatch,
            inflight,
            epoch_cluster,
            pending,
            pending_members,
            retries,
            attempts,
            hedge_cluster,
            adaptive,
            ..
        } = scratch;

        key.strategy.clear();
        key.strategy.push_str(strategy.name());
        strategy.write_cache_config(&mut key.strategy_config);
        key.graph_fingerprint = 0;
        key.batch = 0;
        key.leader = leader;
        key.cluster_fingerprint = cluster.fingerprint();

        order.clear();
        order.extend(0..n as u32);
        order.sort_unstable_by(|&a, &b| {
            (requests[a as usize].arrival + 0.0)
                .total_cmp(&(requests[b as usize].arrival + 0.0))
                .then(a.cmp(&b))
        });

        queue.reset(n);
        dispatch.reset();
        inflight.clear();
        pending.clear();
        pending_members.clear();
        retries.clear();
        attempts.clear();
        attempts.resize(n, 0u32);
        // Reset also deactivates any belief a previous run materialised: a
        // non-adaptive run must not inherit it, and an adaptive steady-state
        // pass must rediscover it exactly like the warm pass did.
        match acfg.as_ref() {
            Some(cfg) => adaptive.reset(cfg, cluster.len()),
            None => adaptive.reset(&AdaptiveConfig::default(), 0),
        }

        let events = self.config.timeline.events();
        let mut current: Option<&mut Cluster> = if events.is_empty() {
            None
        } else {
            Some(match epoch_cluster {
                Some(c) => {
                    // Availability-only rewind keeps warm passes
                    // zero-alloc; a different base cluster falls back to a
                    // full clone.
                    if c.restore_availability_from(cluster).is_err() {
                        c.clone_from(cluster);
                    }
                    c
                }
                None => epoch_cluster.insert(cluster.clone()),
            })
        };
        let mut next_event = 0usize;
        let mut epoch = 0usize;

        let mut departure_seq = 0u64;
        let mut retry_seq = 0u64;
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;
        let mut stats = PlanCacheStats::default();

        let mut latency_tail = StreamingTail::new();
        let mut queueing_tail = StreamingTail::new();
        let mut class_tail = [StreamingTail::new(); 3];
        let mut class_queueing_sum = [0.0f64; 3];
        let mut class_misses = [0usize; 3];
        let mut deadline_misses = 0usize;
        let mut makespan = 0.0f64;
        let mut batch_count = 0usize;
        let mut robustness = RobustnessStats {
            offered: n as u64,
            ..RobustnessStats::default()
        };

        // Observes one surviving batch's members into the tails, in
        // admission order (callers pop the pending FIFO front-first).
        macro_rules! finalise {
            ($b:expr) => {{
                let b = $b;
                let completion = b.effective_completion();
                if completion > makespan {
                    makespan = completion;
                }
                robustness.completed += u64::from(b.members_len);
                let span = b.members_start as usize..(b.members_start + b.members_len) as usize;
                for &m in &pending_members[span] {
                    let request = &requests[m as usize];
                    let latency = completion - request.arrival;
                    let delay = b.admitted - request.arrival;
                    latency_tail.observe(latency);
                    queueing_tail.observe(delay);
                    let class = request.sla.priority() as usize;
                    class_tail[class].observe(latency);
                    class_queueing_sum[class] += delay;
                    if latency > request.sla.deadline_seconds() {
                        deadline_misses += 1;
                        class_misses[class] += 1;
                    }
                }
            }};
        }

        loop {
            // Admit everything the window allows at the current instant.
            while queue.len() > 0 && max_inflight.is_none_or(|w| inflight.len() < w) {
                let head = queue.pick(self.config.policy);
                if recovery.shed {
                    // Load shedding: every admitted completion is ≥
                    // max(now, earliest free resource) — when even that
                    // sound lower bound overruns the head's deadline,
                    // serving it would burn capacity on a guaranteed miss.
                    let request = &requests[head as usize];
                    let bound = now.max(dispatch.earliest_free());
                    if bound > request.arrival + request.sla.deadline_seconds() {
                        queue.remove(head, requests);
                        robustness.shed += 1;
                        continue;
                    }
                }
                queue.coalesce(head, self.config.max_batch, members);
                for &m in members.iter() {
                    queue.remove(m, requests);
                }
                let head = &requests[head as usize];
                let combined = head.batch * members.len();
                let graph = graphs
                    .entry((head.model, combined))
                    .or_insert_with(|| Arc::new(head.model.graph(combined)));
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                // Closed-loop re-planning: when an effective-rate estimate
                // leaves the hysteresis band (bounded by `max_replans`), or
                // an availability flip staled the belief, rebuild the
                // believed cluster from the current epoch base. Planning
                // and cache keys then follow the belief; execution stays on
                // the true cluster.
                if let Some(cfg) = acfg.as_ref() {
                    let hysteresis =
                        adaptive.replans < cfg.max_replans && adaptive.should_replan(cfg);
                    if hysteresis || (adaptive.stale && adaptive.active) {
                        if hysteresis {
                            adaptive.replans += 1;
                        }
                        let belief_base: &Cluster = current.as_deref().unwrap_or(cluster);
                        adaptive.rebuild_believed(belief_base, hysteresis, cfg)?;
                    }
                }
                if let Some(believed) = adaptive.belief() {
                    key.cluster_fingerprint = believed.fingerprint();
                }
                let plan_cluster: &Cluster = match adaptive.belief() {
                    Some(believed) => believed,
                    None => current.as_deref().unwrap_or(cluster),
                };
                let (plan, hit) = cache.plan_keyed(key, strategy, graph, plan_cluster, leader)?;
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }
                let completion = dispatch.estimate_full(
                    plan.as_ref(),
                    cluster,
                    now,
                    slowdowns,
                    drift,
                    acfg.as_ref().map(|cfg| (cfg, &mut *adaptive)),
                )?;
                let mask = if kill || recovery.hedge_premium {
                    plan_node_mask(plan.as_ref())
                } else {
                    0
                };

                let mut hedge_completion = f64::INFINITY;
                let mut hedge_mask = 0u64;
                let mut hedge_alive = false;
                if recovery.hedge_premium && head.sla == SlaClass::Premium {
                    let exposed = mask & !(1u64 << (leader.0 as u64 & 63));
                    if exposed != 0 {
                        let avoid = NodeIndex(exposed.trailing_zeros() as usize);
                        let base: &Cluster = current.as_deref().unwrap_or(cluster);
                        let hc = match hedge_cluster {
                            Some(c) => {
                                if c.restore_availability_from(base).is_err() {
                                    c.clone_from(base);
                                }
                                c
                            }
                            None => hedge_cluster.insert(base.clone()),
                        };
                        if hc.set_available(avoid, false).is_ok() {
                            let saved = key.cluster_fingerprint;
                            key.cluster_fingerprint = hc.fingerprint();
                            let hedged = cache.plan_keyed(key, strategy, graph, hc, leader);
                            key.cluster_fingerprint = saved;
                            // A cluster that cannot plan without the
                            // avoided node simply gets no hedge copy —
                            // hedging is opportunistic, never fatal.
                            if let Ok((hedge_plan, hedge_hit)) = hedged {
                                if hedge_hit {
                                    stats.hits += 1;
                                } else {
                                    stats.misses += 1;
                                }
                                // Hedge copies run on the same drifting
                                // truth but feed no observer — one batch
                                // must not count twice in the estimators.
                                hedge_completion = dispatch.estimate_full(
                                    hedge_plan.as_ref(),
                                    cluster,
                                    now,
                                    slowdowns,
                                    drift,
                                    None,
                                )?;
                                hedge_mask = if kill {
                                    plan_node_mask(hedge_plan.as_ref())
                                } else {
                                    0
                                };
                                hedge_alive = true;
                                robustness.hedged += members.len() as u64;
                            }
                        }
                    }
                }

                let effective = completion.min(hedge_completion);
                if max_inflight.is_some() {
                    inflight.push(Reverse(Departure {
                        at: effective,
                        seq: departure_seq,
                    }));
                    departure_seq += 1;
                }
                let members_start = pending_members.len() as u32;
                pending_members.extend_from_slice(members);
                pending.push_back(PendingBatch {
                    admitted: now,
                    completion,
                    hedge_completion,
                    mask,
                    hedge_mask,
                    members_start,
                    members_len: members.len() as u32,
                    primary_alive: true,
                    hedge_alive,
                });
                batch_count += 1;
            }

            let work_left = next_arrival < n || queue.len() > 0 || !retries.is_empty();
            // Remaining down-flips can still kill pending work even after
            // the queue drains, so the clock must keep walking events while
            // any pending copy outlives the next *down* event (up events
            // never kill, so they alone never drive the clock — exactly
            // the legacy loop's behaviour on up-only timelines).
            let next_down = if kill {
                events[next_event..].iter().find(|e| !e.up)
            } else {
                None
            };
            let kills_pending = next_down.is_some_and(|e| {
                pending.iter().any(|b| {
                    (b.primary_alive && b.completion > e.time)
                        || (b.hedge_alive && b.hedge_completion > e.time)
                })
            });
            if !work_left && !kills_pending {
                // Drain: finalise every surviving batch in admission order.
                while let Some(b) = pending.pop_front() {
                    if b.alive() {
                        finalise!(b);
                    }
                }
                break;
            }

            // Blocked: wait for the next arrival, retry release, estimated
            // completion (when the window is full) or kill-relevant flip,
            // whichever comes first.
            let mut t = f64::INFINITY;
            if next_arrival < n {
                t = requests[order[next_arrival] as usize].arrival + 0.0;
            }
            if let Some(&Reverse(entry)) = retries.peek() {
                t = t.min(entry.release);
            }
            if queue.len() > 0 {
                let Reverse(soonest) = inflight
                    .peek()
                    .expect("a full admission window implies in-flight batches");
                t = t.min(soonest.at);
            }
            if kills_pending {
                let down = next_down.expect("kills_pending implies a down event");
                t = t.min(down.time + 0.0);
            }
            // Replay timeline events due by then. Each flip re-keys later
            // planning; under kill semantics a down-flip additionally kills
            // every pending copy whose plan touches the node and whose
            // completion lies beyond the flip (work finished by the flip
            // instant was already committed — the engine's rule).
            while next_event < events.len() && events[next_event].time <= t {
                let event = events[next_event];
                let c = current.as_mut().expect("events imply an epoch cluster");
                c.set_available(event.node, event.up)?;
                key.cluster_fingerprint = c.fingerprint();
                epoch += 1;
                next_event += 1;
                if adaptive.active {
                    // The belief was derated from the previous epoch's
                    // availability; the next admission rebuilds it from
                    // this one (without consuming a re-plan).
                    adaptive.stale = true;
                }
                if !kill || event.up {
                    continue;
                }
                if let Some(cfg) = acfg.as_ref() {
                    adaptive.observe_kill(event.node.0, cfg);
                }
                let bit = 1u64 << (event.node.0 as u64 & 63);
                for b in pending.iter_mut() {
                    let was_alive = b.alive();
                    if b.primary_alive && b.completion > event.time && b.mask & bit != 0 {
                        b.primary_alive = false;
                    }
                    if b.hedge_alive && b.hedge_completion > event.time && b.hedge_mask & bit != 0 {
                        b.hedge_alive = false;
                    }
                    if !was_alive || b.alive() {
                        continue;
                    }
                    // Every copy is gone: the members are killed and flow
                    // through the recovery policy.
                    robustness.killed += u64::from(b.members_len);
                    let span = b.members_start as usize..(b.members_start + b.members_len) as usize;
                    for &m in &pending_members[span] {
                        let i = m as usize;
                        attempts[i] += 1;
                        let retryable = retry_policy.is_some_and(|r| attempts[i] <= r.max_attempts);
                        if !retryable {
                            robustness.lost += 1;
                            continue;
                        }
                        let policy = retry_policy.expect("retryable implies a policy");
                        let backoff = policy.backoff_base_s
                            * policy.backoff_factor.powi(attempts[i] as i32 - 1);
                        let unit = fnv64(&[policy.seed, m as u64, u64::from(attempts[i])]) as f64
                            / u64::MAX as f64;
                        let release = event.time + backoff * (1.0 + policy.jitter_frac * unit);
                        if recovery.deadline_abort
                            && release > requests[i].arrival + requests[i].sla.deadline_seconds()
                        {
                            robustness.aborted += 1;
                        } else {
                            retries.push(Reverse(RetryEntry {
                                release,
                                seq: retry_seq,
                                idx: m,
                            }));
                            retry_seq += 1;
                            robustness.retried += 1;
                        }
                    }
                }
            }
            if t > now {
                now = t;
            }
            while let Some(&Reverse(soonest)) = inflight.peek() {
                if soonest.at <= now {
                    inflight.pop();
                } else {
                    break;
                }
            }
            // Finalise batches the clock has passed, front-first so the
            // observation order stays the admission order.
            while let Some(front) = pending.front() {
                if !front.alive() {
                    pending.pop_front();
                    continue;
                }
                if front.effective_completion() <= now {
                    let b = pending.pop_front().expect("front exists");
                    finalise!(b);
                } else {
                    break;
                }
            }
            // Released retries re-enter ahead of same-instant fresh
            // arrivals: a retried request is strictly older work.
            while let Some(&Reverse(entry)) = retries.peek() {
                if entry.release <= now {
                    retries.pop();
                    queue.push(entry.idx, requests, self.config.policy);
                } else {
                    break;
                }
            }
            while next_arrival < n && requests[order[next_arrival] as usize].arrival + 0.0 <= now {
                queue.push(order[next_arrival], requests, self.config.policy);
                next_arrival += 1;
            }
        }

        debug_assert!(
            robustness.accounts_for_every_request(),
            "request conservation violated: {robustness:?}"
        );
        let latency = latency_tail
            .summary()
            .ok_or_else(|| CoreError::Infeasible {
                what: format!(
                    "serving scenario '{}': no request completed under the fault timeline",
                    self.label
                ),
            })?;
        let mut per_class = [None; 3];
        for (c, &class) in SlaClass::ALL.iter().enumerate() {
            if let Some(latency) = class_tail[c].summary() {
                per_class[c] = Some(SlaClassReport {
                    class,
                    latency,
                    mean_queueing_delay: class_queueing_sum[c] / latency.count as f64,
                    deadline_misses: class_misses[c],
                });
            }
        }
        Ok(ServingSummary {
            requests: n,
            batches: batch_count,
            epochs_applied: epoch,
            makespan,
            latency,
            mean_queueing_delay: queueing_tail.mean(),
            max_queueing_delay: queueing_tail.max(),
            deadline_misses,
            per_class,
            plan_cache: stats,
            robustness,
            drift: DriftStats {
                replans: adaptive.replans,
                observations: adaptive.observations,
                energy_j: dispatch.energy_j,
            },
        })
    }

    /// Rejects empty scenarios, invalid arrivals/batches and timelines
    /// referencing unknown nodes — shared by every entry point.
    fn validate(&self, cluster: &Cluster) -> Result<(), CoreError> {
        if self.requests.is_empty() {
            return Err(CoreError::Infeasible {
                what: format!("serving scenario '{}' has no requests", self.label),
            });
        }
        if self.requests.len() >= u32::MAX as usize {
            return Err(CoreError::Infeasible {
                what: format!(
                    "serving scenario '{}' exceeds the 2^32-1 request limit",
                    self.label
                ),
            });
        }
        for (i, request) in self.requests.iter().enumerate() {
            if !(request.arrival.is_finite() && request.arrival >= 0.0) {
                return Err(CoreError::Infeasible {
                    what: format!(
                        "serving scenario '{}': request {i} has invalid arrival {}",
                        self.label, request.arrival
                    ),
                });
            }
            if request.batch == 0 {
                return Err(CoreError::Infeasible {
                    what: format!("serving scenario '{}': request {i} has batch 0", self.label),
                });
            }
        }
        self.config.timeline.validate(cluster)?;
        for window in &self.config.slowdowns {
            window.validate()?;
            cluster.node(window.node)?;
        }
        self.config.drift.validate(cluster.len())?;
        if let Some(adaptive) = &self.config.adaptive {
            adaptive.validate()?;
        }
        if let Some(retry) = &self.config.recovery.retry {
            retry.validate()?;
        }
        if (self.config.failures == FailureMode::Kill || self.config.recovery.hedge_premium)
            && cluster.len() > 64
        {
            return Err(CoreError::Infeasible {
                what: format!(
                    "serving scenario '{}': kill semantics and hedging track plan \
                     residency in a 64-bit node mask; the cluster has {} nodes",
                    self.label,
                    cluster.len()
                ),
            });
        }
        Ok(())
    }

    /// Recovery policies and slowdown windows need the dispatch model to
    /// own the completions, so they are streaming-only; the records modes
    /// reject them up front (they do support plain [`FailureMode::Kill`],
    /// simulated by the failure-aware event engine).
    fn ensure_records_mode_supported(&self) -> Result<(), CoreError> {
        if self.config.recovery.is_active()
            || !self.config.slowdowns.is_empty()
            || !self.config.drift.is_empty()
            || self.config.adaptive.is_some()
        {
            return Err(CoreError::Infeasible {
                what: format!(
                    "serving scenario '{}': recovery policies, slowdown windows, \
                     drift models and the adaptive loop are streaming-only (use \
                     run_streaming); the records mode supports FailureMode::Kill \
                     alone",
                    self.label
                ),
            });
        }
        Ok(())
    }

    /// The indexed virtual-clock loop shared by the records and streaming
    /// modes: walks arrivals, timeline events and estimated completions;
    /// admits batches per policy through the [`IndexedQueue`]; plans each
    /// batch against the current epoch's cluster through `cache`; and hands
    /// every admitted batch to `on_admit` as
    /// `(now, epoch, members, plan, estimated completion)`. Completions are
    /// estimated whenever the window is bounded or `always_estimate` is set
    /// (streaming mode), via the persistent [`DispatchEstimator`].
    #[allow(clippy::too_many_arguments)]
    fn indexed_admission(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
        scratch: &mut ServingScratch,
        always_estimate: bool,
        mut on_admit: impl FnMut(f64, usize, &[u32], &Arc<ExecutionPlan>, Option<f64>),
    ) -> Result<(PlanCacheStats, usize), CoreError> {
        let requests = &self.requests;
        let n = requests.len();
        // A window of zero could never admit anything (the loop below would
        // wait on an in-flight completion that cannot exist); serving
        // requires at least one slot, so Some(0) is clamped like max_batch.
        let max_inflight = self.config.max_inflight.map(|w| w.max(1));
        let need_estimate = always_estimate || max_inflight.is_some();
        let ServingScratch {
            key,
            order,
            queue,
            members,
            graphs,
            dispatch,
            inflight,
            epoch_cluster,
            ..
        } = scratch;

        // Refresh the hoisted plan key in place: the strategy string reuses
        // its buffer, so for default-config strategies a steady-state pass
        // rebuilds the key without allocating.
        key.strategy.clear();
        key.strategy.push_str(strategy.name());
        strategy.write_cache_config(&mut key.strategy_config);
        key.graph_fingerprint = 0;
        key.batch = 0;
        key.leader = leader;
        key.cluster_fingerprint = cluster.fingerprint();

        // Arrival processing order: by time, ties by input order. Arrivals
        // are normalised (+0.0) so a -0.0 arrival cannot jump a +0.0 one;
        // with the index as tie-break the unstable sort reproduces the
        // reference loop's stable sort exactly, without its merge buffer.
        order.clear();
        order.extend(0..n as u32);
        order.sort_unstable_by(|&a, &b| {
            (requests[a as usize].arrival + 0.0)
                .total_cmp(&(requests[b as usize].arrival + 0.0))
                .then(a.cmp(&b))
        });

        queue.reset(n);
        dispatch.reset();
        inflight.clear();

        // The epoch cluster is only materialised when the timeline actually
        // has events; `clone_from` reuses the previous run's buffers.
        let events = self.config.timeline.events();
        let mut current: Option<&mut Cluster> = if events.is_empty() {
            None
        } else {
            Some(match epoch_cluster {
                Some(c) => {
                    c.clone_from(cluster);
                    c
                }
                None => epoch_cluster.insert(cluster.clone()),
            })
        };
        let mut next_event = 0usize;
        let mut epoch = 0usize;

        let mut departure_seq = 0u64;
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;
        let mut stats = PlanCacheStats::default();

        loop {
            // Admit everything the window allows at the current instant.
            while queue.len() > 0 && max_inflight.is_none_or(|w| inflight.len() < w) {
                let head = queue.pick(self.config.policy);
                queue.coalesce(head, self.config.max_batch, members);
                for &m in members.iter() {
                    queue.remove(m, requests);
                }
                let head = &requests[head as usize];
                let combined = head.batch * members.len();
                let graph = graphs
                    .entry((head.model, combined))
                    .or_insert_with(|| Arc::new(head.model.graph(combined)));
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                let plan_cluster: &Cluster = current.as_deref().unwrap_or(cluster);
                let (plan, hit) = cache.plan_keyed(key, strategy, graph, plan_cluster, leader)?;
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }

                // Measured-completion feedback: replay the plan against the
                // resource free times every earlier admission left behind.
                // Estimates run on the base cluster — the same one the
                // records mode's final simulation measures on.
                let completion = if need_estimate {
                    Some(dispatch.estimate(plan.as_ref(), cluster, now)?)
                } else {
                    None
                };
                if max_inflight.is_some() {
                    inflight.push(Reverse(Departure {
                        at: completion.expect("bounded window implies estimation"),
                        seq: departure_seq,
                    }));
                    departure_seq += 1;
                }
                on_admit(now, epoch, members, &plan, completion);
            }

            if next_arrival >= n && queue.len() == 0 {
                break;
            }

            // Blocked: wait for the next arrival or (when the window is
            // full) the next estimated completion, whichever comes first.
            let mut t = f64::INFINITY;
            if next_arrival < n {
                t = requests[order[next_arrival] as usize].arrival + 0.0;
            }
            if queue.len() > 0 {
                let Reverse(soonest) = inflight
                    .peek()
                    .expect("a full admission window implies in-flight batches");
                t = t.min(soonest.at);
            }
            // Replay timeline events due by then: each flip starts a new
            // epoch whose cluster fingerprint re-keys all later planning.
            while next_event < events.len() && events[next_event].time <= t {
                let event = &events[next_event];
                let c = current.as_mut().expect("events imply an epoch cluster");
                c.set_available(event.node, event.up)?;
                key.cluster_fingerprint = c.fingerprint();
                epoch += 1;
                next_event += 1;
            }
            if t > now {
                now = t;
            }
            while let Some(&Reverse(soonest)) = inflight.peek() {
                if soonest.at <= now {
                    inflight.pop();
                } else {
                    break;
                }
            }
            while next_arrival < n && requests[order[next_arrival] as usize].arrival + 0.0 <= now {
                queue.push(order[next_arrival], requests, self.config.policy);
                next_arrival += 1;
            }
        }

        Ok((stats, epoch))
    }

    /// The original `Vec`-scan admission loop, kept verbatim as the frozen
    /// baseline for [`ServingScenario::run`]'s indexed queue: every pick
    /// scans the whole queue (O(n)) and every coalesce removes members by
    /// position. It shares the [`DispatchEstimator`] with the indexed loop,
    /// so the two differ only in the queue data structure — which is
    /// exactly what the equivalence property test pins.
    fn admission_loop_reference(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
    ) -> Result<AdmissionOutcome, CoreError> {
        let requests = &self.requests;
        let n = requests.len();
        let max_inflight = self.config.max_inflight.map(|w| w.max(1));
        // Arrival processing order: by time, ties by input order (stable).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| (requests[a].arrival + 0.0).total_cmp(&(requests[b].arrival + 0.0)));

        let mut epoch_cluster = cluster.clone();
        let mut key = PlanKey::for_run(strategy, &epoch_cluster, leader);
        let mut graphs: HashMap<(WorkloadModel, usize), Arc<DnnGraph>> = HashMap::new();
        let mut dispatch = DispatchEstimator::default();
        let mut stats = PlanCacheStats::default();

        let events = self.config.timeline.events();
        let mut next_event = 0usize;
        let mut epoch = 0usize;

        let mut queue: Vec<usize> = Vec::new();
        let mut inflight: BinaryHeap<Reverse<Departure>> = BinaryHeap::new();
        let mut departure_seq = 0u64;
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;

        let mut stream: Vec<(f64, f64, Arc<ExecutionPlan>)> = Vec::new();
        let mut batches: Vec<AdmittedBatch> = Vec::new();

        loop {
            // Admit everything the window allows at the current instant.
            while !queue.is_empty() && max_inflight.is_none_or(|w| inflight.len() < w) {
                let head_pos = self.config.policy_pick(requests, &queue);
                let head = queue[head_pos];
                let batch_key = (requests[head].model, requests[head].batch);
                // Coalesce: the head plus queued same-(model, batch)
                // requests in queue (arrival) order, up to max_batch.
                let mut member_positions = vec![head_pos];
                for (pos, &idx) in queue.iter().enumerate() {
                    if member_positions.len() >= self.config.max_batch {
                        break;
                    }
                    if pos != head_pos && (requests[idx].model, requests[idx].batch) == batch_key {
                        member_positions.push(pos);
                    }
                }
                member_positions.sort_unstable();
                let members: Vec<usize> = member_positions.iter().map(|&pos| queue[pos]).collect();
                for &pos in member_positions.iter().rev() {
                    queue.remove(pos);
                }

                let combined = batch_key.1 * members.len();
                let graph = graphs
                    .entry((batch_key.0, combined))
                    .or_insert_with(|| Arc::new(batch_key.0.graph(combined)));
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                let (plan, hit) =
                    cache.plan_keyed(&key, strategy, graph, &epoch_cluster, leader)?;
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }

                if self.config.max_inflight.is_some() {
                    inflight.push(Reverse(Departure {
                        at: dispatch.estimate(plan.as_ref(), cluster, now)?,
                        seq: departure_seq,
                    }));
                    departure_seq += 1;
                }

                // The batch's sim arrival is its earliest member's (members
                // are in arrival order).
                stream.push((requests[members[0]].arrival, now, Arc::clone(&plan)));
                batches.push(AdmittedBatch {
                    admitted: now,
                    epoch,
                    members,
                });
            }

            if next_arrival >= n && queue.is_empty() {
                break;
            }

            // Blocked: wait for the next arrival or (when the window is
            // full) the next estimated completion, whichever comes first.
            let mut t = f64::INFINITY;
            if next_arrival < n {
                t = requests[order[next_arrival]].arrival + 0.0;
            }
            if !queue.is_empty() {
                let Reverse(soonest) = inflight
                    .peek()
                    .expect("a full admission window implies in-flight batches");
                t = t.min(soonest.at);
            }
            // Replay timeline events due by then: each flip starts a new
            // epoch whose cluster fingerprint re-keys all later planning.
            while next_event < events.len() && events[next_event].time <= t {
                let event = &events[next_event];
                epoch_cluster.set_available(event.node, event.up)?;
                key.cluster_fingerprint = epoch_cluster.fingerprint();
                epoch += 1;
                next_event += 1;
            }
            if t > now {
                now = t;
            }
            while let Some(Reverse(soonest)) = inflight.peek() {
                if soonest.at <= now {
                    inflight.pop();
                } else {
                    break;
                }
            }
            while next_arrival < n && requests[order[next_arrival]].arrival + 0.0 <= now {
                queue.push(order[next_arrival]);
                next_arrival += 1;
            }
        }

        Ok(AdmissionOutcome {
            stream,
            batches,
            stats,
            epochs_applied: epoch,
        })
    }

    /// Simulates the admitted stream and assembles the evaluation: one
    /// contention-aware pass of the event engine (subgraphs released at
    /// admitted times), per-request latency/queueing attribution, SLA
    /// aggregates and energy accounting.
    fn finish(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        outcome: AdmissionOutcome,
        scratch: &mut SimScratch,
    ) -> Result<ServingEvaluation, CoreError> {
        let AdmissionOutcome {
            stream,
            batches,
            stats,
            epochs_applied,
        } = outcome;
        // Under kill semantics the admitted stream runs through the
        // failure-aware engine: batches resident on a downed node at flip
        // time surface as batch-level failure events instead of fictitious
        // completions. The fault-free configuration takes the plain engine
        // path, bit-identical to before.
        let kill =
            self.config.failures == FailureMode::Kill && !self.config.timeline.events().is_empty();
        let (report, batch_failures) = if kill {
            let (report, failures) = simulate_admitted_stream_faulty_in(
                scratch,
                &stream,
                cluster,
                self.config.timeline.events(),
                self.trace,
            )?;
            (report.clone(), failures.to_vec())
        } else {
            let report = simulate_admitted_stream_in(scratch, &stream, cluster, self.trace)?;
            (report.clone(), Vec::new())
        };

        let n = self.requests.len();
        // Lower batch-level failures to per-request events (input indices).
        let mut killed = vec![false; n];
        let mut failures: Vec<FailureEvent> = Vec::new();
        for event in &batch_failures {
            for &i in &batches[event.request].members {
                killed[i] = true;
                failures.push(FailureEvent {
                    request: i,
                    at: event.at,
                    node: event.node,
                });
            }
        }
        let mut records = vec![
            ServedRequestRecord {
                arrival: 0.0,
                admitted: 0.0,
                completion: 0.0,
                sla: SlaClass::Standard,
            };
            n
        ];
        let mut latencies = vec![0.0f64; n];
        for (b, batch) in batches.iter().enumerate() {
            let completion = report.request_completion[b];
            for &i in &batch.members {
                let request = &self.requests[i];
                let done = !killed[i];
                records[i] = ServedRequestRecord {
                    arrival: request.arrival,
                    admitted: batch.admitted,
                    completion: if done { completion } else { f64::INFINITY },
                    sla: request.sla,
                };
                latencies[i] = if done {
                    completion - request.arrival
                } else {
                    f64::INFINITY
                };
            }
        }
        // Served metrics cover survivors only; killed requests never
        // completed, so they contribute no latency sample.
        let serving = if failures.is_empty() {
            ServingMetrics::from_records(&records)
        } else {
            let survivors: Vec<ServedRequestRecord> = records
                .iter()
                .zip(&killed)
                .filter(|(_, &k)| !k)
                .map(|(r, _)| *r)
                .collect();
            ServingMetrics::from_records(&survivors)
        }
        .ok_or_else(|| CoreError::Infeasible {
            what: format!(
                "serving scenario '{}': every request was killed by the fault \
                 timeline",
                self.label
            ),
        })?;
        let lost = failures.len() as u64;
        let robustness = RobustnessStats {
            offered: n as u64,
            completed: n as u64 - lost,
            lost,
            killed: lost,
            ..RobustnessStats::default()
        };

        let mut evaluation =
            Scenario::evaluation_from(strategy.name(), &self.label, report, cluster)?;
        // Per *request* (input order), not per batch — a batched request's
        // latency runs from its own arrival to its batch's completion.
        evaluation.latencies = latencies;
        evaluation.plan_cache = Some(stats);
        Ok(ServingEvaluation {
            evaluation,
            serving,
            records,
            admissions: batches,
            epochs_applied,
            failures,
            robustness,
        })
    }
}

impl ServingConfig {
    /// Whether any robustness feature is enabled: kill semantics, a
    /// recovery response, straggler windows, a drift model or the adaptive
    /// loop. Robust configs take the failure-aware streaming loop;
    /// everything else takes the legacy paths unchanged.
    pub fn is_robust(&self) -> bool {
        self.failures == FailureMode::Kill
            || self.recovery.is_active()
            || !self.slowdowns.is_empty()
            || !self.drift.is_empty()
            || self.adaptive.is_some()
    }

    /// The queue position the configured policy admits next (queue is in
    /// arrival order, so FIFO is position 0 and every tie breaks toward the
    /// earlier position). Used only by the reference loop; the indexed
    /// queue reproduces these semantics without the scan.
    fn policy_pick(&self, requests: &[ServingRequest], queue: &[usize]) -> usize {
        match self.policy {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::Priority => queue
                .iter()
                .enumerate()
                .min_by_key(|(_, &idx)| requests[idx].sla.priority())
                .map(|(pos, _)| pos)
                .expect("queue is non-empty"),
            AdmissionPolicy::EarliestDeadline => queue
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    let da = requests[a].arrival + requests[a].sla.deadline_seconds();
                    let db = requests[b].arrival + requests[b].sla.deadline_seconds();
                    da.total_cmp(&db)
                })
                .map(|(pos, _)| pos)
                .expect("queue is non-empty"),
        }
    }
}

/// An estimated batch completion in the admission window. `pub(crate)` so
/// the fleet tier's per-cluster workers can reuse the same in-flight heap
/// ordering (time, then admission sequence) the serving loop uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Departure {
    pub(crate) at: f64,
    pub(crate) seq: u64,
}

impl Eq for Departure {}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.total_cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// One admitted batch awaiting its estimated completion in the robust
/// streaming loop, with kill-tracking state: which nodes each copy's plan
/// touches (64-bit masks — `validate` gates kill semantics to ≤ 64-node
/// clusters) and whether each copy is still alive. The member indices
/// live in the scratch's shared pool at `members_start..+members_len`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingBatch {
    pub(crate) admitted: f64,
    pub(crate) completion: f64,
    /// Estimated completion of the hedge copy (`INFINITY` when none).
    pub(crate) hedge_completion: f64,
    pub(crate) mask: u64,
    pub(crate) hedge_mask: u64,
    pub(crate) members_start: u32,
    pub(crate) members_len: u32,
    pub(crate) primary_alive: bool,
    pub(crate) hedge_alive: bool,
}

impl PendingBatch {
    pub(crate) fn alive(&self) -> bool {
        self.primary_alive || self.hedge_alive
    }

    /// The earliest completion among surviving copies (`INFINITY` when
    /// every copy is dead — callers skip such batches).
    pub(crate) fn effective_completion(&self) -> f64 {
        let mut t = f64::INFINITY;
        if self.primary_alive {
            t = self.completion;
        }
        if self.hedge_alive && self.hedge_completion < t {
            t = self.hedge_completion;
        }
        t
    }
}

/// A killed request awaiting its backoff release in the retry heap,
/// ordered by release time, ties by push sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RetryEntry {
    release: f64,
    seq: u64,
    idx: u32,
}

impl Eq for RetryEntry {}

impl PartialOrd for RetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RetryEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.release
            .total_cmp(&other.release)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The set of nodes a plan's tasks touch — compute targets and both
/// transfer endpoints — as a 64-bit mask. This is the same residency rule
/// the failure-aware engine applies per task, lifted to whole batches.
pub(crate) fn plan_node_mask(plan: &ExecutionPlan) -> u64 {
    let mut mask = 0u64;
    for task in plan.tasks() {
        match &task.kind {
            TaskKind::Compute { target, .. } => mask |= 1u64 << (target.node.0 as u64 & 63),
            TaskKind::Transfer { from, to, .. } => {
                mask |= 1u64 << (from.0 as u64 & 63);
                mask |= 1u64 << (to.0 as u64 & 63);
            }
        }
    }
    mask
}

/// What the admission loop hands to the simulation half.
struct AdmissionOutcome {
    stream: Vec<(f64, f64, Arc<ExecutionPlan>)>,
    batches: Vec<AdmittedBatch>,
    stats: PlanCacheStats,
    epochs_applied: usize,
}

/// The result of one served scenario: the familiar [`Evaluation`] (latencies
/// are per *request* in input order; the report is per admitted *batch*)
/// plus serving-quality metrics and the admission log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingEvaluation {
    /// Strategy/label/latency/energy metrics, shaped exactly like the static
    /// pipeline's output (bit-identical to it in the degenerate mode).
    pub evaluation: Evaluation,
    /// SLA-class latency tails, queueing delay and deadline accounting.
    pub serving: ServingMetrics,
    /// Per-request served life cycle (arrival → admitted → completed), input
    /// order.
    pub records: Vec<ServedRequestRecord>,
    /// The admission log: one entry per batch, in admission order.
    pub admissions: Vec<AdmittedBatch>,
    /// Timeline events applied during the run (the final epoch number).
    pub epochs_applied: usize,
    /// Kill events under [`FailureMode::Kill`], one per killed request
    /// (input index), in flip order. Empty in fault-free runs.
    pub failures: Vec<FailureEvent>,
    /// Offered/completed/dropped accounting.
    pub robustness: RobustnessStats,
}

impl ServingEvaluation {
    /// Completed requests per second of simulated time (count over the
    /// serving makespan).
    pub fn requests_per_second(&self) -> f64 {
        if self.evaluation.makespan <= 0.0 {
            return 0.0;
        }
        self.records.len() as f64 / self.evaluation.makespan
    }
}

/// The bounded-memory result of a streaming serving run
/// ([`ServingScenario::run_streaming`]): counts, the estimated makespan,
/// P²-sketched latency/queueing tails and fixed-size per-class aggregates.
/// Everything is `Copy` — no per-request records, no heap — so a soak over
/// millions of requests returns the same few hundred bytes as a toy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingSummary {
    /// Total requests served.
    pub requests: usize,
    /// Batches admitted (== requests when batching is off).
    pub batches: usize,
    /// Timeline events applied during the run (the final epoch number).
    pub epochs_applied: usize,
    /// Estimated completion time of the last batch, seconds.
    pub makespan: f64,
    /// Latency tail over all requests (p50/p95/p99 are P² estimates; count,
    /// mean and the separately tracked max are exact).
    pub latency: LatencySummary,
    /// Mean queueing delay over all requests, seconds (exact).
    pub mean_queueing_delay: f64,
    /// Worst queueing delay, seconds (exact).
    pub max_queueing_delay: f64,
    /// Requests that missed their class deadline (exact).
    pub deadline_misses: usize,
    /// Per-class aggregates indexed by [`SlaClass::priority`]; `None` for
    /// classes absent from the stream.
    pub per_class: [Option<SlaClassReport>; 3],
    /// Plan-cache traffic of the run.
    pub plan_cache: PlanCacheStats,
    /// Offered/completed/dropped accounting, including recovery traffic.
    /// Fault-free runs report `offered == completed == requests`.
    pub robustness: RobustnessStats,
    /// Adaptive-loop counters and dynamic compute energy. Non-adaptive
    /// runs report zero re-plans and observations; `energy_j` is always
    /// accrued (identically on every path, so drift-free configs stay
    /// bit-identical across loops).
    pub drift: DriftStats,
}

impl ServingSummary {
    /// Fraction of all requests that missed their deadline.
    pub fn sla_miss_rate(&self) -> f64 {
        self.deadline_misses as f64 / self.requests as f64
    }

    /// The report for one class, if any of its requests were served.
    pub fn class(&self, class: SlaClass) -> Option<&SlaClassReport> {
        self.per_class[class.priority() as usize].as_ref()
    }

    /// Completed requests per second of simulated time (count over the
    /// estimated makespan).
    pub fn requests_per_second(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / self.makespan
    }
}

/// Reusable working memory for the serving loop: the embedded [`SimScratch`]
/// (records-mode simulation), the hoisted [`PlanKey`], the [`IndexedQueue`]
/// arrays, the coalesce buffer, the `(model, batch) → graph` table, the
/// [`DispatchEstimator`] and the in-flight heap.
///
/// Create one per worker thread and pass it to every serving run that
/// thread performs: after the first run of a given workload shape, a
/// steady-state streaming pass performs **zero** heap allocations — every
/// buffer is cleared and refilled in place. `tests/zero_alloc_warm_path.rs`
/// asserts this with a counting allocator and `exp_soak --quick` re-asserts
/// it in CI.
#[derive(Debug)]
pub struct ServingScratch {
    sim: SimScratch,
    key: PlanKey,
    order: Vec<u32>,
    queue: IndexedQueue,
    members: Vec<u32>,
    graphs: HashMap<(WorkloadModel, usize), Arc<DnnGraph>>,
    dispatch: DispatchEstimator,
    inflight: BinaryHeap<Reverse<Departure>>,
    epoch_cluster: Option<Cluster>,
    /// Robust-loop state: admitted batches awaiting completion (FIFO in
    /// admission order), their member indices (a shared pool the batches
    /// slice into), the retry heap, per-request attempt counts and the
    /// reusable hedge-planning cluster.
    pending: VecDeque<PendingBatch>,
    pending_members: Vec<u32>,
    retries: BinaryHeap<Reverse<RetryEntry>>,
    attempts: Vec<u32>,
    hedge_cluster: Option<Cluster>,
    /// Adaptive-loop state: per-node rate estimators, planned levels and
    /// the believed cluster (reused across runs for in-place rescaling).
    adaptive: AdaptiveState,
}

impl ServingScratch {
    /// Creates an empty scratch (no buffers are allocated until first use).
    pub fn new() -> Self {
        Self {
            sim: SimScratch::new(),
            key: PlanKey {
                strategy: String::new(),
                strategy_config: String::new(),
                graph_fingerprint: 0,
                batch: 0,
                leader: NodeIndex(0),
                cluster_fingerprint: 0,
            },
            order: Vec::new(),
            queue: IndexedQueue::default(),
            members: Vec::new(),
            graphs: HashMap::new(),
            dispatch: DispatchEstimator::default(),
            inflight: BinaryHeap::new(),
            epoch_cluster: None,
            pending: VecDeque::new(),
            pending_members: Vec::new(),
            retries: BinaryHeap::new(),
            attempts: Vec::new(),
            hedge_cluster: None,
            adaptive: AdaptiveState::default(),
        }
    }

    /// The adaptive loop's per-node effective-rate estimators after the
    /// most recent run on this scratch (empty when the adaptive loop was
    /// off). Exposed so convergence tests can assert the estimates track
    /// an injected slowdown.
    pub fn drift_estimates(&self) -> &[Ewma] {
        &self.adaptive.est
    }
}

impl Default for ServingScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Sentinel for "no index" in the intrusive lists.
const NONE: u32 = u32::MAX;

/// Appends `idx` to the tail of the intrusive list `(next, prev, head,
/// tail)`.
fn link_tail(next: &mut [u32], prev: &mut [u32], head: &mut u32, tail: &mut u32, idx: u32) {
    let i = idx as usize;
    next[i] = NONE;
    prev[i] = *tail;
    if *tail == NONE {
        *head = idx;
    } else {
        next[*tail as usize] = idx;
    }
    *tail = idx;
}

/// Unlinks `idx` from the intrusive list `(next, prev, head, tail)`.
fn unlink(next: &mut [u32], prev: &mut [u32], head: &mut u32, tail: &mut u32, idx: u32) {
    let i = idx as usize;
    let (p, nx) = (prev[i], next[i]);
    if p == NONE {
        *head = nx;
    } else {
        next[p as usize] = nx;
    }
    if nx == NONE {
        *tail = p;
    } else {
        prev[nx as usize] = p;
    }
    next[i] = NONE;
    prev[i] = NONE;
}

/// An earliest-deadline heap entry; ordered by absolute deadline, ties by
/// push sequence (= queue order), which reproduces the reference scan's
/// first-minimum tie-break.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EdfEntry {
    deadline: f64,
    seq: u32,
    idx: u32,
}

impl Eq for EdfEntry {}

impl PartialOrd for EdfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EdfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deadline
            .total_cmp(&other.deadline)
            .then(self.seq.cmp(&other.seq))
    }
}

/// The priority-indexed admission queue: flat per-request index arrays
/// carrying three families of intrusive doubly-linked lists (one global
/// FIFO, one FIFO per SLA class, one per `(model, batch)` coalesce bucket)
/// plus a lazily-pruned earliest-deadline heap. Every list is in push
/// (= arrival) order, so "first minimum in queue order" — the reference
/// scan's tie-break for every policy — is always a list head:
///
/// - FIFO pick: the global head, O(1).
/// - Priority pick: the head of the most urgent non-empty class list, O(1).
/// - Earliest-deadline pick: the heap top, skipping entries whose request
///   already left the queue (each request enters once, so stale entries are
///   simply popped), amortised O(log n).
/// - Coalesce: walk the head's bucket list, O(batch).
/// - Remove: unlink from three lists, O(1).
///
/// Bucket ids persist across runs (`bucket_ids` is never cleared), so a
/// steady-state pass re-derives every bucket without hashing allocations.
///
/// `pub(crate)` so the fleet tier's per-cluster workers run the identical
/// structure; the fleet loop additionally uses [`IndexedQueue::begin`] +
/// [`IndexedQueue::ensure`] because its request list grows round by round
/// as the router delivers arrivals.
#[derive(Debug, Default)]
pub(crate) struct IndexedQueue {
    /// Push sequence per request index (= position in arrival order).
    seq: Vec<u32>,
    in_queue: Vec<bool>,
    gnext: Vec<u32>,
    gprev: Vec<u32>,
    cnext: Vec<u32>,
    cprev: Vec<u32>,
    bnext: Vec<u32>,
    bprev: Vec<u32>,
    bucket_of: Vec<u32>,
    ghead: u32,
    gtail: u32,
    chead: [u32; 3],
    ctail: [u32; 3],
    /// `(head, tail)` per bucket id.
    buckets: Vec<(u32, u32)>,
    /// `(model, batch) → bucket id`; persists across runs.
    bucket_ids: HashMap<(WorkloadModel, usize), u32>,
    edf: BinaryHeap<Reverse<EdfEntry>>,
    len: usize,
    next_seq: u32,
}

impl IndexedQueue {
    /// Clears the queue for a run over `n` requests, keeping capacity (and
    /// the persistent bucket-id table).
    pub(crate) fn reset(&mut self, n: usize) {
        self.begin();
        self.ensure(n);
    }

    /// Clears the queue for a new run without sizing the index arrays —
    /// the fleet loop's entry point, where the request count is unknown up
    /// front and [`IndexedQueue::ensure`] grows the arrays as the router
    /// delivers. Capacity (and the bucket-id table) is kept.
    pub(crate) fn begin(&mut self) {
        for list in [
            &mut self.seq,
            &mut self.gnext,
            &mut self.gprev,
            &mut self.cnext,
            &mut self.cprev,
            &mut self.bnext,
            &mut self.bprev,
            &mut self.bucket_of,
        ] {
            list.clear();
        }
        self.in_queue.clear();
        self.ghead = NONE;
        self.gtail = NONE;
        self.chead = [NONE; 3];
        self.ctail = [NONE; 3];
        for bucket in &mut self.buckets {
            *bucket = (NONE, NONE);
        }
        self.edf.clear();
        self.len = 0;
        self.next_seq = 0;
    }

    /// Grows the index arrays to cover request indices `< n` (no-op when
    /// already large enough). Within retained capacity this is
    /// allocation-free, which keeps warm fleet rounds zero-alloc.
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.seq.len() >= n {
            return;
        }
        for list in [
            &mut self.seq,
            &mut self.gnext,
            &mut self.gprev,
            &mut self.cnext,
            &mut self.cprev,
            &mut self.bnext,
            &mut self.bprev,
            &mut self.bucket_of,
        ] {
            list.resize(n, NONE);
        }
        self.in_queue.resize(n, false);
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Enqueues `idx` (called in arrival order, which makes `seq` the queue
    /// order every pick tie-breaks on). The EDF deadline is the serving
    /// tier's rule, `arrival + class deadline`.
    pub(crate) fn push(&mut self, idx: u32, requests: &[ServingRequest], policy: AdmissionPolicy) {
        let request = &requests[idx as usize];
        let deadline = request.arrival + request.sla.deadline_seconds();
        self.push_with_deadline(idx, requests, policy, deadline);
    }

    /// [`IndexedQueue::push`] with an explicit absolute EDF deadline — the
    /// fleet tier passes `arrival + class deadline − WAN round trip`, so
    /// earliest-deadline ranks by when a reply must *leave* the serving
    /// cluster (the deadline rule in `hidp_sim::serving`).
    pub(crate) fn push_with_deadline(
        &mut self,
        idx: u32,
        requests: &[ServingRequest],
        policy: AdmissionPolicy,
        deadline: f64,
    ) {
        let i = idx as usize;
        let request = &requests[i];
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seq[i] = seq;
        self.in_queue[i] = true;
        self.len += 1;
        link_tail(
            &mut self.gnext,
            &mut self.gprev,
            &mut self.ghead,
            &mut self.gtail,
            idx,
        );
        let class = request.sla.priority() as usize;
        link_tail(
            &mut self.cnext,
            &mut self.cprev,
            &mut self.chead[class],
            &mut self.ctail[class],
            idx,
        );
        let next_id = self.bucket_ids.len() as u32;
        let bucket = *self
            .bucket_ids
            .entry((request.model, request.batch))
            .or_insert(next_id);
        if bucket as usize >= self.buckets.len() {
            self.buckets.push((NONE, NONE));
        }
        self.bucket_of[i] = bucket;
        let (head, tail) = &mut self.buckets[bucket as usize];
        link_tail(&mut self.bnext, &mut self.bprev, head, tail, idx);
        if policy == AdmissionPolicy::EarliestDeadline {
            self.edf.push(Reverse(EdfEntry { deadline, seq, idx }));
        }
    }

    /// The request the policy admits next. The queue must be non-empty.
    pub(crate) fn pick(&mut self, policy: AdmissionPolicy) -> u32 {
        match policy {
            AdmissionPolicy::Fifo => self.ghead,
            AdmissionPolicy::Priority => {
                for class in 0..3 {
                    if self.chead[class] != NONE {
                        return self.chead[class];
                    }
                }
                unreachable!("a non-empty queue has a non-empty class list")
            }
            AdmissionPolicy::EarliestDeadline => {
                while let Some(&Reverse(entry)) = self.edf.peek() {
                    if self.in_queue[entry.idx as usize] {
                        return entry.idx;
                    }
                    // Stale: the request was coalesced away earlier.
                    self.edf.pop();
                }
                unreachable!("a non-empty queue has a live deadline entry")
            }
        }
    }

    /// Collects the batch the head coalesces into `out`: the head plus the
    /// first `max_batch - 1` same-bucket requests in queue order, sorted by
    /// queue position — exactly the reference scan's member set and order.
    pub(crate) fn coalesce(&self, head: u32, max_batch: usize, out: &mut Vec<u32>) {
        out.clear();
        out.push(head);
        let bucket = self.bucket_of[head as usize] as usize;
        let mut cursor = self.buckets[bucket].0;
        while cursor != NONE && out.len() < max_batch {
            if cursor != head {
                out.push(cursor);
            }
            cursor = self.bnext[cursor as usize];
        }
        out.sort_unstable_by_key(|&idx| self.seq[idx as usize]);
    }

    /// Dequeues `idx` from every list (deadline-heap entries are pruned
    /// lazily by [`IndexedQueue::pick`]).
    pub(crate) fn remove(&mut self, idx: u32, requests: &[ServingRequest]) {
        let i = idx as usize;
        debug_assert!(self.in_queue[i]);
        self.in_queue[i] = false;
        self.len -= 1;
        unlink(
            &mut self.gnext,
            &mut self.gprev,
            &mut self.ghead,
            &mut self.gtail,
            idx,
        );
        let class = requests[i].sla.priority() as usize;
        unlink(
            &mut self.cnext,
            &mut self.cprev,
            &mut self.chead[class],
            &mut self.ctail[class],
            idx,
        );
        let bucket = self.bucket_of[i] as usize;
        let (head, tail) = &mut self.buckets[bucket];
        unlink(&mut self.bnext, &mut self.bprev, head, tail, idx);
    }
}

/// The resource a dispatch-model task occupies, mirroring the engine's
/// resource model: a processor, or an undirected inter-node link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DispatchResource {
    Processor(ProcessorAddr),
    Link(NodeIndex, NodeIndex),
}

impl DispatchResource {
    fn link(a: NodeIndex, b: NodeIndex) -> Self {
        if a.0 <= b.0 {
            DispatchResource::Link(a, b)
        } else {
            DispatchResource::Link(b, a)
        }
    }
}

/// The admission layer's measured-completion model: a persistent
/// per-resource free-time vector that every admitted plan is list-scheduled
/// against, in submission order, with the **same task durations the event
/// engine derives** (sublinear batched compute, network transfer times,
/// free same-node moves). Because the free times persist across batches, an
/// estimate sees the congestion every earlier admission left behind — the
/// feedback that replaces the old idle-cluster solo-makespan estimate.
///
/// It is an *estimate*, not a re-simulation: within one batch, tasks commit
/// in submission order rather than the engine's global earliest-start
/// order, which keeps the per-admission cost at O(tasks) with no heap. In
/// streaming mode these estimates are the reported completions; in records
/// mode they only gate the admission window while the reported metrics come
/// from the full event engine.
///
/// `pub(crate)` so every fleet-tier cluster worker owns one, and so the
/// fleet router can read [`DispatchEstimator::horizon`] as its least-loaded
/// backlog signal.
#[derive(Debug, Default)]
pub(crate) struct DispatchEstimator {
    /// Interned resource ids; persists across runs.
    resource_ids: HashMap<DispatchResource, u32>,
    /// Free time per resource id, reset to 0 each run.
    free: Vec<f64>,
    /// Per-task finish times within the current plan (indexed by task id).
    finish: Vec<f64>,
    /// Dynamic compute energy of everything estimated this run, joules
    /// (busy time × per-processor dynamic power, after slowdowns and
    /// drift). Drift stretches busy time at unchanged power, so this is
    /// where slowdown costs show up even when latency hides in slack.
    pub(crate) energy_j: f64,
}

impl DispatchEstimator {
    /// Clears the free times for a new run, keeping the intern table.
    pub(crate) fn reset(&mut self) {
        self.free.clear();
        self.free.resize(self.resource_ids.len(), 0.0);
        self.energy_j = 0.0;
    }

    /// The latest free time across all resources — the virtual time at
    /// which everything admitted so far has drained (0 when nothing has
    /// been admitted). The fleet router reads this at each barrier as a
    /// cluster's backlog signal.
    pub(crate) fn horizon(&self) -> f64 {
        self.free.iter().fold(0.0f64, |acc, &t| acc.max(t))
    }

    /// The earliest free time across all resources — a sound lower bound
    /// on the completion of anything admitted now (every plan occupies at
    /// least one resource, whose free time is ≥ this minimum). The
    /// shedding policy compares `max(now, earliest_free)` against a
    /// request's absolute deadline.
    pub(crate) fn earliest_free(&self) -> f64 {
        let min = self.free.iter().fold(f64::INFINITY, |acc, &t| acc.min(t));
        if min.is_finite() {
            min
        } else {
            0.0
        }
    }

    /// List-schedules `plan` released at `release` against the current free
    /// times and returns its estimated completion, advancing the free times
    /// of every resource the plan touches.
    pub(crate) fn estimate(
        &mut self,
        plan: &ExecutionPlan,
        cluster: &Cluster,
        release: f64,
    ) -> Result<f64, CoreError> {
        self.estimate_full(plan, cluster, release, &[], None, None)
    }

    /// The full estimate: straggler windows (a compute task *starting*
    /// inside a window on its node runs `factor`× slower, overlapping
    /// windows compound multiplicatively; transfers are unaffected), the
    /// continuous [`DriftModel`] (throttle curves and background windows
    /// stretch compute; contention stretches inter-node transfers), and an
    /// optional adaptive observer that receives every task's
    /// effective-over-nominal duration ratio. With no windows, no drift and
    /// no observer the arithmetic is bit-identical to the plain estimate —
    /// drift never multiplies by 1.0, it simply does not multiply.
    pub(crate) fn estimate_full(
        &mut self,
        plan: &ExecutionPlan,
        cluster: &Cluster,
        release: f64,
        slowdowns: &[SlowdownWindow],
        drift: Option<&DriftModel>,
        mut observer: Option<(&AdaptiveConfig, &mut AdaptiveState)>,
    ) -> Result<f64, CoreError> {
        // Normalise -0.0 like the engine so exact ties order identically.
        let release = release + 0.0;
        let batch = plan.batch();
        self.finish.clear();
        let mut completion = release;
        for task in plan.tasks() {
            let (duration, resource, compute_node, power_w) = match &task.kind {
                TaskKind::Compute {
                    target,
                    flops,
                    gpu_affinity,
                } => {
                    let proc = cluster.processor(*target)?;
                    (
                        proc.batched_compute_time(*flops, *gpu_affinity, batch),
                        Some(DispatchResource::Processor(*target)),
                        Some(target.node),
                        proc.dynamic_power_w(),
                    )
                }
                TaskKind::Transfer { from, to, bytes } => {
                    cluster.node(*from)?;
                    cluster.node(*to)?;
                    let duration = cluster.network().transfer_time(*from, *to, *bytes);
                    let resource = if from == to {
                        None
                    } else {
                        Some(DispatchResource::link(*from, *to))
                    };
                    (duration, resource, None, 0.0)
                }
            };
            let mut start = release;
            for dep in &task.deps {
                start = start.max(self.finish[dep.0]);
            }
            let id = resource.map(|r| {
                let next = self.resource_ids.len() as u32;
                let id = *self.resource_ids.entry(r).or_insert(next);
                if id as usize >= self.free.len() {
                    self.free.push(0.0);
                }
                id as usize
            });
            if let Some(id) = id {
                start = start.max(self.free[id]);
            }
            let nominal = duration;
            let mut duration = duration;
            if let Some(node) = compute_node {
                for window in slowdowns {
                    if window.applies(node, start) {
                        duration *= window.factor;
                    }
                }
                if let Some(model) = drift {
                    duration = model.scale_compute(node, start, duration);
                }
                self.energy_j += duration * power_w;
                if let Some((_, state)) = observer.as_mut() {
                    if nominal > 0.0 {
                        state.observe_compute(node.0, duration / nominal);
                    }
                }
            } else if id.is_some() {
                // An inter-node transfer on the shared interconnect.
                if let Some(model) = drift {
                    duration = model.scale_transfer(start, duration);
                }
                if let Some((_, state)) = observer.as_mut() {
                    if nominal > 0.0 {
                        state.observe_transfer(duration / nominal);
                    }
                }
            }
            let end = start + duration;
            if let Some(id) = id {
                self.free[id] = end;
            }
            self.finish.push(end);
            if end > completion {
                completion = end;
            }
        }
        Ok(completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HidpStrategy;
    use hidp_platform::presets;

    fn burst(model: WorkloadModel, at: f64, count: usize, sla: SlaClass) -> Vec<ServingRequest> {
        (0..count)
            .map(|_| ServingRequest::new(model, at).with_sla(sla))
            .collect()
    }

    #[test]
    fn unbounded_fifo_admits_every_request_at_arrival() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests: Vec<ServingRequest> = (0..6)
            .map(|i| ServingRequest::new(WorkloadModel::EfficientNetB0, i as f64 * 0.1))
            .collect();
        let result = ServingScenario::new(requests.clone())
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(result.admissions.len(), 6, "no batching by default");
        for (batch, request) in result.admissions.iter().zip(&requests) {
            assert_eq!(batch.admitted, request.arrival);
            assert_eq!(batch.epoch, 0);
        }
        assert_eq!(result.serving.max_queueing_delay, 0.0);
        assert_eq!(result.epochs_applied, 0);
        assert_eq!(result.evaluation.latencies.len(), 6);
        assert!(result.requests_per_second() > 0.0);
    }

    #[test]
    fn batcher_coalesces_same_model_requests() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // A burst of 4 identical requests plus one different model.
        let mut requests = burst(WorkloadModel::EfficientNetB0, 0.0, 4, SlaClass::Standard);
        requests.push(ServingRequest::new(WorkloadModel::InceptionV3, 0.0));
        let result = ServingScenario::new(requests)
            .with_max_batch(4)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        // One batch of 4 + one singleton (different model cannot coalesce).
        assert_eq!(result.admissions.len(), 2);
        assert_eq!(result.admissions[0].members, vec![0, 1, 2, 3]);
        assert_eq!(result.admissions[1].members, vec![4]);
        // Every member shares its batch's completion.
        let c = result.records[0].completion;
        for r in &result.records[..4] {
            assert_eq!(r.completion, c);
        }
        // The batched plan was planned once for batch 4.
        let stats = result.evaluation.plan_cache.unwrap();
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn bounded_window_queues_and_fifo_preserves_arrival_order() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests = burst(WorkloadModel::EfficientNetB0, 0.0, 4, SlaClass::Standard);
        let result = ServingScenario::new(requests)
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(result.admissions.len(), 4);
        // Later admissions queue behind the estimated service of earlier
        // ones.
        let admitted: Vec<f64> = result.admissions.iter().map(|b| b.admitted).collect();
        for pair in admitted.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        assert!(result.serving.max_queueing_delay > 0.0);
        assert!(result.serving.mean_queueing_delay > 0.0);
        // FIFO: members in arrival (input) order.
        let served: Vec<usize> = result
            .admissions
            .iter()
            .flat_map(|b| b.members.clone())
            .collect();
        assert_eq!(served, vec![0, 1, 2, 3]);
    }

    #[test]
    fn priority_admits_premium_before_best_effort() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // Best-effort requests arrive first, a premium one right behind.
        let mut requests = burst(WorkloadModel::Vgg19, 0.0, 3, SlaClass::BestEffort);
        requests.push(ServingRequest::new(WorkloadModel::Vgg19, 0.0).with_sla(SlaClass::Premium));
        let fifo = ServingScenario::new(requests.clone())
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        let priority = ServingScenario::new(requests)
            .with_policy(AdmissionPolicy::Priority)
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        // Under FIFO the premium request (index 3) is served last; under
        // priority it is served first among the queued.
        assert_eq!(fifo.admissions.last().unwrap().members, vec![3]);
        assert_eq!(priority.admissions[0].members, vec![3]);
        let fifo_premium = fifo.serving.class(SlaClass::Premium).unwrap();
        let prio_premium = priority.serving.class(SlaClass::Premium).unwrap();
        assert!(prio_premium.latency.p99 < fifo_premium.latency.p99);
    }

    #[test]
    fn earliest_deadline_orders_by_absolute_deadline() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // A best-effort request from long ago has an earlier absolute
        // deadline than a premium request arriving now.
        let requests = vec![
            ServingRequest::new(WorkloadModel::InceptionV3, 0.0).with_sla(SlaClass::BestEffort),
            ServingRequest::new(WorkloadModel::InceptionV3, 3.9).with_sla(SlaClass::Premium),
            ServingRequest::new(WorkloadModel::InceptionV3, 3.9).with_sla(SlaClass::BestEffort),
        ];
        // Block admission until all three are queued.
        let mut blocker = vec![ServingRequest::new(WorkloadModel::Vgg19, 0.0)];
        blocker.extend(requests);
        let result = ServingScenario::new(blocker)
            .with_policy(AdmissionPolicy::EarliestDeadline)
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        // Deadlines: req1 at 4.0, req2 at 4.15, req3 at 7.9 — admitted in
        // that order once the blocker clears.
        let order: Vec<usize> = result
            .admissions
            .iter()
            .skip(1)
            .flat_map(|b| b.members.clone())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn timeline_flip_replans_under_the_new_epoch() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // Same model before and after a failure at t = 0.5: the second
        // request must re-plan (new epoch fingerprint), so the cache records
        // two misses for one distinct model.
        let requests = vec![
            ServingRequest::new(WorkloadModel::ResNet152, 0.0),
            ServingRequest::new(WorkloadModel::ResNet152, 1.0),
        ];
        let timeline = ClusterTimeline::new().node_down(0.5, NodeIndex(4)).unwrap();
        let result = ServingScenario::new(requests)
            .with_timeline(timeline)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(result.epochs_applied, 1);
        assert_eq!(result.admissions[0].epoch, 0);
        assert_eq!(result.admissions[1].epoch, 1);
        let stats = result.evaluation.plan_cache.unwrap();
        assert_eq!(stats.misses, 2, "one plan per epoch");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn unknown_timeline_node_and_empty_scenario_are_rejected() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        assert!(ServingScenario::new(vec![])
            .run(&strategy, &cluster, NodeIndex(0))
            .is_err());
        let bad_timeline = ClusterTimeline::new().node_down(1.0, NodeIndex(9)).unwrap();
        let scenario = ServingScenario::new(vec![ServingRequest::new(WorkloadModel::Vgg19, 0.0)])
            .with_timeline(bad_timeline);
        assert!(scenario.run(&strategy, &cluster, NodeIndex(0)).is_err());
        let nan = ServingScenario::new(vec![ServingRequest::new(WorkloadModel::Vgg19, f64::NAN)]);
        assert!(nan.run(&strategy, &cluster, NodeIndex(0)).is_err());
    }

    #[test]
    fn zero_inflight_window_is_clamped_to_one() {
        // Some(0) could never admit; it must behave exactly like Some(1)
        // instead of deadlocking or panicking.
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests = burst(WorkloadModel::EfficientNetB0, 0.0, 3, SlaClass::Standard);
        let zero = ServingScenario::new(requests.clone())
            .with_max_inflight(Some(0))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        let one = ServingScenario::new(requests)
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(zero, one);
    }

    #[test]
    fn unsorted_arrivals_are_served_in_time_order() {
        // The serving loop processes arrivals in time order even when the
        // input is not sorted (the static pipeline preserves input order —
        // see the module docs for why the degenerate equivalence is scoped
        // to arrival-ordered streams).
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests = vec![
            ServingRequest::new(WorkloadModel::EfficientNetB0, 1.0),
            ServingRequest::new(WorkloadModel::InceptionV3, 0.0),
        ];
        let result = ServingScenario::new(requests)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        // Request 1 (arriving first) is admitted first; latencies are still
        // reported in input order.
        assert_eq!(result.admissions[0].members, vec![1]);
        assert_eq!(result.admissions[1].members, vec![0]);
        assert_eq!(result.records[0].arrival, 1.0);
        assert_eq!(result.records[1].arrival, 0.0);
        assert!(result.evaluation.latencies.iter().all(|l| *l > 0.0));
    }

    #[test]
    fn builders_clamp_and_label() {
        let scenario = ServingScenario::new(vec![ServingRequest::new(WorkloadModel::Vgg19, 0.0)])
            .with_label("svc")
            .with_max_batch(0)
            .with_config(ServingConfig {
                max_batch: 0,
                ..ServingConfig::default()
            });
        assert_eq!(scenario.label(), "svc");
        assert_eq!(scenario.config().max_batch, 1);
        assert_eq!(scenario.len(), 1);
        assert!(!scenario.is_empty());
        assert_eq!(
            ServingRequest::new(WorkloadModel::Vgg19, 0.0)
                .with_batch(0)
                .batch,
            1
        );
        assert_eq!(AdmissionPolicy::Fifo.name(), "fifo");
        assert_eq!(AdmissionPolicy::EarliestDeadline.name(), "edf");
    }

    /// A mixed scenario exercising every indexed-queue path at once:
    /// staggered arrivals across models and SLA classes, batching, a
    /// bounded window and a timeline flip.
    fn mixed_scenario(policy: AdmissionPolicy) -> ServingScenario {
        let models = [
            WorkloadModel::EfficientNetB0,
            WorkloadModel::InceptionV3,
            WorkloadModel::EfficientNetB0,
        ];
        let slas = [SlaClass::BestEffort, SlaClass::Premium, SlaClass::Standard];
        let requests: Vec<ServingRequest> = (0..24)
            .map(|i| {
                ServingRequest::new(models[i % 3], (i / 4) as f64 * 0.05)
                    .with_sla(slas[(i / 2) % 3])
            })
            .collect();
        let timeline = ClusterTimeline::new().node_down(0.2, NodeIndex(4)).unwrap();
        ServingScenario::new(requests)
            .with_policy(policy)
            .with_max_batch(3)
            .with_max_inflight(Some(2))
            .with_timeline(timeline)
    }

    #[test]
    fn indexed_admission_matches_the_reference_loop() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        for policy in [
            AdmissionPolicy::Fifo,
            AdmissionPolicy::Priority,
            AdmissionPolicy::EarliestDeadline,
        ] {
            let scenario = mixed_scenario(policy);
            let indexed = scenario.run(&strategy, &cluster, NodeIndex(1)).unwrap();
            let reference = scenario
                .run_reference(&strategy, &cluster, NodeIndex(1))
                .unwrap();
            assert_eq!(indexed, reference, "policy {}", policy.name());
        }
    }

    #[test]
    fn streaming_mode_agrees_with_records_mode_on_admission_facts() {
        // The two modes share the admission loop, so everything the
        // admission layer determines — counts, batching, epochs, cache
        // traffic, queueing delays — must agree exactly. (Completions
        // differ by design: records measures the event engine, streaming
        // reports the dispatch model's estimates.)
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let scenario = mixed_scenario(AdmissionPolicy::Priority);
        let records = scenario.run(&strategy, &cluster, NodeIndex(1)).unwrap();
        let streaming = scenario
            .run_streaming(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(streaming.requests, scenario.len());
        assert_eq!(streaming.batches, records.admissions.len());
        assert_eq!(streaming.epochs_applied, records.epochs_applied);
        assert_eq!(
            Some(streaming.plan_cache),
            records.evaluation.plan_cache,
            "same admission loop, same cache traffic"
        );
        assert!(
            (streaming.max_queueing_delay - records.serving.max_queueing_delay).abs() < 1e-12,
            "queueing delays are admission facts"
        );
        assert!((streaming.mean_queueing_delay - records.serving.mean_queueing_delay).abs() < 1e-9);
        assert_eq!(streaming.latency.count, records.serving.latency.count);
        assert!(streaming.makespan > 0.0);
        assert!(streaming.requests_per_second() > 0.0);
        assert!(streaming.latency.p50 > 0.0);
        // Per-class presence matches.
        for class in SlaClass::ALL {
            assert_eq!(
                streaming.class(class).is_some(),
                records.serving.class(class).is_some()
            );
        }
        let rate = streaming.sla_miss_rate();
        assert!((0.0..=1.0).contains(&rate));
    }

    #[test]
    fn serving_scratch_reuse_is_bit_identical() {
        // One scratch serving differently-shaped scenarios back to back
        // must produce the same results as fresh scratches.
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let cache = PlanCache::new();
        let mut scratch = ServingScratch::new();
        let a = mixed_scenario(AdmissionPolicy::EarliestDeadline);
        let b = ServingScenario::new(burst(WorkloadModel::Vgg19, 0.0, 5, SlaClass::Premium))
            .with_max_inflight(Some(1));
        for scenario in [&a, &b, &a] {
            let reused = scenario
                .run_with_cache_in(&strategy, &cluster, NodeIndex(1), &cache, &mut scratch)
                .unwrap();
            let mut fresh = scenario
                .run_with_cache(&strategy, &cluster, NodeIndex(1), &cache)
                .unwrap();
            // Cache stats differ (the shared cache warms up between the
            // runs); everything else must match bit for bit.
            fresh.evaluation.plan_cache = reused.evaluation.plan_cache;
            assert_eq!(reused, fresh);
            let reused_streaming = scenario
                .run_streaming_with_cache_in(
                    &strategy,
                    &cluster,
                    NodeIndex(1),
                    &cache,
                    &mut scratch,
                )
                .unwrap();
            let fresh_streaming = scenario
                .run_streaming(&strategy, &cluster, NodeIndex(1))
                .unwrap();
            // Cache stats differ (the shared cache is warm), everything
            // else must match.
            let mut fresh_adjusted = fresh_streaming;
            fresh_adjusted.plan_cache = reused_streaming.plan_cache;
            assert_eq!(reused_streaming, fresh_adjusted);
        }
    }

    /// A timeline that downs every non-leader node at `at` (and recovers
    /// them at `back`), so any distributed plan in flight is killed.
    fn blackout(at: f64, back: f64) -> ClusterTimeline {
        let mut timeline = ClusterTimeline::new();
        for node in [0usize, 2, 3, 4] {
            timeline.push_event(at, NodeIndex(node), false).unwrap();
            timeline.push_event(back, NodeIndex(node), true).unwrap();
        }
        timeline
    }

    #[test]
    fn no_fault_robust_config_is_bit_identical_to_run_streaming() {
        // Kill semantics + retry + deadline abort with an empty timeline
        // (and with an up-only timeline) must reproduce the legacy
        // streaming loop bit for bit, field by field.
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let up_only = {
            let mut t = ClusterTimeline::new();
            t.push_event(0.05, NodeIndex(3), true).unwrap();
            t
        };
        for policy in [
            AdmissionPolicy::Fifo,
            AdmissionPolicy::Priority,
            AdmissionPolicy::EarliestDeadline,
        ] {
            for timeline in [ClusterTimeline::new(), up_only.clone()] {
                let base = mixed_scenario(policy).with_timeline(timeline);
                let robust = base
                    .clone()
                    .with_failure_mode(FailureMode::Kill)
                    .with_recovery(RecoveryPolicy::standard());
                let legacy = base
                    .run_streaming(&strategy, &cluster, NodeIndex(1))
                    .unwrap();
                let recovered = robust
                    .run_streaming(&strategy, &cluster, NodeIndex(1))
                    .unwrap();
                assert_eq!(legacy, recovered, "policy {}", policy.name());
                assert_eq!(
                    recovered.robustness,
                    RobustnessStats::all_completed(base.len())
                );
            }
        }
    }

    #[test]
    fn kill_without_recovery_loses_requests_and_retry_recovers_them() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // Heavy model, long service time; blackout of every non-leader node
        // shortly after the burst is admitted. BestEffort deadlines (4 s)
        // keep retries inside the deadline-abort budget. Two stragglers
        // arrive after the cluster recovers so the no-recovery run still
        // has a latency distribution.
        let mut requests = burst(WorkloadModel::ResNet152, 0.0, 4, SlaClass::BestEffort);
        requests.extend(burst(
            WorkloadModel::ResNet152,
            6.0,
            2,
            SlaClass::BestEffort,
        ));
        let base = ServingScenario::new(requests)
            .with_timeline(blackout(0.01, 5.0))
            .with_failure_mode(FailureMode::Kill);
        let abandoned = base
            .clone()
            .run_streaming(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert!(abandoned.robustness.accounts_for_every_request());
        assert_eq!(
            abandoned.robustness.lost, 4,
            "a blackout mid-flight kills distributed plans: {:?}",
            abandoned.robustness
        );
        assert_eq!(abandoned.robustness.retried, 0);
        assert_eq!(
            abandoned.latency.count as u64, abandoned.robustness.completed,
            "lost requests contribute no latency sample"
        );

        let recovered = base
            .with_recovery(RecoveryPolicy::standard())
            .run_streaming(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert!(recovered.robustness.accounts_for_every_request());
        assert_eq!(
            recovered.robustness.lost, 0,
            "retries recover every kill: {:?}",
            recovered.robustness
        );
        assert_eq!(recovered.robustness.completed, recovered.robustness.offered);
        assert!(recovered.robustness.retried > 0);
        assert_eq!(recovered.robustness.killed, abandoned.robustness.killed);
    }

    #[test]
    fn shedding_drops_provably_late_requests() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // A flood of premium requests (0.25 s deadline) through a
        // single-slot window: the backlog quickly proves later picks
        // unmeetable.
        let requests = burst(WorkloadModel::ResNet152, 0.0, 12, SlaClass::Premium);
        let shed = ServingScenario::new(requests)
            .with_max_inflight(Some(1))
            .with_recovery(RecoveryPolicy {
                shed: true,
                ..RecoveryPolicy::default()
            })
            .run_streaming(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert!(shed.robustness.accounts_for_every_request());
        assert!(shed.robustness.shed > 0, "{:?}", shed.robustness);
        assert!(
            shed.robustness.completed > 0,
            "the head of the flood serves"
        );
        assert_eq!(shed.latency.count as u64, shed.robustness.completed);
    }

    #[test]
    fn hedged_premium_batches_plan_a_second_copy() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let mut requests = burst(WorkloadModel::InceptionV3, 0.0, 3, SlaClass::Premium);
        requests.extend(burst(
            WorkloadModel::InceptionV3,
            0.1,
            3,
            SlaClass::BestEffort,
        ));
        let scenario = ServingScenario::new(requests).with_recovery(RecoveryPolicy {
            hedge_premium: true,
            ..RecoveryPolicy::default()
        });
        let hedged = scenario
            .run_streaming(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert!(hedged.robustness.accounts_for_every_request());
        assert_eq!(
            hedged.robustness.hedged, 3,
            "exactly the premium requests hedge: {:?}",
            hedged.robustness
        );
        // The hedge copy's plan is a real cache entry (distinct epoch
        // fingerprint), so cache traffic exceeds the unhedged run's.
        let plain = ServingScenario::new(
            (0..6)
                .map(|i| {
                    ServingRequest::new(WorkloadModel::InceptionV3, 0.1 * (i / 3) as f64).with_sla(
                        if i < 3 {
                            SlaClass::Premium
                        } else {
                            SlaClass::BestEffort
                        },
                    )
                })
                .collect(),
        )
        .run_streaming(&strategy, &cluster, NodeIndex(1))
        .unwrap();
        assert!(
            hedged.plan_cache.hits + hedged.plan_cache.misses
                > plain.plan_cache.hits + plain.plan_cache.misses
        );
    }

    #[test]
    fn straggler_windows_stretch_estimated_completions() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests = burst(WorkloadModel::EfficientNetB0, 0.0, 4, SlaClass::Standard);
        let scenario = ServingScenario::new(requests);
        let baseline = scenario
            .clone()
            .run_streaming(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        let slowdowns: Vec<SlowdownWindow> = (0..5)
            .map(|node| SlowdownWindow {
                node: NodeIndex(node),
                start: 0.0,
                end: 100.0,
                factor: 3.0,
            })
            .collect();
        let straggling = scenario
            .with_slowdowns(slowdowns)
            .run_streaming(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert!(straggling.makespan > baseline.makespan);
        assert!(straggling.robustness.accounts_for_every_request());
    }

    #[test]
    fn records_mode_kill_surfaces_failures_and_rejects_recovery() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // A single node flips down mid-flight: the resident request whose
        // plan touches it is killed; later admissions re-plan around the
        // hole and survive.
        let requests: Vec<ServingRequest> = (0..4)
            .map(|i| {
                ServingRequest::new(WorkloadModel::ResNet152, 0.1 * i as f64)
                    .with_sla(SlaClass::BestEffort)
            })
            .collect();
        let timeline = ClusterTimeline::new()
            .node_down(0.01, NodeIndex(0))
            .unwrap()
            .node_up(5.0, NodeIndex(0))
            .unwrap();
        let scenario = ServingScenario::new(requests)
            .with_timeline(timeline)
            .with_failure_mode(FailureMode::Kill);
        let result = scenario.run(&strategy, &cluster, NodeIndex(1)).unwrap();
        assert!(!result.failures.is_empty(), "blackout kills resident work");
        assert!(result.robustness.accounts_for_every_request());
        assert_eq!(result.robustness.lost, result.failures.len() as u64);
        for event in &result.failures {
            assert!(result.evaluation.latencies[event.request].is_infinite());
            assert!(result.records[event.request].completion.is_infinite());
        }
        assert_eq!(
            result.serving.latency.count as u64, result.robustness.completed,
            "served metrics cover survivors only"
        );
        // Recovery policies are streaming-only in this mode.
        let err = scenario
            .clone()
            .with_recovery(RecoveryPolicy::standard())
            .run(&strategy, &cluster, NodeIndex(1));
        assert!(err.is_err());
        // And Ignore mode still treats the same timeline as plan-only.
        let ignored = scenario
            .with_failure_mode(FailureMode::Ignore)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert!(ignored.failures.is_empty());
        assert_eq!(
            ignored.robustness,
            RobustnessStats::all_completed(ignored.records.len())
        );
    }

    #[test]
    fn invalid_recovery_configs_are_rejected() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests = vec![ServingRequest::new(WorkloadModel::Vgg19, 0.0)];
        let bad_retry = ServingScenario::new(requests.clone()).with_recovery(RecoveryPolicy {
            retry: Some(RetryPolicy {
                backoff_base_s: -1.0,
                ..RetryPolicy::default()
            }),
            ..RecoveryPolicy::default()
        });
        assert!(bad_retry
            .run_streaming(&strategy, &cluster, NodeIndex(1))
            .is_err());
        let bad_window = ServingScenario::new(requests).with_slowdowns(vec![SlowdownWindow {
            node: NodeIndex(99),
            start: 0.0,
            end: 1.0,
            factor: 2.0,
        }]);
        assert!(bad_window
            .run_streaming(&strategy, &cluster, NodeIndex(1))
            .is_err());
    }

    #[test]
    fn dispatch_estimator_matches_engine_on_a_solo_chain() {
        // For a single linear-chain plan on an idle cluster, submission-
        // order list scheduling and the event engine agree exactly.
        use hidp_sim::simulate_stream_detailed;
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        let strategy = HidpStrategy::new();
        let plan = strategy.plan(&graph, &cluster, NodeIndex(1)).unwrap();
        let engine = simulate_stream_detailed(&[(0.0, &plan)], &cluster, TraceDetail::Summary)
            .unwrap()
            .makespan;
        let mut dispatch = DispatchEstimator::default();
        dispatch.reset();
        let estimated = dispatch.estimate(&plan, &cluster, 0.0).unwrap();
        assert!(
            (estimated - engine).abs() < 1e-9,
            "estimated {estimated} vs engine {engine}"
        );
        // A second batch released later sees the first one's congestion.
        let later = dispatch.estimate(&plan, &cluster, 0.0).unwrap();
        assert!(later > estimated, "persistent free times accumulate");
    }
}
