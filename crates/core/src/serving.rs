//! The online serving runtime: admission, dynamic batching, SLA classes and
//! node-failure timelines interleaved with planning and simulation on one
//! virtual clock.
//!
//! [`crate::Scenario`] evaluates a *frozen* regime: every request's plan is
//! resolved up front against one cluster state, then the whole stream is
//! simulated. [`ServingScenario`] models the paper's *dynamic* regime
//! (§III, Eq. 4) instead: a virtual-time loop walks request arrivals, a
//! [`ClusterTimeline`] of node failures/recoveries, and service completions;
//! an [`AdmissionPolicy`] picks which queued request is served next; a
//! batcher coalesces up to `max_batch` queued same-model requests into one
//! batched plan; and every admission plans against the *current* epoch's
//! cluster — the epoch's [`Cluster::fingerprint`] is part of the
//! [`crate::PlanKey`], so a timeline flip automatically re-plans through the
//! shared [`PlanCache`] instead of serving a stale plan.
//!
//! Admission control gates on **estimated** service times (the solo makespan
//! of each admitted plan, memoized per plan key): with
//! [`ServingConfig::max_inflight`] set, at most that many batches are in
//! estimated flight at once, which is what makes queueing delay, priority
//! ordering and batching meaningful. The reported metrics, however, come
//! from one full contention-aware simulation of the admitted stream — the
//! event engine releases every subgraph at its *admitted* time and measures
//! latency from *arrival*, so queueing shows up in every percentile.
//!
//! # The degenerate mode
//!
//! A `ServingScenario` with the default config — FIFO admission,
//! `max_batch == 1`, unbounded in-flight, empty timeline — admits every
//! request at its own arrival instant and is **bit-identical** to
//! [`crate::Scenario::run`] on the same **arrival-ordered** stream (pinned
//! by `tests/serving_equivalence.rs`), so the whole static experiment grid
//! is a special case of this loop. The ordering caveat exists because a
//! serving loop necessarily processes arrivals in time order while the
//! static pipeline preserves input order: on a stream whose requests are
//! not sorted by arrival the two submit requests to the simulator in
//! different orders, which relabels per-request outputs and can change
//! exact-tie scheduling. Every generator in `hidp-workloads` produces
//! arrival-ordered streams.

use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::scenario::{Evaluation, Scenario};
use crate::strategy::DistributedStrategy;
use crate::{CoreError, PlanKey};
use hidp_dnn::zoo::WorkloadModel;
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, ClusterTimeline, NodeIndex};
use hidp_sim::serving::{ServedRequestRecord, ServingMetrics, SlaClass};
use hidp_sim::{
    simulate_admitted_stream_in, simulate_stream_detailed, ExecutionPlan, SimScratch, TraceDetail,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// One request entering the serving runtime: which model at which batch
/// size, when it arrives, and the SLA class it is served under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingRequest {
    /// The DNN model requested.
    pub model: WorkloadModel,
    /// Images per request (the batcher multiplies this when coalescing).
    pub batch: usize,
    /// Arrival time, seconds since scenario start.
    pub arrival: f64,
    /// The SLA class (priority + deadline).
    pub sla: SlaClass,
}

impl ServingRequest {
    /// A single-image [`SlaClass::Standard`] request arriving at `arrival`.
    pub fn new(model: WorkloadModel, arrival: f64) -> Self {
        Self {
            model,
            batch: 1,
            arrival,
            sla: SlaClass::Standard,
        }
    }

    /// Sets the per-request batch size (builder style, clamped to ≥ 1).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the SLA class (builder style).
    #[must_use]
    pub fn with_sla(mut self, sla: SlaClass) -> Self {
        self.sla = sla;
        self
    }
}

/// How the serving loop picks the next queued request to admit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// First in, first out (arrival order; ties by input order).
    #[default]
    Fifo,
    /// Most urgent [`SlaClass`] first; FIFO among equals.
    Priority,
    /// Earliest absolute deadline (`arrival + class deadline`) first; FIFO
    /// among equals.
    EarliestDeadline,
}

impl AdmissionPolicy {
    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::Fifo => "fifo",
            AdmissionPolicy::Priority => "priority",
            AdmissionPolicy::EarliestDeadline => "edf",
        }
    }
}

/// Configuration of the serving loop. The default is the degenerate mode:
/// FIFO, no batching, unbounded in-flight, static cluster — exactly the
/// regime [`crate::Scenario`] evaluates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Which queued request is admitted next.
    pub policy: AdmissionPolicy,
    /// Maximum same-`(model, batch)` requests coalesced into one batched
    /// plan (1 = no batching).
    pub max_batch: usize,
    /// Maximum batches in estimated flight before admission stalls
    /// (`None` = unbounded: every request is admitted at its arrival;
    /// `Some(0)` is treated as `Some(1)` — a window that can never admit
    /// would serve nothing).
    pub max_inflight: Option<usize>,
    /// Timed node failures/recoveries replayed while serving.
    pub timeline: ClusterTimeline,
}

/// One admission the serving loop performed: when, under which epoch, and
/// which requests (by input index) the batch served.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmittedBatch {
    /// Admission (release) time, seconds.
    pub admitted: f64,
    /// Cluster epoch the batch was planned under (number of timeline events
    /// applied before planning).
    pub epoch: usize,
    /// Input indices of the requests the batch serves, arrival order.
    pub members: Vec<usize>,
}

/// A serving workload: requests plus the [`ServingConfig`] governing
/// admission, batching and the failure timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingScenario {
    label: String,
    requests: Vec<ServingRequest>,
    config: ServingConfig,
    trace: TraceDetail,
}

impl ServingScenario {
    /// Wraps `requests` with the degenerate default config; labelled
    /// `serving[n]`.
    pub fn new(requests: Vec<ServingRequest>) -> Self {
        let label = format!("serving[{}]", requests.len());
        Self {
            label,
            requests,
            config: ServingConfig {
                max_batch: 1,
                ..ServingConfig::default()
            },
            trace: TraceDetail::Full,
        }
    }

    /// Replaces the report label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Replaces the whole config (builder style); `max_batch` is clamped to
    /// at least 1.
    #[must_use]
    pub fn with_config(mut self, config: ServingConfig) -> Self {
        self.config = config;
        self.config.max_batch = self.config.max_batch.max(1);
        self
    }

    /// Sets the admission policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the batching limit (builder style, clamped to ≥ 1).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch.max(1);
        self
    }

    /// Sets the in-flight admission window (builder style).
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: Option<usize>) -> Self {
        self.config.max_inflight = max_inflight;
        self
    }

    /// Sets the failure timeline (builder style).
    #[must_use]
    pub fn with_timeline(mut self, timeline: ClusterTimeline) -> Self {
        self.config.timeline = timeline;
        self
    }

    /// Sets how much of the execution trace simulation materialises
    /// (builder style); serving aggregates are identical in both modes.
    #[must_use]
    pub fn with_trace_detail(mut self, trace: TraceDetail) -> Self {
        self.trace = trace;
        self
    }

    /// The report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The requests, input order.
    pub fn requests(&self) -> &[ServingRequest] {
        &self.requests
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the scenario has no requests (such a scenario cannot run).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Runs the serving loop with a scenario-local [`PlanCache`].
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario is empty, a request or timeline
    /// event is invalid, or planning/simulation fails.
    pub fn run(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ServingEvaluation, CoreError> {
        self.run_with_cache(strategy, cluster, leader, &PlanCache::new())
    }

    /// [`ServingScenario::run`] against a caller-owned [`PlanCache`], for
    /// plan reuse across runs (batched plans and per-epoch replans share
    /// the same `(strategy, graph, batch, leader, cluster-epoch)` keys the
    /// static pipeline uses).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServingScenario::run`].
    pub fn run_with_cache(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
    ) -> Result<ServingEvaluation, CoreError> {
        let mut scratch = SimScratch::new();
        self.run_with_cache_in(strategy, cluster, leader, cache, &mut scratch)
    }

    /// [`ServingScenario::run_with_cache`] simulating into a caller-owned
    /// [`SimScratch`] (what sweep workers use). Results are bit-identical
    /// to the other entry points.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServingScenario::run`].
    pub fn run_with_cache_in(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
        scratch: &mut SimScratch,
    ) -> Result<ServingEvaluation, CoreError> {
        if self.requests.is_empty() {
            return Err(CoreError::Infeasible {
                what: format!("serving scenario '{}' has no requests", self.label),
            });
        }
        for (i, request) in self.requests.iter().enumerate() {
            if !(request.arrival.is_finite() && request.arrival >= 0.0) {
                return Err(CoreError::Infeasible {
                    what: format!(
                        "serving scenario '{}': request {i} has invalid arrival {}",
                        self.label, request.arrival
                    ),
                });
            }
            if request.batch == 0 {
                return Err(CoreError::Infeasible {
                    what: format!("serving scenario '{}': request {i} has batch 0", self.label),
                });
            }
        }
        self.config.timeline.validate(cluster)?;

        let admitted = self.admission_loop(strategy, cluster, leader, cache)?;
        self.finish(strategy, cluster, admitted, scratch)
    }

    /// The virtual-clock loop: walks arrivals, timeline events and estimated
    /// completions; admits batches per policy; plans each batch against the
    /// current epoch's cluster through `cache`.
    fn admission_loop(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
    ) -> Result<AdmissionOutcome, CoreError> {
        let requests = &self.requests;
        let n = requests.len();
        // A window of zero could never admit anything (the loop below would
        // wait on an in-flight completion that cannot exist); serving
        // requires at least one slot, so Some(0) is clamped like max_batch.
        let max_inflight = self.config.max_inflight.map(|w| w.max(1));
        // Arrival processing order: by time, ties by input order (stable).
        // Arrivals are normalised (+0.0) so a -0.0 arrival cannot jump a
        // +0.0 one.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| (requests[a].arrival + 0.0).total_cmp(&(requests[b].arrival + 0.0)));

        let mut epoch_cluster = cluster.clone();
        let mut key = PlanKey::for_run(strategy, &epoch_cluster, leader);
        let mut graphs: HashMap<(WorkloadModel, usize), Arc<DnnGraph>> = HashMap::new();
        let mut solo_makespans: HashMap<(u64, usize, u64), f64> = HashMap::new();
        let mut stats = PlanCacheStats::default();

        let events = self.config.timeline.events();
        let mut next_event = 0usize;
        let mut epoch = 0usize;

        let mut queue: Vec<usize> = Vec::new();
        let mut inflight: BinaryHeap<Reverse<Departure>> = BinaryHeap::new();
        let mut departure_seq = 0u64;
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;

        let mut stream: Vec<(f64, f64, Arc<ExecutionPlan>)> = Vec::new();
        let mut batches: Vec<AdmittedBatch> = Vec::new();

        loop {
            // Admit everything the window allows at the current instant.
            while !queue.is_empty() && max_inflight.is_none_or(|w| inflight.len() < w) {
                let head_pos = self.config.policy_pick(requests, &queue);
                let head = queue[head_pos];
                let batch_key = (requests[head].model, requests[head].batch);
                // Coalesce: the head plus queued same-(model, batch)
                // requests in queue (arrival) order, up to max_batch.
                let mut member_positions = vec![head_pos];
                for (pos, &idx) in queue.iter().enumerate() {
                    if member_positions.len() >= self.config.max_batch {
                        break;
                    }
                    if pos != head_pos && (requests[idx].model, requests[idx].batch) == batch_key {
                        member_positions.push(pos);
                    }
                }
                member_positions.sort_unstable();
                let members: Vec<usize> = member_positions.iter().map(|&pos| queue[pos]).collect();
                for &pos in member_positions.iter().rev() {
                    queue.remove(pos);
                }

                let combined = batch_key.1 * members.len();
                let graph = graphs
                    .entry((batch_key.0, combined))
                    .or_insert_with(|| Arc::new(batch_key.0.graph(combined)));
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                let (plan, hit) =
                    cache.plan_keyed(&key, strategy, graph, &epoch_cluster, leader)?;
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }

                if self.config.max_inflight.is_some() {
                    // Estimated service time: the plan's solo makespan on an
                    // idle cluster, memoized per plan key.
                    let memo = (key.graph_fingerprint, key.batch, key.cluster_fingerprint);
                    let service = match solo_makespans.get(&memo) {
                        Some(&s) => s,
                        None => {
                            let s = simulate_stream_detailed(
                                &[(0.0, plan.as_ref())],
                                cluster,
                                TraceDetail::Summary,
                            )?
                            .makespan;
                            solo_makespans.insert(memo, s);
                            s
                        }
                    };
                    inflight.push(Reverse(Departure {
                        at: now + service,
                        seq: departure_seq,
                    }));
                    departure_seq += 1;
                }

                // The batch's sim arrival is its earliest member's (members
                // are in arrival order).
                stream.push((requests[members[0]].arrival, now, Arc::clone(&plan)));
                batches.push(AdmittedBatch {
                    admitted: now,
                    epoch,
                    members,
                });
            }

            if next_arrival >= n && queue.is_empty() {
                break;
            }

            // Blocked: wait for the next arrival or (when the window is
            // full) the next estimated completion, whichever comes first.
            let mut t = f64::INFINITY;
            if next_arrival < n {
                t = requests[order[next_arrival]].arrival + 0.0;
            }
            if !queue.is_empty() {
                let Reverse(soonest) = inflight
                    .peek()
                    .expect("a full admission window implies in-flight batches");
                t = t.min(soonest.at);
            }
            // Replay timeline events due by then: each flip starts a new
            // epoch whose cluster fingerprint re-keys all later planning.
            while next_event < events.len() && events[next_event].time <= t {
                let event = &events[next_event];
                epoch_cluster.set_available(event.node, event.up)?;
                key.cluster_fingerprint = epoch_cluster.fingerprint();
                epoch += 1;
                next_event += 1;
            }
            if t > now {
                now = t;
            }
            while let Some(Reverse(soonest)) = inflight.peek() {
                if soonest.at <= now {
                    inflight.pop();
                } else {
                    break;
                }
            }
            while next_arrival < n && requests[order[next_arrival]].arrival + 0.0 <= now {
                queue.push(order[next_arrival]);
                next_arrival += 1;
            }
        }

        Ok(AdmissionOutcome {
            stream,
            batches,
            stats,
            epochs_applied: epoch,
        })
    }

    /// Simulates the admitted stream and assembles the evaluation: one
    /// contention-aware pass of the event engine (subgraphs released at
    /// admitted times), per-request latency/queueing attribution, SLA
    /// aggregates and energy accounting.
    fn finish(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        outcome: AdmissionOutcome,
        scratch: &mut SimScratch,
    ) -> Result<ServingEvaluation, CoreError> {
        let AdmissionOutcome {
            stream,
            batches,
            stats,
            epochs_applied,
        } = outcome;
        let report = simulate_admitted_stream_in(scratch, &stream, cluster, self.trace)?.clone();

        let n = self.requests.len();
        let mut records = vec![
            ServedRequestRecord {
                arrival: 0.0,
                admitted: 0.0,
                completion: 0.0,
                sla: SlaClass::Standard,
            };
            n
        ];
        let mut latencies = vec![0.0f64; n];
        for (b, batch) in batches.iter().enumerate() {
            let completion = report.request_completion[b];
            for &i in &batch.members {
                let request = &self.requests[i];
                records[i] = ServedRequestRecord {
                    arrival: request.arrival,
                    admitted: batch.admitted,
                    completion,
                    sla: request.sla,
                };
                latencies[i] = completion - request.arrival;
            }
        }
        let serving = ServingMetrics::from_records(&records).expect("scenario is non-empty");

        let mut evaluation =
            Scenario::evaluation_from(strategy.name(), &self.label, report, cluster)?;
        // Per *request* (input order), not per batch — a batched request's
        // latency runs from its own arrival to its batch's completion.
        evaluation.latencies = latencies;
        evaluation.plan_cache = Some(stats);
        Ok(ServingEvaluation {
            evaluation,
            serving,
            records,
            admissions: batches,
            epochs_applied,
        })
    }
}

impl ServingConfig {
    /// The queue position the configured policy admits next (queue is in
    /// arrival order, so FIFO is position 0 and every tie breaks toward the
    /// earlier position).
    fn policy_pick(&self, requests: &[ServingRequest], queue: &[usize]) -> usize {
        match self.policy {
            AdmissionPolicy::Fifo => 0,
            AdmissionPolicy::Priority => queue
                .iter()
                .enumerate()
                .min_by_key(|(_, &idx)| requests[idx].sla.priority())
                .map(|(pos, _)| pos)
                .expect("queue is non-empty"),
            AdmissionPolicy::EarliestDeadline => queue
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    let da = requests[a].arrival + requests[a].sla.deadline_seconds();
                    let db = requests[b].arrival + requests[b].sla.deadline_seconds();
                    da.total_cmp(&db)
                })
                .map(|(pos, _)| pos)
                .expect("queue is non-empty"),
        }
    }
}

/// An estimated batch completion in the admission window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Departure {
    at: f64,
    seq: u64,
}

impl Eq for Departure {}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.total_cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// What the admission loop hands to the simulation half.
struct AdmissionOutcome {
    stream: Vec<(f64, f64, Arc<ExecutionPlan>)>,
    batches: Vec<AdmittedBatch>,
    stats: PlanCacheStats,
    epochs_applied: usize,
}

/// The result of one served scenario: the familiar [`Evaluation`] (latencies
/// are per *request* in input order; the report is per admitted *batch*)
/// plus serving-quality metrics and the admission log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingEvaluation {
    /// Strategy/label/latency/energy metrics, shaped exactly like the static
    /// pipeline's output (bit-identical to it in the degenerate mode).
    pub evaluation: Evaluation,
    /// SLA-class latency tails, queueing delay and deadline accounting.
    pub serving: ServingMetrics,
    /// Per-request served life cycle (arrival → admitted → completed), input
    /// order.
    pub records: Vec<ServedRequestRecord>,
    /// The admission log: one entry per batch, in admission order.
    pub admissions: Vec<AdmittedBatch>,
    /// Timeline events applied during the run (the final epoch number).
    pub epochs_applied: usize,
}

impl ServingEvaluation {
    /// Completed requests per second of simulated time (count over the
    /// serving makespan).
    pub fn requests_per_second(&self) -> f64 {
        if self.evaluation.makespan <= 0.0 {
            return 0.0;
        }
        self.records.len() as f64 / self.evaluation.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HidpStrategy;
    use hidp_platform::presets;

    fn burst(model: WorkloadModel, at: f64, count: usize, sla: SlaClass) -> Vec<ServingRequest> {
        (0..count)
            .map(|_| ServingRequest::new(model, at).with_sla(sla))
            .collect()
    }

    #[test]
    fn unbounded_fifo_admits_every_request_at_arrival() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests: Vec<ServingRequest> = (0..6)
            .map(|i| ServingRequest::new(WorkloadModel::EfficientNetB0, i as f64 * 0.1))
            .collect();
        let result = ServingScenario::new(requests.clone())
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(result.admissions.len(), 6, "no batching by default");
        for (batch, request) in result.admissions.iter().zip(&requests) {
            assert_eq!(batch.admitted, request.arrival);
            assert_eq!(batch.epoch, 0);
        }
        assert_eq!(result.serving.max_queueing_delay, 0.0);
        assert_eq!(result.epochs_applied, 0);
        assert_eq!(result.evaluation.latencies.len(), 6);
        assert!(result.requests_per_second() > 0.0);
    }

    #[test]
    fn batcher_coalesces_same_model_requests() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // A burst of 4 identical requests plus one different model.
        let mut requests = burst(WorkloadModel::EfficientNetB0, 0.0, 4, SlaClass::Standard);
        requests.push(ServingRequest::new(WorkloadModel::InceptionV3, 0.0));
        let result = ServingScenario::new(requests)
            .with_max_batch(4)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        // One batch of 4 + one singleton (different model cannot coalesce).
        assert_eq!(result.admissions.len(), 2);
        assert_eq!(result.admissions[0].members, vec![0, 1, 2, 3]);
        assert_eq!(result.admissions[1].members, vec![4]);
        // Every member shares its batch's completion.
        let c = result.records[0].completion;
        for r in &result.records[..4] {
            assert_eq!(r.completion, c);
        }
        // The batched plan was planned once for batch 4.
        let stats = result.evaluation.plan_cache.unwrap();
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn bounded_window_queues_and_fifo_preserves_arrival_order() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests = burst(WorkloadModel::EfficientNetB0, 0.0, 4, SlaClass::Standard);
        let result = ServingScenario::new(requests)
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(result.admissions.len(), 4);
        // Later admissions queue behind the estimated service of earlier
        // ones.
        let admitted: Vec<f64> = result.admissions.iter().map(|b| b.admitted).collect();
        for pair in admitted.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        assert!(result.serving.max_queueing_delay > 0.0);
        assert!(result.serving.mean_queueing_delay > 0.0);
        // FIFO: members in arrival (input) order.
        let served: Vec<usize> = result
            .admissions
            .iter()
            .flat_map(|b| b.members.clone())
            .collect();
        assert_eq!(served, vec![0, 1, 2, 3]);
    }

    #[test]
    fn priority_admits_premium_before_best_effort() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // Best-effort requests arrive first, a premium one right behind.
        let mut requests = burst(WorkloadModel::Vgg19, 0.0, 3, SlaClass::BestEffort);
        requests.push(ServingRequest::new(WorkloadModel::Vgg19, 0.0).with_sla(SlaClass::Premium));
        let fifo = ServingScenario::new(requests.clone())
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        let priority = ServingScenario::new(requests)
            .with_policy(AdmissionPolicy::Priority)
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        // Under FIFO the premium request (index 3) is served last; under
        // priority it is served first among the queued.
        assert_eq!(fifo.admissions.last().unwrap().members, vec![3]);
        assert_eq!(priority.admissions[0].members, vec![3]);
        let fifo_premium = fifo.serving.class(SlaClass::Premium).unwrap();
        let prio_premium = priority.serving.class(SlaClass::Premium).unwrap();
        assert!(prio_premium.latency.p99 < fifo_premium.latency.p99);
    }

    #[test]
    fn earliest_deadline_orders_by_absolute_deadline() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // A best-effort request from long ago has an earlier absolute
        // deadline than a premium request arriving now.
        let requests = vec![
            ServingRequest::new(WorkloadModel::InceptionV3, 0.0).with_sla(SlaClass::BestEffort),
            ServingRequest::new(WorkloadModel::InceptionV3, 3.9).with_sla(SlaClass::Premium),
            ServingRequest::new(WorkloadModel::InceptionV3, 3.9).with_sla(SlaClass::BestEffort),
        ];
        // Block admission until all three are queued.
        let mut blocker = vec![ServingRequest::new(WorkloadModel::Vgg19, 0.0)];
        blocker.extend(requests);
        let result = ServingScenario::new(blocker)
            .with_policy(AdmissionPolicy::EarliestDeadline)
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        // Deadlines: req1 at 4.0, req2 at 4.15, req3 at 7.9 — admitted in
        // that order once the blocker clears.
        let order: Vec<usize> = result
            .admissions
            .iter()
            .skip(1)
            .flat_map(|b| b.members.clone())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn timeline_flip_replans_under_the_new_epoch() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        // Same model before and after a failure at t = 0.5: the second
        // request must re-plan (new epoch fingerprint), so the cache records
        // two misses for one distinct model.
        let requests = vec![
            ServingRequest::new(WorkloadModel::ResNet152, 0.0),
            ServingRequest::new(WorkloadModel::ResNet152, 1.0),
        ];
        let timeline = ClusterTimeline::new().node_down(0.5, NodeIndex(4)).unwrap();
        let result = ServingScenario::new(requests)
            .with_timeline(timeline)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(result.epochs_applied, 1);
        assert_eq!(result.admissions[0].epoch, 0);
        assert_eq!(result.admissions[1].epoch, 1);
        let stats = result.evaluation.plan_cache.unwrap();
        assert_eq!(stats.misses, 2, "one plan per epoch");
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn unknown_timeline_node_and_empty_scenario_are_rejected() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        assert!(ServingScenario::new(vec![])
            .run(&strategy, &cluster, NodeIndex(0))
            .is_err());
        let bad_timeline = ClusterTimeline::new().node_down(1.0, NodeIndex(9)).unwrap();
        let scenario = ServingScenario::new(vec![ServingRequest::new(WorkloadModel::Vgg19, 0.0)])
            .with_timeline(bad_timeline);
        assert!(scenario.run(&strategy, &cluster, NodeIndex(0)).is_err());
        let nan = ServingScenario::new(vec![ServingRequest::new(WorkloadModel::Vgg19, f64::NAN)]);
        assert!(nan.run(&strategy, &cluster, NodeIndex(0)).is_err());
    }

    #[test]
    fn zero_inflight_window_is_clamped_to_one() {
        // Some(0) could never admit; it must behave exactly like Some(1)
        // instead of deadlocking or panicking.
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests = burst(WorkloadModel::EfficientNetB0, 0.0, 3, SlaClass::Standard);
        let zero = ServingScenario::new(requests.clone())
            .with_max_inflight(Some(0))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        let one = ServingScenario::new(requests)
            .with_max_inflight(Some(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(zero, one);
    }

    #[test]
    fn unsorted_arrivals_are_served_in_time_order() {
        // The serving loop processes arrivals in time order even when the
        // input is not sorted (the static pipeline preserves input order —
        // see the module docs for why the degenerate equivalence is scoped
        // to arrival-ordered streams).
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests = vec![
            ServingRequest::new(WorkloadModel::EfficientNetB0, 1.0),
            ServingRequest::new(WorkloadModel::InceptionV3, 0.0),
        ];
        let result = ServingScenario::new(requests)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        // Request 1 (arriving first) is admitted first; latencies are still
        // reported in input order.
        assert_eq!(result.admissions[0].members, vec![1]);
        assert_eq!(result.admissions[1].members, vec![0]);
        assert_eq!(result.records[0].arrival, 1.0);
        assert_eq!(result.records[1].arrival, 0.0);
        assert!(result.evaluation.latencies.iter().all(|l| *l > 0.0));
    }

    #[test]
    fn builders_clamp_and_label() {
        let scenario = ServingScenario::new(vec![ServingRequest::new(WorkloadModel::Vgg19, 0.0)])
            .with_label("svc")
            .with_max_batch(0)
            .with_config(ServingConfig {
                max_batch: 0,
                ..ServingConfig::default()
            });
        assert_eq!(scenario.label(), "svc");
        assert_eq!(scenario.config().max_batch, 1);
        assert_eq!(scenario.len(), 1);
        assert!(!scenario.is_empty());
        assert_eq!(
            ServingRequest::new(WorkloadModel::Vgg19, 0.0)
                .with_batch(0)
                .batch,
            1
        );
        assert_eq!(AdmissionPolicy::Fifo.name(), "fifo");
        assert_eq!(AdmissionPolicy::EarliestDeadline.name(), "edf");
    }
}
