//! The parallel evaluation engine: fan independent [`Scenario`] runs (or any
//! independent jobs) across worker threads.
//!
//! Every experiment sweep in the workspace — strategy × workload grids,
//! arrival-rate sweeps, node-scaling curves — is a list of *independent*
//! plan-and-simulate jobs. [`ParallelSweep`] runs such a list on scoped
//! worker threads (crossbeam), with:
//!
//! * **work stealing by atomic counter** — threads pull the next job index
//!   from a shared `AtomicUsize`, so uneven job costs (VGG-19 vs
//!   EfficientNet-B0, MCTS vs greedy planners) do not leave workers idle;
//! * **one deterministic result slot per job index** — results land in
//!   `out[i]` for job `i` regardless of which worker ran it or in which
//!   order jobs finished, so a sweep's output is byte-identical at any
//!   thread count;
//! * **a shared [`PlanCache`]** (for scenario jobs) — the sharded cache
//!   deduplicates concurrent planning across the whole sweep, so a grid
//!   that revisits the same (strategy, model, cluster, leader) plans it
//!   exactly once no matter how many jobs need it.
//!
//! Determinism argument: every strategy is a deterministic function of its
//! key, the cache returns bit-identical plans for a key no matter which
//! thread planned first, and the simulator is a deterministic function of
//! the plans — so each job's [`Evaluation`] is independent of scheduling.
//! The only order-dependent quantity is *attribution* of cache hits/misses
//! to individual runs, which is why [`ParallelSweep::run_scenarios`] strips
//! [`Evaluation::plan_cache`] (see its docs).
//!
//! ```
//! use hidp_core::{HidpStrategy, ParallelSweep, PlanCache, Scenario, SweepJob};
//! use hidp_dnn::zoo::WorkloadModel;
//! use hidp_platform::{presets, NodeIndex};
//!
//! let cluster = presets::paper_cluster();
//! let strategy = HidpStrategy::new();
//! let scenarios: Vec<Scenario> = [WorkloadModel::EfficientNetB0, WorkloadModel::InceptionV3]
//!     .iter()
//!     .map(|m| Scenario::single(m.graph(1)))
//!     .collect();
//! let jobs: Vec<SweepJob<'_>> = scenarios
//!     .iter()
//!     .map(|scenario| SweepJob {
//!         scenario,
//!         strategy: &strategy,
//!         cluster: &cluster,
//!         leader: NodeIndex(1),
//!     })
//!     .collect();
//! let cache = PlanCache::new();
//! let results = ParallelSweep::with_available_parallelism().run_scenarios(&jobs, &cache);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

use crate::plan_cache::PlanCache;
use crate::scenario::{Evaluation, Scenario};
use crate::serving::{ServingEvaluation, ServingScenario};
use crate::strategy::DistributedStrategy;
use crate::CoreError;
use hidp_platform::{Cluster, NodeIndex};
use hidp_sim::SimScratch;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A thread-pooled runner for lists of independent jobs, with deterministic
/// per-index result slots. See the module docs for the design.
#[derive(Debug, Clone, Copy)]
pub struct ParallelSweep {
    threads: usize,
}

impl ParallelSweep {
    /// A sweep over `threads` worker threads (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A sweep sized to the host's available parallelism (1 if unknown).
    pub fn with_available_parallelism() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads this sweep uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(index, &jobs[index])` for every job and returns the results
    /// in job order. With one thread (or at most one job) this degenerates
    /// to a plain sequential loop on the calling thread — no threads are
    /// spawned, so the serial path stays the trivially-correct reference.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` after all workers have stopped.
    pub fn run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(usize, &J) -> R + Sync,
    {
        self.run_with_state(jobs, || (), |(), i, job| f(i, job))
    }

    /// [`ParallelSweep::run`] with **per-worker state**: each worker thread
    /// calls `init` once and threads the resulting value through every job
    /// it runs. This is how scenario sweeps reuse one [`SimScratch`] per
    /// worker across jobs — the state is plain working memory, so reuse
    /// must not (and does not) change any result.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` or `init` after all workers have stopped.
    pub fn run_with_state<J, R, S, I, F>(&self, jobs: &[J], init: I, f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &J) -> R + Sync,
    {
        if self.threads == 1 || jobs.len() <= 1 {
            let mut state = init();
            let mut results = Vec::with_capacity(jobs.len());
            for (i, job) in jobs.iter().enumerate() {
                results.push(f(&mut state, i, job));
            }
            return results;
        }

        let workers = self.threads.min(jobs.len());
        let next = AtomicUsize::new(0);
        let buckets: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|_| {
                        let mut state = init();
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs.len() {
                                break;
                            }
                            done.push((i, f(&mut state, i, &jobs[i])));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        })
        .expect("scoped sweep threads complete");

        // Scatter into the deterministic per-index slots.
        let mut slots: Vec<Option<R>> = (0..jobs.len()).map(|_| None).collect();
        for (i, result) in buckets.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "job {i} ran twice");
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every job index was claimed exactly once"))
            .collect()
    }

    /// Runs `f(index, &mut items[index])` for every item, **mutating the
    /// items in place** — the fleet tier's per-round worker barrier. Each
    /// call touches only its own slot, so the results are trivially
    /// bit-identical at every thread count; the work-stealing atomic
    /// counter only decides *which thread* runs an index, never what the
    /// index computes.
    ///
    /// With one thread (or at most one item) this degenerates to a plain
    /// sequential loop — no threads, no locks, **no allocation** — which is
    /// the path the fleet zero-alloc audit runs on. The threaded path wraps
    /// each slot in an uncontended `Mutex` (every index is claimed exactly
    /// once) purely to hand `&mut` across the scope boundary.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` after all workers have stopped.
    pub fn run_mut<J, F>(&self, items: &mut [J], f: F)
    where
        J: Send,
        F: Fn(usize, &mut J) + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }

        let workers = self.threads.min(items.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<&mut J>> =
            items.iter_mut().map(std::sync::Mutex::new).collect();
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        let mut slot = slots[i].lock().expect("slot mutex poisoned");
                        f(i, &mut slot);
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("sweep worker panicked");
            }
        })
        .expect("scoped sweep threads complete");
    }

    /// Runs every [`SweepJob`] through
    /// [`Scenario::run_with_cache_in`] against one shared (sharded) `cache`,
    /// returning evaluations in job order. Each worker thread owns one
    /// [`SimScratch`] reused across all jobs it runs, so a sweep's
    /// steady-state simulation work is allocation-free.
    ///
    /// The returned evaluations have [`Evaluation::plan_cache`] set to
    /// `None`: per-run hit/miss attribution depends on which job reaches a
    /// key first, which under concurrency (and even serially, across job
    /// orderings) is scheduling-dependent — stripping it is what makes the
    /// results of a sweep **bit-identical at every thread count**. Aggregate
    /// counters are available on `cache.stats()`.
    pub fn run_scenarios(
        &self,
        jobs: &[SweepJob<'_>],
        cache: &PlanCache,
    ) -> Vec<Result<Evaluation, CoreError>> {
        self.run_with_state(jobs, SimScratch::new, |scratch, _, job| {
            job.scenario
                .run_with_cache_in(job.strategy, job.cluster, job.leader, cache, scratch)
                .map(|mut evaluation| {
                    evaluation.plan_cache = None;
                    evaluation
                })
        })
    }

    /// Runs every [`ServingSweepJob`] through
    /// [`ServingScenario::run_with_cache_in`] against one shared (sharded)
    /// `cache`, returning serving evaluations in job order — the serving
    /// counterpart of [`ParallelSweep::run_scenarios`], with the same
    /// guarantees: per-worker [`crate::ServingScratch`] reuse and results
    /// that are **bit-identical at every thread count** (per-run cache-stat
    /// attribution is stripped for the same reason as there).
    pub fn run_serving(
        &self,
        jobs: &[ServingSweepJob<'_>],
        cache: &PlanCache,
    ) -> Vec<Result<ServingEvaluation, CoreError>> {
        self.run_with_state(jobs, crate::ServingScratch::new, |scratch, _, job| {
            job.scenario
                .run_with_cache_in(job.strategy, job.cluster, job.leader, cache, scratch)
                .map(|mut result| {
                    result.evaluation.plan_cache = None;
                    result
                })
        })
    }
}

impl Default for ParallelSweep {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

/// One independent plan-and-simulate job of a sweep: which scenario to run,
/// with which strategy, on which cluster, arriving at which leader.
#[derive(Clone, Copy)]
pub struct SweepJob<'a> {
    /// The workload to evaluate.
    pub scenario: &'a Scenario,
    /// The strategy planning every request of the scenario.
    pub strategy: &'a dyn DistributedStrategy,
    /// The cluster the plans are simulated on.
    pub cluster: &'a Cluster,
    /// The node requests arrive at.
    pub leader: NodeIndex,
}

impl std::fmt::Debug for SweepJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJob")
            .field("scenario", &self.scenario.label())
            .field("strategy", &self.strategy.name())
            .field("leader", &self.leader)
            .finish_non_exhaustive()
    }
}

/// One independent serving job of a sweep: which [`ServingScenario`] to run,
/// with which strategy, on which cluster, arriving at which leader.
#[derive(Clone, Copy)]
pub struct ServingSweepJob<'a> {
    /// The serving workload (requests + admission/batching/failure config).
    pub scenario: &'a ServingScenario,
    /// The strategy planning every admitted batch.
    pub strategy: &'a dyn DistributedStrategy,
    /// The cluster served (the job's timeline replays against a copy).
    pub cluster: &'a Cluster,
    /// The node requests arrive at.
    pub leader: NodeIndex,
}

impl std::fmt::Debug for ServingSweepJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingSweepJob")
            .field("scenario", &self.scenario.label())
            .field("strategy", &self.strategy.name())
            .field("leader", &self.leader)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HidpStrategy;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn generic_run_preserves_job_order() {
        let jobs: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 4] {
            let results = ParallelSweep::new(threads).run(&jobs, |i, &job| {
                assert_eq!(i, job);
                job * job
            });
            assert_eq!(results.len(), jobs.len());
            for (i, r) in results.iter().enumerate() {
                assert_eq!(*r, i * i);
            }
        }
    }

    #[test]
    fn run_mut_updates_every_slot_in_place_at_any_thread_count() {
        for threads in [1, 2, 4] {
            let mut items: Vec<u64> = (0..97).collect();
            ParallelSweep::new(threads).run_mut(&mut items, |i, item| {
                *item = *item * 3 + i as u64;
            });
            for (i, item) in items.iter().enumerate() {
                assert_eq!(*item, i as u64 * 4, "threads = {threads}");
            }
        }
        // Empty and singleton inputs take the serial path.
        ParallelSweep::new(4).run_mut(&mut [] as &mut [u64], |_, _| unreachable!());
        let mut one = [7u64];
        ParallelSweep::new(4).run_mut(&mut one, |_, item| *item += 1);
        assert_eq!(one, [8]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ParallelSweep::new(0).threads(), 1);
        assert!(ParallelSweep::with_available_parallelism().threads() >= 1);
    }

    #[test]
    fn empty_job_list_yields_empty_results() {
        let results = ParallelSweep::new(4).run(&[] as &[usize], |_, &j| j);
        assert!(results.is_empty());
        let cache = PlanCache::new();
        assert!(ParallelSweep::new(4).run_scenarios(&[], &cache).is_empty());
    }

    #[test]
    fn scenario_results_match_the_direct_path_at_any_thread_count() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let scenarios: Vec<Scenario> = WorkloadModel::ALL
            .iter()
            .map(|m| Scenario::single(m.graph(1)))
            .collect();
        let jobs: Vec<SweepJob<'_>> = scenarios
            .iter()
            .map(|scenario| SweepJob {
                scenario,
                strategy: &strategy,
                cluster: &cluster,
                leader: NodeIndex(1),
            })
            .collect();

        // Reference: the plain serial pipeline, stats stripped the same way.
        let reference: Vec<Evaluation> = scenarios
            .iter()
            .map(|s| {
                let mut e = s.run(&strategy, &cluster, NodeIndex(1)).unwrap();
                e.plan_cache = None;
                e
            })
            .collect();

        for threads in [1, 3] {
            let cache = PlanCache::new();
            let results = ParallelSweep::new(threads).run_scenarios(&jobs, &cache);
            let evaluations: Vec<Evaluation> = results.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(evaluations, reference, "threads = {threads}");
            // One plan per distinct (strategy, model, leader, cluster) key.
            assert_eq!(cache.len(), WorkloadModel::ALL.len());
            assert_eq!(cache.stats().misses, WorkloadModel::ALL.len() as u64);
        }
    }

    #[test]
    fn errors_land_in_their_jobs_slot() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let good = Scenario::single(WorkloadModel::EfficientNetB0.graph(1));
        let empty = Scenario::stream(Vec::<(f64, hidp_dnn::DnnGraph)>::new());
        let jobs = [
            SweepJob {
                scenario: &good,
                strategy: &strategy,
                cluster: &cluster,
                leader: NodeIndex(1),
            },
            SweepJob {
                scenario: &empty,
                strategy: &strategy,
                cluster: &cluster,
                leader: NodeIndex(1),
            },
        ];
        let cache = PlanCache::new();
        let results = ParallelSweep::new(2).run_scenarios(&jobs, &cache);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }
}
