//! The adaptive drift loop: online effective-rate estimation per node,
//! hysteresis-bounded re-planning against a *believed* cluster, and a small
//! deterministic bandit over strategies.
//!
//! The serving loop's drift model ([`hidp_platform::DriftModel`]) slows the
//! *truth* — estimated completions stretch under throttle, background-load
//! and contention windows — while planning still assumes nominal rates. The
//! adaptive loop closes that gap without peeking at the drift trace:
//!
//! 1. every primary dispatch estimate reports, per compute task, the ratio
//!    of effective to nominal duration; an [`Ewma`] per node (and one for
//!    the interconnect) folds those ratios into an effective-rate estimate;
//! 2. when an estimate leaves the hysteresis band around the level planning
//!    currently assumes, the loop *re-plans*: estimates are quantised onto
//!    a coarse grid, a **believed cluster** is materialised by derating the
//!    base cluster's peak rates accordingly, and subsequent admissions plan
//!    (and cache-key) against the belief while completions keep running on
//!    the truth;
//! 3. the quantised grid plus the hysteresis band bound both the number of
//!    re-plans per run ([`AdaptiveConfig::max_replans`]) and the number of
//!    distinct believed fingerprints, so the plan cache converges to an
//!    all-hit steady state and the warm path stays zero-alloc.
//!
//! When drift decays, the estimates fall back inside the band around 1.0,
//! a final re-plan restores unit factors, and the believed cluster becomes
//! bit-identical to the base again — cached plans for the original
//! fingerprint are reused, not re-planned.

use crate::CoreError;
use hidp_platform::Cluster;
use hidp_sim::Ewma;
use serde::{Deserialize, Serialize};

/// Tuning of the adaptive loop. All-`Copy`; the default is the
/// configuration the drift experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// EWMA smoothing factor for the per-node rate estimators (0 < α ≤ 1;
    /// larger α weights recent observations more).
    pub ewma_alpha: f64,
    /// Half-width of the relative hysteresis band: a re-plan triggers only
    /// when an estimate leaves `[planned/(1+h), planned·(1+h)]`.
    pub hysteresis: f64,
    /// Quantisation step for believed slowdown levels: estimates are
    /// rounded onto the grid `1 + k·quantum` before planning, so small
    /// estimate wiggles map to the same believed cluster (and the same
    /// plan-cache fingerprint).
    pub quantum: f64,
    /// Hard cap on hysteresis-triggered re-plans per run (epoch-forced
    /// rebuilds after availability flips do not count).
    pub max_replans: u32,
    /// Slowdown ratio folded into a node's estimator when a kill event
    /// lands on it — failures down-weight a node ahead of its timeline.
    pub kill_penalty: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            ewma_alpha: 0.2,
            // A wide band on purpose: re-planning is worth its cost only
            // for *sustained* drift. Narrow bands chase transient bursts,
            // burn the re-plan budget early and leave the run stuck on an
            // over-derated belief (measurably worse than static plans in
            // the drift experiment's bandit sweep).
            hysteresis: 0.5,
            quantum: 0.25,
            max_replans: 8,
            kill_penalty: 2.0,
        }
    }
}

impl AdaptiveConfig {
    /// Checks the tuning is usable.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when α is outside `(0, 1]`, the
    /// hysteresis or quantum is not positive and finite, the kill penalty
    /// is below 1 or `max_replans` is 0.
    pub fn validate(&self) -> Result<(), CoreError> {
        let ok = self.ewma_alpha.is_finite()
            && self.ewma_alpha > 0.0
            && self.ewma_alpha <= 1.0
            && self.hysteresis.is_finite()
            && self.hysteresis > 0.0
            && self.quantum.is_finite()
            && self.quantum > 0.0
            && self.kill_penalty.is_finite()
            && self.kill_penalty >= 1.0
            && self.max_replans >= 1;
        if ok {
            Ok(())
        } else {
            Err(CoreError::Infeasible {
                what: format!(
                    "adaptive config needs 0 < alpha ≤ 1, positive finite \
                     hysteresis and quantum, kill penalty ≥ 1 and \
                     max_replans ≥ 1 (got {self:?})"
                ),
            })
        }
    }

    /// Rounds a slowdown level onto the believed grid `1 + k·quantum`,
    /// clamped to ≥ 1 (drift only ever slows).
    pub(crate) fn quantize(&self, level: f64) -> f64 {
        (1.0 + ((level - 1.0) / self.quantum).round() * self.quantum).max(1.0)
    }
}

/// Counters the adaptive loop reports per run: how often it re-planned,
/// how many task-level rate observations fed the estimators, and the
/// dynamic compute energy the dispatch model accrued (drift stretches
/// busy time at unchanged power, so energy is where slowdown shows up
/// even when latency is hidden by slack).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftStats {
    /// Hysteresis-triggered re-plans (bounded by
    /// [`AdaptiveConfig::max_replans`]).
    pub replans: u32,
    /// Task-level rate observations folded into the estimators (0 when
    /// the adaptive loop is off).
    pub observations: u64,
    /// Dynamic compute energy of all dispatched work, joules (busy time ×
    /// per-processor dynamic power, under whatever slowdowns and drift
    /// applied).
    pub energy_j: f64,
}

impl DriftStats {
    /// Field-wise accumulation (fleet rollup, cluster index order).
    pub fn merge(&mut self, other: &Self) {
        self.replans += other.replans;
        self.observations += other.observations;
        self.energy_j += other.energy_j;
    }

    /// Renders the stats as one JSON object (hand-rolled: the build
    /// environment has no serde_json), the shape `BENCH_drift.json` nests.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"replans\": {}, \"observations\": {}, \"energy_j\": {}}}",
            self.replans, self.observations, self.energy_j
        )
    }
}

/// Per-run state of the adaptive loop: one rate estimator per node plus
/// one for the interconnect, the levels planning currently assumes, and
/// the lazily materialised believed cluster. Lives in the serving/fleet
/// scratch so warm passes reuse every buffer.
#[derive(Debug)]
pub(crate) struct AdaptiveState {
    /// Effective-rate estimate per node (ratio ≥ 1; 1 = nominal).
    pub(crate) est: Vec<Ewma>,
    /// Quantised slowdown level per node the current plans assume.
    pub(crate) planned: Vec<f64>,
    /// Effective interconnect slowdown estimate.
    pub(crate) bw_est: Ewma,
    /// Quantised interconnect level the current plans assume.
    pub(crate) bw_planned: f64,
    /// Hysteresis-triggered re-plans so far this run.
    pub(crate) replans: u32,
    /// Task-level observations folded in so far this run.
    pub(crate) observations: u64,
    /// The derated cluster planning runs against (`None` until the first
    /// re-plan ever; the allocation is kept across runs so warm passes
    /// rescale in place — [`AdaptiveState::belief`] gates on `active`).
    pub(crate) believed: Option<Cluster>,
    /// Whether the believed cluster is live for *this* run. Reset clears
    /// it without dropping the storage: a steady-state pass must rediscover
    /// the belief exactly like the warm pass did, not inherit its endpoint.
    pub(crate) active: bool,
    /// Set when an availability flip invalidates the believed cluster —
    /// the next admission rebuilds it from the new epoch base without
    /// consuming a re-plan.
    pub(crate) stale: bool,
}

impl Default for AdaptiveState {
    fn default() -> Self {
        Self {
            est: Vec::new(),
            planned: Vec::new(),
            bw_est: Ewma::new(1.0, 1.0),
            bw_planned: 1.0,
            replans: 0,
            observations: 0,
            believed: None,
            active: false,
            stale: false,
        }
    }
}

impl AdaptiveState {
    /// Rewinds for a run over `node_count` nodes: estimators at 1.0 with
    /// the configured α, unit planned levels, counters cleared. The
    /// believed cluster's allocation is kept for in-place rescaling.
    pub(crate) fn reset(&mut self, config: &AdaptiveConfig, node_count: usize) {
        self.est.clear();
        self.est
            .resize(node_count, Ewma::new(config.ewma_alpha, 1.0));
        self.planned.clear();
        self.planned.resize(node_count, 1.0);
        self.bw_est = Ewma::new(config.ewma_alpha, 1.0);
        self.bw_planned = 1.0;
        self.replans = 0;
        self.observations = 0;
        self.active = false;
        self.stale = false;
    }

    /// The believed cluster, when one is live for this run.
    pub(crate) fn belief(&self) -> Option<&Cluster> {
        if self.active {
            self.believed.as_ref()
        } else {
            None
        }
    }

    /// Folds one compute observation in: `ratio` is effective over nominal
    /// duration on `node` (clamped to ≥ 1 — drift only ever slows).
    pub(crate) fn observe_compute(&mut self, node: usize, ratio: f64) {
        if let Some(e) = self.est.get_mut(node) {
            e.observe(ratio.max(1.0));
            self.observations += 1;
        }
    }

    /// Folds one transfer observation into the interconnect estimator.
    pub(crate) fn observe_transfer(&mut self, ratio: f64) {
        self.bw_est.observe(ratio.max(1.0));
        self.observations += 1;
    }

    /// Folds a kill event on `node` in as a `kill_penalty` slowdown
    /// sample — repeated failures push the estimate out of the band and
    /// trigger a re-plan away from the node before its timeline recovers.
    pub(crate) fn observe_kill(&mut self, node: usize, config: &AdaptiveConfig) {
        if let Some(e) = self.est.get_mut(node) {
            e.observe(config.kill_penalty.max(1.0));
            self.observations += 1;
        }
    }

    /// Whether any estimate has left the hysteresis band around its
    /// planned level.
    pub(crate) fn should_replan(&self, config: &AdaptiveConfig) -> bool {
        let h = 1.0 + config.hysteresis;
        let outside = |est: f64, planned: f64| est > planned * h || est < planned / h;
        self.est
            .iter()
            .zip(&self.planned)
            .any(|(e, &p)| outside(e.value(), p))
            || outside(self.bw_est.value(), self.bw_planned)
    }

    /// Re-plans: quantises the current estimates into the planned levels
    /// (when `requantize`), then materialises the believed cluster by
    /// derating `base` — peak compute per node and the default link — by
    /// those levels. Unit levels reproduce `base` bit-for-bit, so a decay
    /// back to nominal restores the original plan-cache fingerprint.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Platform`] when the factors are rejected
    /// (cannot happen for quantised levels, which are finite and ≥ 1).
    pub(crate) fn rebuild_believed(
        &mut self,
        base: &Cluster,
        requantize: bool,
        config: &AdaptiveConfig,
    ) -> Result<(), CoreError> {
        if requantize {
            for (p, e) in self.planned.iter_mut().zip(&self.est) {
                *p = config.quantize(e.value());
            }
            self.bw_planned = config.quantize(self.bw_est.value());
        }
        match &mut self.believed {
            Some(c) => {
                // In-place rescale keeps warm passes zero-alloc; a base of
                // a different shape falls back to a full clone.
                if c.apply_rate_factors(base, &self.planned, self.bw_planned)
                    .is_err()
                {
                    c.clone_from(base);
                    c.apply_rate_factors(base, &self.planned, self.bw_planned)?;
                }
            }
            None => {
                let mut c = base.clone();
                c.apply_rate_factors(base, &self.planned, self.bw_planned)?;
                self.believed = Some(c);
            }
        }
        self.active = true;
        self.stale = false;
        Ok(())
    }
}

/// A deterministic UCB1 bandit over at most [`StrategyBandit::MAX_ARMS`]
/// strategy arms, for episode-level strategy selection in the drift
/// experiment. Rewards are "higher is better" (callers feed e.g. negated
/// p99 latency); ties break toward the lowest arm index, so identical
/// inputs replay identical pulls — no randomness anywhere.
#[derive(Debug, Clone, Copy)]
pub struct StrategyBandit {
    arms: usize,
    pulls: [u64; Self::MAX_ARMS],
    rewards: [f64; Self::MAX_ARMS],
    total: u64,
}

impl StrategyBandit {
    /// The fixed arm capacity (state is inline, no heap).
    pub const MAX_ARMS: usize = 8;

    /// A bandit over `arms` arms (clamped to `1..=MAX_ARMS`).
    pub fn new(arms: usize) -> Self {
        Self {
            arms: arms.clamp(1, Self::MAX_ARMS),
            pulls: [0; Self::MAX_ARMS],
            rewards: [0.0; Self::MAX_ARMS],
            total: 0,
        }
    }

    /// The arm to pull next: the lowest-index unplayed arm, else the arm
    /// maximising `mean + sqrt(2·ln(total)/pulls)` (ties → lowest index).
    pub fn select(&self) -> usize {
        for arm in 0..self.arms {
            if self.pulls[arm] == 0 {
                return arm;
            }
        }
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for arm in 0..self.arms {
            let mean = self.rewards[arm] / self.pulls[arm] as f64;
            let bonus = (2.0 * (self.total as f64).ln() / self.pulls[arm] as f64).sqrt();
            let score = mean + bonus;
            if score > best_score {
                best_score = score;
                best = arm;
            }
        }
        best
    }

    /// Records `reward` for a pull of `arm` (out-of-range arms are
    /// ignored).
    pub fn update(&mut self, arm: usize, reward: f64) {
        if arm < self.arms {
            self.pulls[arm] += 1;
            self.rewards[arm] += reward;
            self.total += 1;
        }
    }

    /// The arm with the best empirical mean so far (unplayed arms rank
    /// last; ties → lowest index).
    pub fn best(&self) -> usize {
        let mut best = 0usize;
        let mut best_mean = f64::NEG_INFINITY;
        for arm in 0..self.arms {
            if self.pulls[arm] == 0 {
                continue;
            }
            let mean = self.rewards[arm] / self.pulls[arm] as f64;
            if mean > best_mean {
                best_mean = mean;
                best = arm;
            }
        }
        best
    }

    /// Number of pulls recorded for `arm`.
    pub fn pulls(&self, arm: usize) -> u64 {
        if arm < self.arms {
            self.pulls[arm]
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_platform::presets;

    #[test]
    fn config_validation_rejects_bad_tunings() {
        assert!(AdaptiveConfig::default().validate().is_ok());
        for bad in [
            AdaptiveConfig {
                ewma_alpha: 0.0,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                ewma_alpha: 1.5,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                hysteresis: 0.0,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                quantum: f64::NAN,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                kill_penalty: 0.5,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                max_replans: 0,
                ..AdaptiveConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn quantisation_snaps_to_the_grid_and_never_goes_below_one() {
        let config = AdaptiveConfig::default();
        assert_eq!(config.quantize(1.0), 1.0);
        assert_eq!(config.quantize(1.1), 1.0);
        assert_eq!(config.quantize(1.2), 1.25);
        assert_eq!(config.quantize(1.9), 2.0);
        assert_eq!(config.quantize(0.3), 1.0);
    }

    #[test]
    fn hysteresis_band_gates_replans_and_believed_tracks_the_levels() {
        let config = AdaptiveConfig {
            ewma_alpha: 1.0, // estimates follow samples immediately
            ..AdaptiveConfig::default()
        };
        let base = presets::paper_cluster();
        let mut state = AdaptiveState::default();
        state.reset(&config, base.len());
        assert!(!state.should_replan(&config), "nominal estimates stay in");

        // A 2× slowdown on node 3 leaves the band; re-planning derates the
        // believed cluster and the fingerprint moves.
        state.observe_compute(3, 2.0);
        assert!(state.should_replan(&config));
        state.rebuild_believed(&base, true, &config).unwrap();
        let believed_fp = state.believed.as_ref().unwrap().fingerprint();
        assert_ne!(believed_fp, base.fingerprint());
        assert_eq!(state.planned[3], 2.0);
        assert!(!state.should_replan(&config), "band re-centres after");

        // Decay back to nominal: the next rebuild restores the base
        // fingerprint bit-for-bit (unit factors divide exactly).
        for _ in 0..64 {
            state.observe_compute(3, 1.0);
        }
        assert!(state.should_replan(&config));
        state.rebuild_believed(&base, true, &config).unwrap();
        assert_eq!(
            state.believed.as_ref().unwrap().fingerprint(),
            base.fingerprint()
        );
        assert!(state.observations >= 65);
    }

    #[test]
    fn kill_observations_push_a_node_out_of_the_band() {
        let config = AdaptiveConfig {
            ewma_alpha: 0.5,
            ..AdaptiveConfig::default()
        };
        let mut state = AdaptiveState::default();
        state.reset(&config, 4);
        state.observe_kill(2, &config);
        state.observe_kill(2, &config);
        assert!(state.should_replan(&config));
        // Out-of-range nodes are ignored, not a panic.
        state.observe_kill(99, &config);
    }

    #[test]
    fn bandit_explores_every_arm_then_exploits_deterministically() {
        let mut bandit = StrategyBandit::new(3);
        // First pulls sweep the arms in index order.
        for expect in 0..3 {
            let arm = bandit.select();
            assert_eq!(arm, expect);
            bandit.update(arm, if arm == 1 { 1.0 } else { 0.0 });
        }
        // Arm 1 dominates; repeated plays keep preferring it while the
        // bonus still forces occasional revisits of the others.
        let mut wins = [0usize; 3];
        for _ in 0..64 {
            let arm = bandit.select();
            bandit.update(arm, if arm == 1 { 1.0 } else { 0.0 });
            wins[arm] += 1;
        }
        assert!(wins[1] > wins[0] && wins[1] > wins[2]);
        assert_eq!(bandit.best(), 1);
        assert!(bandit.pulls(1) > 1);
        // Two bandits fed identical rewards replay identical choices.
        let mut a = StrategyBandit::new(2);
        let mut b = StrategyBandit::new(2);
        for i in 0..32 {
            let (x, y) = (a.select(), b.select());
            assert_eq!(x, y, "pull {i} diverged");
            a.update(x, (x == 0) as u64 as f64);
            b.update(y, (y == 0) as u64 as f64);
        }
    }
}
