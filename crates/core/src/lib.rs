//! # hidp-core
//!
//! The HiDP framework: hierarchical DNN partitioning for distributed
//! inference on heterogeneous edge clusters (DATE 2025).
//!
//! The crate implements the paper's contribution end to end:
//!
//! * the **system model** (λ, μ, ψ, Λ, β, Ψ and the availability vector) in
//!   [`SystemModel`];
//! * the **dynamic-programming partitioning search** used at both hierarchy
//!   levels in [`dp`];
//! * the **DSE agent** that picks between model- and data-wise partitioning
//!   in [`DseAgent`];
//! * the **global** and **local partitioners** ([`GlobalPartitioner`],
//!   [`LocalPartitioner`]);
//! * the **run-time scheduler FSM** of Fig. 4 in [`scheduler`];
//! * the **collaborative cluster runtime** (leader/follower message passing)
//!   in [`runtime`];
//! * the [`HidpStrategy`] that composes all of the above into executable
//!   cluster plans, plus the [`DistributedStrategy`] trait shared with the
//!   baselines and the [`Scenario`] pipeline that plans a workload and
//!   simulates it on a cluster in one call;
//! * the **parallel evaluation engine**: the sharded, in-flight-deduplicated
//!   [`PlanCache`] and the [`ParallelSweep`] runner that fans independent
//!   scenario runs across worker threads with bit-identical results.
//!
//! ```
//! use hidp_core::{DistributedStrategy, HidpStrategy, Scenario};
//! use hidp_dnn::zoo::WorkloadModel;
//! use hidp_platform::{presets, NodeIndex};
//!
//! # fn main() -> Result<(), hidp_core::CoreError> {
//! let cluster = presets::paper_cluster();
//! let hidp = HidpStrategy::new();
//! let result = Scenario::single(WorkloadModel::EfficientNetB0.graph(1))
//!     .run(&hidp, &cluster, NodeIndex(0))?;
//! println!("{}: {:.1} ms", hidp.name(), result.latency() * 1e3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod adaptive;
pub mod comm;
pub mod dp;
mod dse;
mod engine;
mod error;
mod fleet;
mod global;
mod local;
mod parallel;
mod plan_cache;
pub mod runtime;
mod scenario;
pub mod scheduler;
mod serving;
mod strategy;
mod system_model;

pub use adaptive::{AdaptiveConfig, DriftStats, StrategyBandit};
pub use dse::{Decision, DseAgent, DsePolicy};
pub use engine::{HidpStrategy, HierarchicalPlan};
pub use error::CoreError;
pub use fleet::{
    FleetConfig, FleetRequest, FleetScenario, FleetScratch, FleetSummary, RoutingPolicy,
};
pub use global::{
    chain_segments, workload_summary, GlobalAssignment, GlobalPartitioner, GlobalShare, ShareKind,
};
pub use local::{LocalAssignment, LocalPartitioner, LocalPolicy, LocalSplit};
pub use parallel::{ParallelSweep, ServingSweepJob, SweepJob};
pub use plan_cache::{PlanCache, PlanCacheStats, PlanKey, SHARD_COUNT};
pub use scenario::{Evaluation, Scenario};
pub use serving::{
    AdmissionPolicy, AdmittedBatch, FailureMode, RecoveryPolicy, RetryPolicy, RobustnessStats,
    ServingConfig, ServingEvaluation, ServingRequest, ServingScenario, ServingScratch,
    ServingSummary,
};
pub use strategy::DistributedStrategy;
pub use system_model::{Resource, SystemModel};
// Re-exported so pipeline callers can pick a trace detail, own a scratch or
// tag SLA classes without depending on hidp-sim directly.
pub use hidp_sim::serving::{LatencySummary, ServingMetrics, SlaClass};
pub use hidp_sim::{SimScratch, TraceDetail};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
