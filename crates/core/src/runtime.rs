//! The collaborative cluster runtime: an in-process enactment of Algorithm 1
//! with one thread per edge node, communicating through the typed
//! [`crate::comm`] channels.
//!
//! The leader thread walks the leader FSM (Analyze → Explore →
//! Global:Offload → Local:Map → Execute → merge), the follower threads walk
//! the reduced follower FSM, and every decision is made by the same
//! partitioners the planner uses. The runtime returns the hierarchical
//! decisions each node made plus the leader's FSM trace, and the resulting
//! plan can be handed to the simulator for timing/energy.

use crate::comm::{build_endpoints, CommEndpoint, Message};
use crate::engine::{HidpStrategy, HierarchicalPlan};
use crate::global::ShareKind;
use crate::local::LocalAssignment;
use crate::scheduler::{Role, SchedulerEvent, SchedulerFsm, SchedulerState};
use crate::system_model::SystemModel;
use crate::CoreError;
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// The outcome of running one request through the cluster runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The hierarchical plan the leader converged on.
    pub plan: HierarchicalPlan,
    /// Local decisions reported back by follower nodes, keyed by node.
    pub follower_reports: HashMap<NodeIndex, LocalAssignment>,
    /// The availability vector the leader observed.
    pub availability: Vec<bool>,
    /// The leader's FSM trace for this request.
    pub leader_trace: Vec<SchedulerState>,
}

/// The in-process cluster runtime.
#[derive(Debug)]
pub struct ClusterRuntime {
    cluster: Cluster,
    strategy: HidpStrategy,
    recv_timeout: Duration,
}

impl ClusterRuntime {
    /// Creates a runtime over `cluster` using the given HiDP configuration.
    pub fn new(cluster: Cluster, strategy: HidpStrategy) -> Self {
        Self {
            cluster,
            strategy,
            recv_timeout: Duration::from_secs(5),
        }
    }

    /// The cluster this runtime coordinates.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs a single inference request arriving at `leader` through the full
    /// leader/follower protocol.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Runtime`] when a follower thread fails or a
    /// message times out, and propagates planning errors.
    pub fn run_request(
        &self,
        graph: &DnnGraph,
        leader: NodeIndex,
    ) -> Result<RequestOutcome, CoreError> {
        let n = self.cluster.len();
        self.cluster.node(leader)?;
        let mut endpoints = build_endpoints(n);
        // Keep the leader endpoint, hand the others to follower threads.
        let leader_endpoint = endpoints.swap_remove(leader.0);

        let reports: Arc<Mutex<HashMap<NodeIndex, LocalAssignment>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let system = SystemModel::new(graph, leader);
        let mut handles = Vec::new();
        for endpoint in endpoints {
            let cluster = self.cluster.clone();
            let local = self.strategy.local;
            let system = system.clone();
            let leader_idx = leader;
            let reports = Arc::clone(&reports);
            let timeout = self.recv_timeout;
            handles.push(thread::spawn(move || -> Result<(), CoreError> {
                follower_loop(
                    endpoint, cluster, local, system, leader_idx, reports, timeout,
                )
            }));
        }

        let result = self.leader_protocol(graph, leader, &leader_endpoint, &reports);

        // Stop the followers regardless of the leader outcome.
        let _ = leader_endpoint.broadcast(Message::Shutdown);
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    return Err(CoreError::Runtime {
                        what: "a follower thread panicked".into(),
                    })
                }
            }
        }
        result
    }

    fn leader_protocol(
        &self,
        graph: &DnnGraph,
        leader: NodeIndex,
        endpoint: &CommEndpoint,
        reports: &Arc<Mutex<HashMap<NodeIndex, LocalAssignment>>>,
    ) -> Result<RequestOutcome, CoreError> {
        let request_id = 1u64;
        let mut fsm = SchedulerFsm::new(Role::Leader);
        let fsm_err = |e: crate::scheduler::InvalidTransition| CoreError::Runtime {
            what: format!("leader fsm rejected a transition: {e}"),
        };

        // Analyze: poll availability.
        endpoint
            .broadcast(Message::StatusRequest { request_id })
            .map_err(|e| CoreError::Runtime {
                what: e.to_string(),
            })?;
        let mut availability = vec![false; self.cluster.len()];
        availability[leader.0] = true;
        for _ in 0..self.cluster.len() - 1 {
            match endpoint.recv_timeout(self.recv_timeout) {
                Ok(Message::StatusReply {
                    node, available, ..
                }) => {
                    if let Some(slot) = availability.get_mut(node.0) {
                        *slot = available;
                    }
                }
                Ok(other) => {
                    return Err(CoreError::Runtime {
                        what: format!("unexpected message while collecting status: {other:?}"),
                    })
                }
                Err(e) => {
                    return Err(CoreError::Runtime {
                        what: e.to_string(),
                    })
                }
            }
        }
        fsm.handle(SchedulerEvent::RequestArrived)
            .map_err(fsm_err)?;

        // Explore: global DSE.
        let plan = self
            .strategy
            .hierarchical_plan(graph, &self.cluster, leader)?;
        fsm.handle(SchedulerEvent::GlobalDecisionReady)
            .map_err(fsm_err)?;

        // Global offload: ship remote shares.
        let mut expected_reports = 0usize;
        for share in &plan.global.shares {
            if share.node == leader {
                continue;
            }
            endpoint
                .send(
                    share.node,
                    Message::Offload {
                        request_id,
                        model: graph.name().to_string(),
                        share: share.clone(),
                    },
                )
                .map_err(|e| CoreError::Runtime {
                    what: e.to_string(),
                })?;
            expected_reports += 1;
        }
        fsm.handle(SchedulerEvent::SharesDistributed)
            .map_err(fsm_err)?;

        // Local map + execute for the leader's own share (if any).
        fsm.handle(SchedulerEvent::LocalDecisionReady)
            .map_err(fsm_err)?;
        fsm.handle(SchedulerEvent::ExecutionFinished)
            .map_err(fsm_err)?;

        // Collect follower results.
        for _ in 0..expected_reports {
            match endpoint.recv_timeout(self.recv_timeout) {
                Ok(Message::ShareResult { node, local, .. }) => {
                    reports.lock().insert(node, local);
                }
                Ok(other) => {
                    return Err(CoreError::Runtime {
                        what: format!("unexpected message while collecting results: {other:?}"),
                    })
                }
                Err(e) => {
                    return Err(CoreError::Runtime {
                        what: e.to_string(),
                    })
                }
            }
        }
        fsm.handle(SchedulerEvent::ResultsMerged).map_err(fsm_err)?;

        Ok(RequestOutcome {
            plan,
            follower_reports: reports.lock().clone(),
            availability,
            leader_trace: fsm.history().to_vec(),
        })
    }
}

fn follower_loop(
    endpoint: CommEndpoint,
    cluster: Cluster,
    local: crate::local::LocalPartitioner,
    system: SystemModel,
    leader: NodeIndex,
    reports: Arc<Mutex<HashMap<NodeIndex, LocalAssignment>>>,
    timeout: Duration,
) -> Result<(), CoreError> {
    let mut fsm = SchedulerFsm::new(Role::Follower);
    loop {
        let message = match endpoint.recv_timeout(timeout) {
            Ok(m) => m,
            Err(e) => {
                return Err(CoreError::Runtime {
                    what: format!("follower {} receive failed: {e}", endpoint.node()),
                })
            }
        };
        match message {
            Message::StatusRequest { request_id } => {
                endpoint
                    .send(
                        leader,
                        Message::StatusReply {
                            request_id,
                            node: endpoint.node(),
                            available: cluster.is_available(endpoint.node()),
                        },
                    )
                    .map_err(|e| CoreError::Runtime {
                        what: e.to_string(),
                    })?;
            }
            Message::Offload {
                request_id, share, ..
            } => {
                fsm.handle(SchedulerEvent::ShareArrived)
                    .map_err(|e| CoreError::Runtime {
                        what: e.to_string(),
                    })?;
                let local_sync = match share.kind {
                    ShareKind::DataPart { .. } => share.sync_bytes / 4,
                    ShareKind::Block { .. } => share.input_bytes / 8,
                };
                let assignment = local.partition(
                    &system,
                    &cluster,
                    endpoint.node(),
                    share.flops,
                    share.input_bytes,
                    share.output_bytes,
                    local_sync,
                )?;
                fsm.handle(SchedulerEvent::LocalDecisionReady)
                    .map_err(|e| CoreError::Runtime {
                        what: e.to_string(),
                    })?;
                fsm.handle(SchedulerEvent::ExecutionFinished)
                    .map_err(|e| CoreError::Runtime {
                        what: e.to_string(),
                    })?;
                reports.lock().insert(endpoint.node(), assignment.clone());
                endpoint
                    .send(
                        leader,
                        Message::ShareResult {
                            request_id,
                            node: endpoint.node(),
                            local: assignment,
                        },
                    )
                    .map_err(|e| CoreError::Runtime {
                        what: e.to_string(),
                    })?;
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(CoreError::Runtime {
                    what: format!("follower {} received unexpected {other:?}", endpoint.node()),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn full_protocol_round_trip_for_every_model() {
        let runtime = ClusterRuntime::new(presets::paper_cluster(), HidpStrategy::new());
        for model in [WorkloadModel::EfficientNetB0, WorkloadModel::Vgg19] {
            let graph = model.graph(1);
            let outcome = runtime.run_request(&graph, NodeIndex(0)).unwrap();
            assert_eq!(outcome.availability, vec![true; 5]);
            // Every remote share has a follower report.
            for share in &outcome.plan.global.shares {
                if share.node != NodeIndex(0) {
                    assert!(
                        outcome.follower_reports.contains_key(&share.node),
                        "{model}: missing report from {}",
                        share.node
                    );
                }
            }
            // Leader walked the full Fig. 4 cycle.
            assert_eq!(outcome.leader_trace.first(), Some(&SchedulerState::Analyze));
            assert_eq!(outcome.leader_trace.last(), Some(&SchedulerState::Analyze));
            assert!(outcome.leader_trace.contains(&SchedulerState::Explore));
            assert!(outcome.leader_trace.contains(&SchedulerState::Execute));
        }
    }

    #[test]
    fn different_leaders_coordinate_successfully() {
        let runtime = ClusterRuntime::new(presets::paper_cluster(), HidpStrategy::new());
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        for leader in [1usize, 3] {
            let outcome = runtime.run_request(&graph, NodeIndex(leader)).unwrap();
            assert!(outcome.availability[leader]);
        }
        assert!(runtime.run_request(&graph, NodeIndex(9)).is_err());
        assert_eq!(runtime.cluster().len(), 5);
    }
}
