//! The common interface all distributed-inference strategies implement, plus
//! evaluation helpers that run a strategy's plans through the cluster
//! simulator and report the metrics the paper compares (latency, energy,
//! throughput).

use crate::CoreError;
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex};
use hidp_sim::{simulate, simulate_stream, ExecutionPlan, SimReport};
use serde::{Deserialize, Serialize};

/// A distributed-inference strategy: a function from an inference request
/// (DNN graph) and a cluster to a device-level [`ExecutionPlan`].
///
/// HiDP implements this trait in [`crate::HidpStrategy`]; the baselines
/// (MoDNN, OmniBoost, DisNet, GPU-only) implement it in `hidp-baselines`.
pub trait DistributedStrategy {
    /// Short display name used in experiment tables (e.g. `"HiDP"`).
    fn name(&self) -> &str;

    /// Produces the execution plan for one inference request arriving at
    /// `leader`.
    ///
    /// # Errors
    ///
    /// Returns an error when no feasible plan exists for the given cluster.
    fn plan(
        &self,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ExecutionPlan, CoreError>;
}

/// Metrics of one simulated inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Strategy name.
    pub strategy: String,
    /// Model name.
    pub model: String,
    /// End-to-end inference latency in seconds.
    pub latency: f64,
    /// Total cluster energy over the request window, in joules.
    pub total_energy: f64,
    /// Workload-attributable (dynamic) energy in joules.
    pub dynamic_energy: f64,
    /// The simulated report (timings of every task).
    pub report: SimReport,
}

/// Metrics of a simulated request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamEvaluation {
    /// Strategy name.
    pub strategy: String,
    /// Per-request latencies in seconds (request order).
    pub latencies: Vec<f64>,
    /// Completion time of the whole stream in seconds.
    pub makespan: f64,
    /// Total cluster energy over the stream, in joules.
    pub total_energy: f64,
    /// Workload-attributable energy in joules.
    pub dynamic_energy: f64,
    /// The simulated report.
    pub report: SimReport,
}

impl StreamEvaluation {
    /// Completed inferences per `window_seconds` (the paper reports
    /// inferences per 100 s).
    pub fn throughput(&self, window_seconds: f64) -> f64 {
        hidp_sim::stats::throughput_per_window(&self.report, window_seconds)
    }
}

/// Plans and simulates a single inference request.
///
/// # Errors
///
/// Propagates planning and simulation failures.
pub fn evaluate(
    strategy: &dyn DistributedStrategy,
    graph: &DnnGraph,
    cluster: &Cluster,
    leader: NodeIndex,
) -> Result<Evaluation, CoreError> {
    let plan = strategy.plan(graph, cluster, leader)?;
    let report = simulate(&plan, cluster)?;
    let latency = report.latency(0).unwrap_or(report.makespan);
    let total_energy = report.total_energy(cluster)?;
    let dynamic_energy = report.dynamic_energy(cluster)?;
    Ok(Evaluation {
        strategy: strategy.name().to_string(),
        model: graph.name().to_string(),
        latency,
        total_energy,
        dynamic_energy,
        report,
    })
}

/// Plans and simulates a stream of requests `(arrival_seconds, graph)` that
/// share the cluster.
///
/// # Errors
///
/// Propagates planning and simulation failures; the request list must not be
/// empty.
pub fn evaluate_stream(
    strategy: &dyn DistributedStrategy,
    requests: &[(f64, DnnGraph)],
    cluster: &Cluster,
    leader: NodeIndex,
) -> Result<StreamEvaluation, CoreError> {
    if requests.is_empty() {
        return Err(CoreError::Infeasible {
            what: "request stream is empty".into(),
        });
    }
    let mut planned = Vec::with_capacity(requests.len());
    for (arrival, graph) in requests {
        planned.push((*arrival, strategy.plan(graph, cluster, leader)?));
    }
    let report = simulate_stream(&planned, cluster)?;
    let total_energy = report.total_energy(cluster)?;
    let dynamic_energy = report.dynamic_energy(cluster)?;
    Ok(StreamEvaluation {
        strategy: strategy.name().to_string(),
        latencies: report.latencies(),
        makespan: report.makespan,
        total_energy,
        dynamic_energy,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HidpStrategy;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn evaluate_produces_positive_metrics() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        let eval = evaluate(&strategy, &graph, &cluster, NodeIndex(0)).unwrap();
        assert_eq!(eval.strategy, "HiDP");
        assert_eq!(eval.model, "efficientnet_b0");
        assert!(eval.latency > 0.0);
        assert!(eval.total_energy > eval.dynamic_energy);
        assert!(eval.dynamic_energy > 0.0);
    }

    #[test]
    fn evaluate_stream_reports_one_latency_per_request() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests: Vec<(f64, _)> = vec![
            (0.0, WorkloadModel::EfficientNetB0.graph(1)),
            (0.5, WorkloadModel::InceptionV3.graph(1)),
        ];
        let eval = evaluate_stream(&strategy, &requests, &cluster, NodeIndex(0)).unwrap();
        assert_eq!(eval.latencies.len(), 2);
        assert!(eval.makespan >= eval.latencies[0]);
        assert!(eval.throughput(100.0) > 0.0);
    }

    #[test]
    fn empty_stream_is_rejected() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        assert!(evaluate_stream(&strategy, &[], &cluster, NodeIndex(0)).is_err());
    }
}
