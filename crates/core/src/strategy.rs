//! The common interface all distributed-inference strategies implement.
//!
//! Evaluation (planning a workload and simulating it on a cluster) lives in
//! [`crate::Scenario`] — strategies only turn one request into an
//! [`ExecutionPlan`].

use crate::CoreError;
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex};
use hidp_sim::ExecutionPlan;

/// A distributed-inference strategy: a function from an inference request
/// (DNN graph) and a cluster to a device-level [`ExecutionPlan`].
///
/// HiDP implements this trait in [`crate::HidpStrategy`]; the baselines
/// (MoDNN, OmniBoost, DisNet, GPU-only) implement it in `hidp-baselines`.
/// To evaluate a strategy end to end, wrap the workload in a
/// [`crate::Scenario`] and call [`crate::Scenario::run`].
///
/// Strategies must be `Send + Sync`: [`crate::ParallelSweep`] shares one
/// strategy reference across its worker threads, and every strategy in the
/// workspace is an immutable bundle of configuration (per-call state such as
/// the MCTS RNG is constructed inside `plan`), so the bounds cost nothing.
pub trait DistributedStrategy: Send + Sync {
    /// Short display name used in experiment tables (e.g. `"HiDP"`).
    fn name(&self) -> &str;

    /// A string distinguishing differently-configured instances that share a
    /// display name (e.g. ablation variants, MCTS iteration counts). It is
    /// folded into [`crate::PlanCache`] keys so such instances never serve
    /// each other's plans. The default (empty) is only correct for
    /// strategies without configuration; configurable strategies should
    /// return their config, e.g. `format!("{self:?}")` on a Debug-derived
    /// config struct.
    fn cache_config(&self) -> String {
        String::new()
    }

    /// [`DistributedStrategy::cache_config`] written into a caller-owned
    /// buffer, for hot paths that rebuild a [`crate::PlanKey`] per run (the
    /// serving loop's steady state must not allocate). Implementations must
    /// produce exactly the `cache_config` string; strategies whose config is
    /// formatted (not constant) should override this with `write!` into
    /// `out` so a sized buffer is reused instead of reallocated.
    fn write_cache_config(&self, out: &mut String) {
        out.clear();
        out.push_str(&self.cache_config());
    }

    /// Produces the execution plan for one inference request arriving at
    /// `leader`.
    ///
    /// # Errors
    ///
    /// Returns an error when no feasible plan exists for the given cluster.
    fn plan(
        &self,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ExecutionPlan, CoreError>;
}
