//! The local DNN partitioner: splits a node's share of the work across its
//! heterogeneous processors (paper §III, "Local partitioner").
//!
//! This is the tier the baselines lack: after the global partitioner hands a
//! node a block or a data slice, HiDP consults the DSE agent again — with the
//! node-local `ψ{λ, μ}` vector — to decide whether to run the share on a
//! single processor or to split it across CPU clusters and GPU.

use crate::dp::{ChainSegment, WorkloadSummary};
use crate::dse::{DseAgent, DsePolicy};
use crate::system_model::SystemModel;
use crate::CoreError;
use hidp_dnn::PartitionMode;
use hidp_platform::{Cluster, NodeIndex, ProcessorAddr};
use serde::{Deserialize, Serialize};

/// How a node schedules its share locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LocalPolicy {
    /// HiDP: consult the DSE agent over all local processors.
    #[default]
    CoreAware,
    /// Framework default: run the whole share on the GPU (or the fastest
    /// single processor when the node has no GPU). This is what the
    /// global-only baselines do.
    GpuOnly,
    /// Run on the single fastest processor for this workload.
    BestSingle,
}

/// One processor's slice of a node-local split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalSplit {
    /// The processor executing the slice.
    pub processor: ProcessorAddr,
    /// Flops assigned to the processor (including its share of the local
    /// synchronisation work).
    pub flops: u64,
    /// Fraction of the node's share.
    pub fraction: f64,
}

/// The local scheduling decision for one node's share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalAssignment {
    /// The node this assignment belongs to.
    pub node: NodeIndex,
    /// The local partitioning mode selected by the DSE agent.
    pub mode: PartitionMode,
    /// Per-processor slices (a single entry when the share is not split).
    pub splits: Vec<LocalSplit>,
    /// Latency estimated by the DSE agent, in seconds.
    pub estimated_latency: f64,
}

impl LocalAssignment {
    /// Number of processors used.
    pub fn parallelism(&self) -> usize {
        self.splits.len()
    }

    /// Total flops scheduled on the node.
    pub fn total_flops(&self) -> u64 {
        self.splits.iter().map(|s| s.flops).sum()
    }
}

/// The local partitioner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalPartitioner {
    /// The local scheduling policy.
    pub policy: LocalPolicy,
}

impl LocalPartitioner {
    /// Creates the HiDP (core-aware) local partitioner.
    pub fn hidp() -> Self {
        Self {
            policy: LocalPolicy::CoreAware,
        }
    }

    /// Creates the framework-default (GPU-only) local partitioner used by the
    /// baselines.
    pub fn gpu_only() -> Self {
        Self {
            policy: LocalPolicy::GpuOnly,
        }
    }

    /// Splits a share of `share_flops` flops (with `input_bytes` /
    /// `output_bytes` moving through the node and `sync_bytes` of local halo
    /// traffic if data-split) across the processors of `node`.
    ///
    /// `system` carries the workload's GPU affinity (from
    /// [`SystemModel::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when the node does not exist or has
    /// no processors.
    // The argument list mirrors the paper's local-DSE inputs (Eq. 6); a
    // params struct would only rename the coupling.
    #[allow(clippy::too_many_arguments)]
    pub fn partition(
        &self,
        system: &SystemModel,
        cluster: &Cluster,
        node: NodeIndex,
        share_flops: u64,
        input_bytes: u64,
        output_bytes: u64,
        sync_bytes: u64,
    ) -> Result<LocalAssignment, CoreError> {
        let resources = system.local_resources(cluster, node);
        if resources.is_empty() {
            return Err(CoreError::Infeasible {
                what: format!("node {node} has no processors"),
            });
        }
        let workload = WorkloadSummary {
            input_bytes,
            output_bytes,
            flops: share_flops,
            sync_bytes,
        };

        match self.policy {
            LocalPolicy::CoreAware => {
                // A single chain segment: local model partitioning degenerates
                // to "run on the fastest processor", local data partitioning
                // to "split across processors"; the DSE picks the faster one.
                let segments = [ChainSegment {
                    flops: share_flops,
                    boundary_bytes: output_bytes,
                }];
                let agent = DseAgent::with_policy(DsePolicy::Hybrid);
                let decision = agent.explore(&segments, &resources, workload, resources.len())?;
                let splits = match decision.mode {
                    PartitionMode::Model => {
                        let search = decision
                            .model
                            .as_ref()
                            .expect("model decision carries a model search");
                        search
                            .assignments
                            .iter()
                            .map(|&idx| LocalSplit {
                                processor: SystemModel::resource_addr(&resources[idx])
                                    .expect("local resources always name a processor"),
                                flops: share_flops,
                                fraction: 1.0,
                            })
                            .collect()
                    }
                    PartitionMode::Data => {
                        let search = decision
                            .data
                            .as_ref()
                            .expect("data decision carries a data search");
                        let sigma = search.shares.len();
                        search
                            .shares
                            .iter()
                            .map(|s| LocalSplit {
                                processor: SystemModel::resource_addr(&resources[s.resource])
                                    .expect("local resources always name a processor"),
                                flops: (share_flops as f64 * s.fraction) as u64
                                    + if sigma == 1 { 0 } else { sync_bytes / 4 },
                                fraction: s.fraction,
                            })
                            .collect()
                    }
                };
                Ok(LocalAssignment {
                    node,
                    mode: decision.mode,
                    splits,
                    estimated_latency: decision.latency,
                })
            }
            LocalPolicy::GpuOnly | LocalPolicy::BestSingle => {
                let device = cluster.node(node)?;
                let resource_idx = match self.policy {
                    LocalPolicy::GpuOnly => device
                        .gpu_index()
                        .map(|gpu| {
                            resources
                                .iter()
                                .position(|r| r.processor == Some(gpu))
                                .expect("gpu resource exists")
                        })
                        .unwrap_or_else(|| best_resource(&resources)),
                    _ => best_resource(&resources),
                };
                let resource = &resources[resource_idx];
                let latency = resource.transfer_time(input_bytes)
                    + resource.compute_time(share_flops)
                    + resource.transfer_time(output_bytes);
                Ok(LocalAssignment {
                    node,
                    mode: PartitionMode::Model,
                    splits: vec![LocalSplit {
                        processor: SystemModel::resource_addr(resource)
                            .expect("local resources always name a processor"),
                        flops: share_flops,
                        fraction: 1.0,
                    }],
                    estimated_latency: latency,
                })
            }
        }
    }
}

fn best_resource(resources: &[crate::system_model::Resource]) -> usize {
    resources
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.rate.partial_cmp(&b.1.rate).expect("rates are finite"))
        .map(|(i, _)| i)
        .expect("resources is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    fn system(model: WorkloadModel) -> SystemModel {
        SystemModel::new(&model.graph(1), NodeIndex(0))
    }

    #[test]
    fn core_aware_splits_large_shares_across_processors() {
        let cluster = presets::paper_cluster();
        let sys = system(WorkloadModel::ResNet152);
        // A 20-GFLOP share on the TX2 with modest sync traffic: splitting
        // across CPU clusters + GPU beats GPU-only.
        let assignment = LocalPartitioner::hidp()
            .partition(
                &sys,
                &cluster,
                NodeIndex(1),
                20_000_000_000,
                600_000,
                4_000,
                200_000,
            )
            .unwrap();
        assert!(assignment.parallelism() > 1);
        assert_eq!(assignment.mode, PartitionMode::Data);
        let fractions: f64 = assignment.splits.iter().map(|s| s.fraction).sum();
        assert!((fractions - 1.0).abs() < 1e-9);
        // All flops accounted for (within the sync surcharge).
        assert!(assignment.total_flops() >= 20_000_000_000);
    }

    #[test]
    fn gpu_only_uses_exactly_the_gpu() {
        let cluster = presets::paper_cluster();
        let sys = system(WorkloadModel::Vgg19);
        let assignment = LocalPartitioner::gpu_only()
            .partition(
                &sys,
                &cluster,
                NodeIndex(1),
                39_000_000_000,
                600_000,
                4_000,
                0,
            )
            .unwrap();
        assert_eq!(assignment.parallelism(), 1);
        let gpu = cluster.nodes()[1].gpu_index().unwrap();
        assert_eq!(assignment.splits[0].processor.processor, gpu);
    }

    #[test]
    fn core_aware_is_never_slower_than_gpu_only() {
        let cluster = presets::paper_cluster();
        for model in WorkloadModel::ALL {
            let sys = system(model);
            let flops = model.graph(1).total_flops();
            for node in 0..cluster.len() {
                let aware = LocalPartitioner::hidp()
                    .partition(
                        &sys,
                        &cluster,
                        NodeIndex(node),
                        flops,
                        600_000,
                        4_000,
                        300_000,
                    )
                    .unwrap();
                let gpu = LocalPartitioner::gpu_only()
                    .partition(&sys, &cluster, NodeIndex(node), flops, 600_000, 4_000, 0)
                    .unwrap();
                assert!(
                    aware.estimated_latency <= gpu.estimated_latency + 1e-9,
                    "{model} on node {node}"
                );
            }
        }
    }

    #[test]
    fn best_single_picks_cpu_on_raspberry_pi() {
        // On the Pis the CPU is the fastest processor, so BestSingle differs
        // from GpuOnly — exactly the default-framework pathology the paper
        // calls out.
        let cluster = presets::paper_cluster();
        let sys = system(WorkloadModel::Vgg19);
        let best = LocalPartitioner {
            policy: LocalPolicy::BestSingle,
        }
        .partition(
            &sys,
            &cluster,
            NodeIndex(4),
            1_000_000_000,
            600_000,
            4_000,
            0,
        )
        .unwrap();
        let gpu = LocalPartitioner::gpu_only()
            .partition(
                &sys,
                &cluster,
                NodeIndex(4),
                1_000_000_000,
                600_000,
                4_000,
                0,
            )
            .unwrap();
        assert!(best.estimated_latency < gpu.estimated_latency);
        let pi4 = &cluster.nodes()[4];
        assert!(pi4.processors[best.splits[0].processor.processor.0]
            .kind
            .is_cpu());
    }

    #[test]
    fn tiny_shares_stay_on_one_processor() {
        let cluster = presets::paper_cluster();
        let sys = system(WorkloadModel::EfficientNetB0);
        // 5 MFLOP with large sync traffic: splitting cannot pay off.
        let assignment = LocalPartitioner::hidp()
            .partition(
                &sys,
                &cluster,
                NodeIndex(0),
                5_000_000,
                10_000,
                4_000,
                50_000_000,
            )
            .unwrap();
        assert_eq!(assignment.parallelism(), 1);
    }

    #[test]
    fn unknown_node_is_infeasible() {
        let cluster = presets::paper_cluster();
        let sys = system(WorkloadModel::EfficientNetB0);
        assert!(LocalPartitioner::hidp()
            .partition(&sys, &cluster, NodeIndex(9), 1, 1, 1, 0)
            .is_err());
    }
}
