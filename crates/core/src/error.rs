use std::error::Error;
use std::fmt;

/// Error type for the HiDP core framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The DNN graph could not be partitioned as requested.
    Dnn(hidp_dnn::DnnError),
    /// A platform lookup or construction failed.
    Platform(hidp_platform::PlatformError),
    /// Plan construction or simulation failed.
    Sim(hidp_sim::SimError),
    /// No feasible decision exists (e.g. no available nodes).
    Infeasible {
        /// Description of why no decision could be made.
        what: String,
    },
    /// The cluster runtime failed (follower disconnected, channel closed, ...).
    Runtime {
        /// Description of the failure.
        what: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Dnn(e) => write!(f, "dnn error: {e}"),
            CoreError::Platform(e) => write!(f, "platform error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
            CoreError::Infeasible { what } => write!(f, "no feasible decision: {what}"),
            CoreError::Runtime { what } => write!(f, "runtime error: {what}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Dnn(e) => Some(e),
            CoreError::Platform(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hidp_dnn::DnnError> for CoreError {
    fn from(e: hidp_dnn::DnnError) -> Self {
        CoreError::Dnn(e)
    }
}

impl From<hidp_platform::PlatformError> for CoreError {
    fn from(e: hidp_platform::PlatformError) -> Self {
        CoreError::Platform(e)
    }
}

impl From<hidp_sim::SimError> for CoreError {
    fn from(e: hidp_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let e: CoreError = hidp_dnn::DnnError::UnknownNode { id: 1 }.into();
        assert!(e.source().is_some());
        let e: CoreError = hidp_platform::PlatformError::UnknownNode { index: 1 }.into();
        assert!(e.source().is_some());
        let e = CoreError::Infeasible {
            what: "no nodes".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("no nodes"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
