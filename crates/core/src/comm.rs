//! The communication module: typed message passing between the nodes of the
//! collaborative edge cluster (paper §III, "Communication Module").
//!
//! The physical system uses a POSIX client/server architecture over an
//! 80 MB/s wireless network; this reproduction uses in-process channels
//! (one mailbox per node) with the same message vocabulary, so the leader /
//! follower orchestration logic in [`crate::runtime`] is exercised end to
//! end. Transfer *times* are accounted for by the simulator, not by these
//! channels.

use crate::global::GlobalShare;
use crate::local::LocalAssignment;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hidp_platform::NodeIndex;
use std::time::Duration;

/// Messages exchanged between the leader and follower nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Leader → follower: "are you available for request `request_id`?"
    StatusRequest {
        /// The request being scheduled.
        request_id: u64,
    },
    /// Follower → leader: availability reply (paper Eq. 4).
    StatusReply {
        /// The request being scheduled.
        request_id: u64,
        /// The replying node.
        node: NodeIndex,
        /// Whether the node can accept work.
        available: bool,
    },
    /// Leader → follower: an offloaded share of the workload.
    Offload {
        /// The request being scheduled.
        request_id: u64,
        /// Name of the DNN model (for tracing).
        model: String,
        /// The share to execute.
        share: GlobalShare,
    },
    /// Follower → leader: the result of executing a share.
    ShareResult {
        /// The request being scheduled.
        request_id: u64,
        /// The reporting node.
        node: NodeIndex,
        /// The local scheduling decision the follower made.
        local: LocalAssignment,
    },
    /// Leader → follower: stop serving requests.
    Shutdown,
}

/// Error raised when a message cannot be delivered or received.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommError {
    /// Description of the failure.
    pub what: String,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "communication error: {}", self.what)
    }
}

impl std::error::Error for CommError {}

/// One node's view of the cluster network: it can send to every node and
/// receive from its own mailbox.
#[derive(Debug, Clone)]
pub struct CommEndpoint {
    node: NodeIndex,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
}

impl CommEndpoint {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeIndex {
        self.node
    }

    /// Sends a message to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError`] when the destination does not exist or its
    /// mailbox has been dropped.
    pub fn send(&self, to: NodeIndex, message: Message) -> Result<(), CommError> {
        let sender = self.senders.get(to.0).ok_or_else(|| CommError {
            what: format!("no such node {to}"),
        })?;
        sender.send(message).map_err(|_| CommError {
            what: format!("mailbox of {to} is closed"),
        })
    }

    /// Sends a message to every node except this one.
    ///
    /// # Errors
    ///
    /// Returns the first delivery failure.
    pub fn broadcast(&self, message: Message) -> Result<(), CommError> {
        for (idx, _) in self.senders.iter().enumerate() {
            if idx == self.node.0 {
                continue;
            }
            self.send(NodeIndex(idx), message.clone())?;
        }
        Ok(())
    }

    /// Receives the next message for this node, waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError`] on timeout or when all senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, CommError> {
        self.receiver.recv_timeout(timeout).map_err(|e| CommError {
            what: match e {
                RecvTimeoutError::Timeout => format!("timed out after {timeout:?}"),
                RecvTimeoutError::Disconnected => "all senders disconnected".into(),
            },
        })
    }

    /// Number of nodes reachable from this endpoint (including itself).
    pub fn cluster_size(&self) -> usize {
        self.senders.len()
    }
}

/// Creates one connected endpoint per node of an `n`-node cluster.
pub fn build_endpoints(n: usize) -> Vec<CommEndpoint> {
    let channels: Vec<(Sender<Message>, Receiver<Message>)> = (0..n).map(|_| unbounded()).collect();
    let senders: Vec<Sender<Message>> = channels.iter().map(|(s, _)| s.clone()).collect();
    channels
        .into_iter()
        .enumerate()
        .map(|(idx, (_, receiver))| CommEndpoint {
            node: NodeIndex(idx),
            senders: senders.clone(),
            receiver,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let endpoints = build_endpoints(3);
        endpoints[0]
            .send(NodeIndex(2), Message::StatusRequest { request_id: 7 })
            .unwrap();
        let msg = endpoints[2]
            .recv_timeout(Duration::from_millis(100))
            .unwrap();
        assert_eq!(msg, Message::StatusRequest { request_id: 7 });
        assert_eq!(endpoints[0].cluster_size(), 3);
        assert_eq!(endpoints[1].node(), NodeIndex(1));
    }

    #[test]
    fn broadcast_skips_the_sender() {
        let endpoints = build_endpoints(3);
        endpoints[1].broadcast(Message::Shutdown).unwrap();
        assert!(endpoints[0]
            .recv_timeout(Duration::from_millis(100))
            .is_ok());
        assert!(endpoints[2]
            .recv_timeout(Duration::from_millis(100))
            .is_ok());
        // The sender's own mailbox stays empty.
        assert!(endpoints[1]
            .recv_timeout(Duration::from_millis(20))
            .is_err());
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let endpoints = build_endpoints(2);
        let err = endpoints[0]
            .send(NodeIndex(5), Message::Shutdown)
            .unwrap_err();
        assert!(err.to_string().contains("no such node"));
    }

    #[test]
    fn timeout_is_reported() {
        let endpoints = build_endpoints(2);
        let err = endpoints[0]
            .recv_timeout(Duration::from_millis(10))
            .unwrap_err();
        assert!(err.to_string().contains("timed out"));
    }
}
