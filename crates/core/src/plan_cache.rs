//! Plan memoization for streaming workloads.
//!
//! Planning is the expensive half of evaluation — OmniBoost's 400-iteration
//! MCTS in particular — yet workload-mix streams (Fig. 7) cycle through 2–3
//! distinct models, so a 1 000-request stream needs only a handful of
//! distinct plans. [`PlanCache`] memoizes [`DistributedStrategy::plan`]
//! results keyed by everything a plan can depend on: the strategy name, the
//! graph's content fingerprint, the batch size, the leader node and the
//! cluster fingerprint (which covers the availability vector, so node
//! failures invalidate cached plans automatically).
//!
//! Every strategy in the workspace is a deterministic function of that key —
//! even the MCTS baseline reseeds its RNG per call — so a cache hit returns
//! bit-identical plans and changes no simulation result, only its cost.
//!
//! # Concurrency
//!
//! The cache is built for many threads hammering it at once (the
//! [`crate::ParallelSweep`] runner fans independent scenario runs across one
//! shared cache):
//!
//! * The table is split into [`SHARD_COUNT`] shards, each behind its own
//!   `parking_lot::RwLock`, with the shard selected from the key's stored
//!   fingerprints (no locking or hashing of the whole key to route). Warm
//!   lookups take one shard *read* lock — readers proceed in parallel, and
//!   threads working on different keys almost never touch the same shard.
//! * Misses are deduplicated in flight: the first thread to miss a key
//!   publishes a pending slot and plans outside all locks; concurrent misses
//!   on the same key find the slot and block on it instead of planning the
//!   same thing again. Exactly one planner invocation happens per distinct
//!   key, no matter how many threads race (`stats().misses` counts exactly
//!   those invocations, so `misses == len()` once all lookups finish).
//!   Once planning succeeds the entry is *promoted* in place: the pending
//!   slot is replaced by the finished `Arc<ExecutionPlan>`, so steady-state
//!   hits are a read lock, a hash probe and one reference-count increment —
//!   no slot mutex, no allocation.
//! * Hit/miss counters are relaxed atomics; [`PlanCache::plan_tracked`]
//!   additionally reports per-call hit/miss so callers can attribute
//!   lookups to themselves without racing other users of a shared cache.
//! * [`PlanCache::plan_keyed`] probes with a **borrowed** [`PlanKey`], so a
//!   per-request loop (see `Scenario::run_with_cache`) builds one key,
//!   mutates its graph fields per request and never clones the key's
//!   strings on a hit — the key is only cloned when a miss publishes it.

use crate::strategy::DistributedStrategy;
use crate::CoreError;
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex};
use hidp_sim::ExecutionPlan;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of independent lock shards. A power of two well above the core
/// counts this workspace targets: with uniformly distributed fingerprints,
/// the probability that two concurrently-active keys share a shard stays
/// low, and the per-shard `RwLock` makes same-shard *readers* free anyway.
pub const SHARD_COUNT: usize = 16;

/// Everything a [`DistributedStrategy::plan`] call can depend on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Strategy display name.
    pub strategy: String,
    /// [`DistributedStrategy::cache_config`]: distinguishes
    /// differently-configured instances sharing a display name (ablation
    /// variants, MCTS iteration counts) so they never serve each other's
    /// plans.
    pub strategy_config: String,
    /// [`DnnGraph::fingerprint`] of the request's graph.
    pub graph_fingerprint: u64,
    /// Batch size of the request (also folded into the graph fingerprint;
    /// kept explicit so keys stay debuggable).
    pub batch: usize,
    /// The node the request arrives at.
    pub leader: NodeIndex,
    /// [`Cluster::fingerprint`] of the target cluster, including its
    /// availability vector.
    pub cluster_fingerprint: u64,
}

impl PlanKey {
    /// Builds the cache key for one planning call.
    pub fn new(
        strategy: &dyn DistributedStrategy,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Self {
        Self {
            strategy: strategy.name().to_string(),
            strategy_config: strategy.cache_config(),
            graph_fingerprint: graph.fingerprint(),
            batch: graph.input_shape().batch(),
            leader,
            cluster_fingerprint: cluster.fingerprint(),
        }
    }

    /// The reusable warm-path key for one `(strategy, cluster, leader)`
    /// run: the strategy strings and cluster fingerprint are computed once,
    /// and the graph fields are zeroed for the caller's per-request loop to
    /// overwrite before each [`PlanCache::plan_keyed`] probe. This is the
    /// single definition of the hoisting `Scenario::run_with_cache`, the
    /// warm-path benches and the zero-alloc test all share.
    pub fn for_run(
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Self {
        Self {
            strategy: strategy.name().to_string(),
            strategy_config: strategy.cache_config(),
            graph_fingerprint: 0,
            batch: 0,
            leader,
            cluster_fingerprint: cluster.fingerprint(),
        }
    }

    /// The shard this key routes to. Mixes the stored content fingerprints
    /// (already high-entropy FNV-1a hashes) with the leader and batch — the
    /// cheap fields; hashing the strategy strings would cost more than the
    /// collisions they disambiguate, and same-graph-different-strategy keys
    /// sharing a shard is harmless (the shard map still keys on the full
    /// [`PlanKey`]).
    fn shard(&self) -> usize {
        let mut h = self.graph_fingerprint ^ self.cluster_fingerprint.rotate_left(32);
        h ^= (self.leader.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= (self.batch as u64).rotate_left(16);
        // Final avalanche so the low bits used for shard selection depend on
        // every input bit (splitmix64 finalizer constant).
        h = (h ^ (h >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        (h >> 33) as usize % SHARD_COUNT
    }
}

/// Hit/miss counters of a [`PlanCache`], also surfaced per evaluation on
/// [`crate::Evaluation::plan_cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCacheStats {
    /// Lookups served from the cache — including lookups that waited for a
    /// concurrent planner invocation on the same key instead of planning
    /// themselves.
    pub hits: u64,
    /// Lookups that invoked the strategy's planner. Under concurrency this
    /// counts *planner invocations*, so `misses` equals the number of
    /// distinct keys planned (plus failed attempts, which insert nothing).
    pub misses: u64,
}

impl PlanCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// One shard-map entry: a pending slot while planning is in flight, the
/// finished plan afterwards (promotion happens exactly once, by the thread
/// that planned).
#[derive(Debug)]
enum Entry {
    /// Planning is in flight; lookups wait on the slot.
    Pending(Arc<Slot>),
    /// The plan is ready; lookups clone the `Arc` under the read lock.
    Ready(Arc<ExecutionPlan>),
}

/// A slot in the cache: published while planning is in flight, filled
/// exactly once. Waiters block on the condvar instead of re-planning.
#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

#[derive(Debug)]
enum SlotState {
    /// The publishing thread is still planning.
    Planning,
    /// Planning succeeded; every lookup from now on clones this.
    Ready(Arc<ExecutionPlan>),
    /// Planning failed; waiters get the error, the slot is unpublished.
    Failed(CoreError),
}

impl Slot {
    fn pending() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Planning),
            ready: Condvar::new(),
        })
    }

    /// Blocks until the slot is filled and returns its outcome.
    fn wait(&self) -> Result<Arc<ExecutionPlan>, CoreError> {
        let mut state = self.state.lock().expect("plan slot lock");
        loop {
            match &*state {
                SlotState::Planning => {
                    state = self.ready.wait(state).expect("plan slot lock");
                }
                SlotState::Ready(plan) => return Ok(Arc::clone(plan)),
                SlotState::Failed(e) => return Err(e.clone()),
            }
        }
    }

    /// Fills the slot and wakes all waiters.
    fn fill(&self, outcome: Result<Arc<ExecutionPlan>, CoreError>) {
        let mut state = self.state.lock().expect("plan slot lock");
        *state = match outcome {
            Ok(plan) => SlotState::Ready(plan),
            Err(e) => SlotState::Failed(e),
        };
        drop(state);
        self.ready.notify_all();
    }
}

/// Removes `slot` from `shard` if it is still the published pending entry
/// for `key`. Only ever removes the caller's own slot — a retry may already
/// have published a fresh one under the same key.
fn unpublish(shard: &RwLock<HashMap<PlanKey, Entry>>, key: &PlanKey, slot: &Arc<Slot>) {
    let mut map = shard.write();
    if matches!(map.get(key), Some(Entry::Pending(s)) if Arc::ptr_eq(s, slot)) {
        map.remove(key);
    }
}

/// Unwinding insurance for the thread that published a pending slot: if it
/// panics inside the strategy's planner, `Drop` fills the slot with an
/// error (releasing every waiter — they must never sleep on a slot nobody
/// will fill) and unpublishes it so the key can be re-planned. The happy
/// and error paths [`PendingGuard::defuse`] the guard and publish their own
/// outcome instead.
struct PendingGuard<'a> {
    shard: &'a RwLock<HashMap<PlanKey, Entry>>,
    pending: Option<(PlanKey, Arc<Slot>)>,
}

impl PendingGuard<'_> {
    fn defuse(mut self) -> (PlanKey, Arc<Slot>) {
        self.pending.take().expect("guard is defused at most once")
    }
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if let Some((key, slot)) = self.pending.take() {
            slot.fill(Err(CoreError::Runtime {
                what: format!(
                    "planner panicked while planning `{}` for graph {:#x}",
                    key.strategy, key.graph_fingerprint
                ),
            }));
            unpublish(self.shard, &key, &slot);
        }
    }
}

/// A memoization table for strategy planning, shareable across scenarios and
/// threads: lookups route to one of [`SHARD_COUNT`] reader-writer-locked
/// shards, warm lookups only ever take a shard *read* lock, and concurrent
/// misses on the same key plan exactly once (see the module docs).
#[derive(Debug, Default)]
pub struct PlanCache {
    shards: [RwLock<HashMap<PlanKey, Entry>>; SHARD_COUNT],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached plan for `(strategy, graph, cluster, leader)`,
    /// planning and inserting it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates planning failures (nothing is inserted in that case).
    pub fn plan(
        &self,
        strategy: &dyn DistributedStrategy,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<Arc<ExecutionPlan>, CoreError> {
        self.plan_tracked(strategy, graph, cluster, leader)
            .map(|(plan, _)| plan)
    }

    /// [`PlanCache::plan`] plus whether the lookup hit, so callers (e.g.
    /// [`crate::Scenario::run_with_cache`]) can attribute hits/misses to
    /// themselves without racing other users of a shared cache. A lookup
    /// that waited for another thread's in-flight planning of the same key
    /// reports a hit: it was served without invoking the planner.
    pub fn plan_tracked(
        &self,
        strategy: &dyn DistributedStrategy,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<(Arc<ExecutionPlan>, bool), CoreError> {
        self.plan_keyed(
            &PlanKey::new(strategy, graph, cluster, leader),
            strategy,
            graph,
            cluster,
            leader,
        )
    }

    /// Lookup with a caller-built, **borrowed** key, for hot loops that
    /// hoist the loop-invariant key parts (cluster fingerprint, strategy
    /// strings) out of a per-request loop instead of recomputing them each
    /// lookup: build one [`PlanKey`], mutate its
    /// [`graph_fingerprint`](PlanKey::graph_fingerprint) /
    /// [`batch`](PlanKey::batch) fields per request, and pass it by
    /// reference. A hit never clones the key (or anything else beyond the
    /// returned `Arc`); the key is cloned exactly once per distinct key, by
    /// the miss that publishes it. The caller must pass the same
    /// `(strategy, graph, cluster, leader)` the key was built from.
    pub fn plan_keyed(
        &self,
        key: &PlanKey,
        strategy: &dyn DistributedStrategy,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<(Arc<ExecutionPlan>, bool), CoreError> {
        let shard = &self.shards[key.shard()];

        // Warm path: a read lock, a hash probe and an `Arc` bump for a
        // promoted entry. Concurrent readers do not block each other, and
        // writers only hold this lock to publish, promote or unpublish an
        // entry — never while planning.
        enum Found {
            Ready(Arc<ExecutionPlan>),
            Wait(Arc<Slot>),
            Missing,
        }
        let found = match shard.read().get(key) {
            Some(Entry::Ready(plan)) => Found::Ready(Arc::clone(plan)),
            Some(Entry::Pending(slot)) => Found::Wait(Arc::clone(slot)),
            None => Found::Missing,
        };
        match found {
            Found::Ready(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((plan, true));
            }
            Found::Wait(slot) => {
                let plan = slot.wait()?;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((plan, true));
            }
            Found::Missing => {}
        }

        // Miss: publish a pending slot under the write lock, re-checking in
        // case another thread published (or even finished) between our read
        // and write.
        enum Claim {
            Hit(Arc<ExecutionPlan>),
            Wait(Arc<Slot>),
            Plan(Arc<Slot>),
        }
        let claim = {
            let mut map = shard.write();
            match map.get(key) {
                Some(Entry::Ready(plan)) => Claim::Hit(Arc::clone(plan)),
                Some(Entry::Pending(slot)) => Claim::Wait(Arc::clone(slot)),
                None => {
                    let slot = Slot::pending();
                    map.insert(key.clone(), Entry::Pending(Arc::clone(&slot)));
                    Claim::Plan(slot)
                }
            }
        };
        let slot = match claim {
            Claim::Hit(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((plan, true));
            }
            Claim::Wait(slot) => {
                // Lost the publish race: wait on the winner's slot like a hit.
                let plan = slot.wait()?;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((plan, true));
            }
            Claim::Plan(slot) => slot,
        };

        // This thread owns the slot: plan outside every lock (planning can
        // take milliseconds — MCTS), then publish the outcome. The guard
        // covers unwinding: if `strategy.plan` panics, the slot must still
        // be filled (waiters would otherwise sleep on the condvar forever)
        // and unpublished — the panic then propagates normally on this
        // thread while waiters get an error.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let guard = PendingGuard {
            shard,
            pending: Some((key.clone(), Arc::clone(&slot))),
        };
        let outcome = strategy.plan(graph, cluster, leader);
        match outcome {
            Ok(mut plan) => {
                let (key, slot) = guard.defuse();
                // Stamp the launch batch so the engine's sublinear batch cost
                // model sees how many requests this plan amortises. Strategies
                // stay batch-agnostic; the cache is the one place every fresh
                // plan passes through.
                plan.set_batch(graph.input_shape().batch());
                let plan = Arc::new(plan);
                slot.fill(Ok(Arc::clone(&plan)));
                // Promote the entry in place so every later hit is served
                // straight from the map — no slot mutex on the warm path.
                // Only this thread's own pending slot is replaced; a
                // concurrent unpublish + republish cycle keeps its entry.
                let mut map = shard.write();
                if let Some(entry) = map.get_mut(&key) {
                    if matches!(entry, Entry::Pending(s) if Arc::ptr_eq(s, &slot)) {
                        *entry = Entry::Ready(Arc::clone(&plan));
                    }
                }
                drop(map);
                Ok((plan, false))
            }
            Err(e) => {
                let (key, slot) = guard.defuse();
                slot.fill(Err(e.clone()));
                // Unpublish so the failure is not memoized (matching the
                // pre-sharding behaviour: nothing is inserted on error).
                unpublish(shard, &key, &slot);
                Err(e)
            }
        }
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct plans currently cached (including slots whose
    /// planning is still in flight).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached plans and resets the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HidpStrategy;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::EfficientNetB0.graph(1);

        let first = cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats(), PlanCacheStats { hits: 0, misses: 1 });
        let second = cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 1 });
        // The hit returns the very same plan.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_models_leaders_and_strategies_get_distinct_entries() {
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let b0 = WorkloadModel::EfficientNetB0.graph(1);
        let inception = WorkloadModel::InceptionV3.graph(1);

        cache.plan(&strategy, &b0, &cluster, NodeIndex(1)).unwrap();
        cache
            .plan(&strategy, &inception, &cluster, NodeIndex(1))
            .unwrap();
        cache.plan(&strategy, &b0, &cluster, NodeIndex(0)).unwrap();
        // Batch changes the graph fingerprint too.
        cache
            .plan(
                &strategy,
                &b0.with_batch(2).unwrap(),
                &cluster,
                NodeIndex(1),
            )
            .unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn same_name_different_config_gets_distinct_entries() {
        // Ablation variants share the "HiDP" display name but plan
        // differently; cache_config keeps their keys apart.
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        let full = HidpStrategy::new();
        let model_only = HidpStrategy {
            global: crate::GlobalPartitioner {
                dse: crate::DseAgent::with_policy(crate::DsePolicy::ModelOnly),
                ..crate::GlobalPartitioner::hidp()
            },
            local: crate::LocalPartitioner::hidp(),
        };
        assert_eq!(
            crate::strategy::DistributedStrategy::name(&full),
            crate::strategy::DistributedStrategy::name(&model_only)
        );
        cache.plan(&full, &graph, &cluster, NodeIndex(1)).unwrap();
        cache
            .plan(&model_only, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats(), PlanCacheStats { hits: 0, misses: 2 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn availability_change_invalidates_by_key() {
        let cache = PlanCache::new();
        let mut cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::InceptionV3.graph(1);

        cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        // A node drops out: the cluster fingerprint changes, so the stale
        // plan (which may target the dead node) is not reused.
        cluster.set_available(NodeIndex(3), false).unwrap();
        cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        // The node comes back: the original entry applies again.
        cluster.set_available(NodeIndex(3), true).unwrap();
        cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn clear_resets_plans_and_stats() {
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), PlanCacheStats::default());
    }

    #[test]
    fn cached_plans_are_bit_identical_to_fresh_ones() {
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::ResNet152.graph(1);
        let cached = cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        let fresh =
            crate::strategy::DistributedStrategy::plan(&strategy, &graph, &cluster, NodeIndex(1))
                .unwrap();
        assert_eq!(*cached.as_ref(), fresh);
    }

    /// Delegates to HiDP but stalls inside `plan` long enough that
    /// concurrent misses on the same key reliably overlap, and counts how
    /// often the planner actually ran.
    struct SlowStrategy {
        inner: HidpStrategy,
        invocations: AtomicUsize,
    }

    impl DistributedStrategy for SlowStrategy {
        fn name(&self) -> &str {
            "slow"
        }

        fn plan(
            &self,
            graph: &DnnGraph,
            cluster: &Cluster,
            leader: NodeIndex,
        ) -> Result<ExecutionPlan, CoreError> {
            self.invocations.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(30));
            self.inner.plan(graph, cluster, leader)
        }
    }

    #[test]
    fn concurrent_misses_on_one_key_plan_exactly_once() {
        const THREADS: usize = 8;
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = SlowStrategy {
            inner: HidpStrategy::new(),
            invocations: AtomicUsize::new(0),
        };
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        let barrier = Barrier::new(THREADS);

        let plans: Vec<Arc<ExecutionPlan>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|_| {
                        barrier.wait();
                        cache
                            .plan(&strategy, &graph, &cluster, NodeIndex(1))
                            .unwrap()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        })
        .expect("scope completes");

        // In-flight deduplication: one planner invocation, one entry, and
        // every thread got the same Arc.
        assert_eq!(strategy.invocations.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        for plan in &plans[1..] {
            assert!(Arc::ptr_eq(&plans[0], plan));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one miss (the planner)");
        assert_eq!(stats.hits, THREADS as u64 - 1, "everyone else waited");
        assert_eq!(stats.lookups(), THREADS as u64);
    }

    /// Fails planning after a stall, to exercise error propagation to
    /// in-flight waiters and the unpublish-on-failure path.
    struct FailingStrategy;

    impl DistributedStrategy for FailingStrategy {
        fn name(&self) -> &str {
            "failing"
        }

        fn plan(
            &self,
            _graph: &DnnGraph,
            _cluster: &Cluster,
            _leader: NodeIndex,
        ) -> Result<ExecutionPlan, CoreError> {
            std::thread::sleep(std::time::Duration::from_millis(10));
            Err(CoreError::Infeasible {
                what: "always fails".into(),
            })
        }
    }

    #[test]
    fn planning_failures_reach_waiters_and_are_not_memoized() {
        const THREADS: usize = 4;
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        let barrier = Barrier::new(THREADS);

        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|_| {
                        barrier.wait();
                        cache.plan(&FailingStrategy, &graph, &cluster, NodeIndex(1))
                    })
                })
                .collect();
            for h in handles {
                assert!(h.join().expect("no panic").is_err());
            }
        })
        .expect("scope completes");

        // The failure was not memoized; a later lookup re-plans (and fails
        // again, still inserting nothing).
        assert!(cache.is_empty());
        assert!(cache
            .plan(&FailingStrategy, &graph, &cluster, NodeIndex(1))
            .is_err());
        assert!(cache.is_empty());
    }

    /// Panics on the first `plan` call, delegates to HiDP afterwards — to
    /// prove a panicking planner neither strands its waiters on the condvar
    /// nor poisons the key for later lookups.
    struct PanickingStrategy {
        inner: HidpStrategy,
        panicked: std::sync::atomic::AtomicBool,
    }

    impl DistributedStrategy for PanickingStrategy {
        fn name(&self) -> &str {
            "panicking"
        }

        fn plan(
            &self,
            graph: &DnnGraph,
            cluster: &Cluster,
            leader: NodeIndex,
        ) -> Result<ExecutionPlan, CoreError> {
            if !self.panicked.swap(true, Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(30));
                panic!("injected planner panic");
            }
            self.inner.plan(graph, cluster, leader)
        }
    }

    #[test]
    fn planner_panic_releases_waiters_and_unpublishes_the_slot() {
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = PanickingStrategy {
            inner: HidpStrategy::new(),
            panicked: std::sync::atomic::AtomicBool::new(false),
        };
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        let barrier = Barrier::new(2);

        let waiter_outcome = crossbeam::thread::scope(|s| {
            let planner = s.spawn(|_| {
                barrier.wait();
                // This thread wins the publish race (the waiter sleeps) and
                // panics mid-plan; join() surfaces the panic as Err.
                cache.plan(&strategy, &graph, &cluster, NodeIndex(1))
            });
            let waiter = s.spawn(|_| {
                barrier.wait();
                std::thread::sleep(std::time::Duration::from_millis(10));
                cache.plan(&strategy, &graph, &cluster, NodeIndex(1))
            });
            assert!(planner.join().is_err(), "planner thread must panic");
            waiter.join().expect("waiter must not hang or panic")
        })
        .expect("scope completes");

        // The waiter either observed the guard's error or re-planned after
        // the unpublish (second call succeeds); it must never deadlock.
        match waiter_outcome {
            Err(CoreError::Runtime { what }) => assert!(what.contains("panicked")),
            Ok(_) => {}
            Err(other) => panic!("unexpected waiter error: {other}"),
        }
        // The key is not poisoned: a fresh lookup plans successfully.
        let plan = cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .expect("key is re-plannable after the panic");
        assert!(!plan.is_empty());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_routing_is_deterministic_and_in_range() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        for model in WorkloadModel::ALL {
            let graph = model.graph(1);
            let key = PlanKey::new(&strategy, &graph, &cluster, NodeIndex(1));
            assert!(key.shard() < SHARD_COUNT);
            assert_eq!(key.shard(), key.clone().shard());
        }
    }
}
