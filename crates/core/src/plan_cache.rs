//! Plan memoization for streaming workloads.
//!
//! Planning is the expensive half of evaluation — OmniBoost's 400-iteration
//! MCTS in particular — yet workload-mix streams (Fig. 7) cycle through 2–3
//! distinct models, so a 1 000-request stream needs only a handful of
//! distinct plans. [`PlanCache`] memoizes [`DistributedStrategy::plan`]
//! results keyed by everything a plan can depend on: the strategy name, the
//! graph's content fingerprint, the batch size, the leader node and the
//! cluster fingerprint (which covers the availability vector, so node
//! failures invalidate cached plans automatically).
//!
//! Every strategy in the workspace is a deterministic function of that key —
//! even the MCTS baseline reseeds its RNG per call — so a cache hit returns
//! bit-identical plans and changes no simulation result, only its cost.

use crate::strategy::DistributedStrategy;
use crate::CoreError;
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex};
use hidp_sim::ExecutionPlan;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Everything a [`DistributedStrategy::plan`] call can depend on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Strategy display name.
    pub strategy: String,
    /// [`DistributedStrategy::cache_config`]: distinguishes
    /// differently-configured instances sharing a display name (ablation
    /// variants, MCTS iteration counts) so they never serve each other's
    /// plans.
    pub strategy_config: String,
    /// [`DnnGraph::fingerprint`] of the request's graph.
    pub graph_fingerprint: u64,
    /// Batch size of the request (also folded into the graph fingerprint;
    /// kept explicit so keys stay debuggable).
    pub batch: usize,
    /// The node the request arrives at.
    pub leader: NodeIndex,
    /// [`Cluster::fingerprint`] of the target cluster, including its
    /// availability vector.
    pub cluster_fingerprint: u64,
}

impl PlanKey {
    /// Builds the cache key for one planning call.
    pub fn new(
        strategy: &dyn DistributedStrategy,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Self {
        Self {
            strategy: strategy.name().to_string(),
            strategy_config: strategy.cache_config(),
            graph_fingerprint: graph.fingerprint(),
            batch: graph.input_shape().batch(),
            leader,
            cluster_fingerprint: cluster.fingerprint(),
        }
    }
}

/// Hit/miss counters of a [`PlanCache`], also surfaced per evaluation on
/// [`crate::Evaluation::plan_cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to invoke the strategy's planner.
    pub misses: u64,
}

impl PlanCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    plans: HashMap<PlanKey, Arc<ExecutionPlan>>,
    stats: PlanCacheStats,
}

/// A memoization table for strategy planning, shareable across scenarios
/// (and threads: all state sits behind a mutex).
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<CacheInner>,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached plan for `(strategy, graph, cluster, leader)`,
    /// planning and inserting it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates planning failures (nothing is inserted in that case).
    pub fn plan(
        &self,
        strategy: &dyn DistributedStrategy,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<Arc<ExecutionPlan>, CoreError> {
        self.plan_tracked(strategy, graph, cluster, leader)
            .map(|(plan, _)| plan)
    }

    /// [`PlanCache::plan`] plus whether the lookup hit, so callers (e.g.
    /// [`crate::Scenario::run_with_cache`]) can attribute hits/misses to
    /// themselves without racing other users of a shared cache.
    pub fn plan_tracked(
        &self,
        strategy: &dyn DistributedStrategy,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<(Arc<ExecutionPlan>, bool), CoreError> {
        self.plan_keyed(
            PlanKey::new(strategy, graph, cluster, leader),
            strategy,
            graph,
            cluster,
            leader,
        )
    }

    /// Lookup with a caller-built key, for hot loops that hoist the
    /// loop-invariant key parts (cluster fingerprint, strategy strings) out
    /// of a per-request loop instead of recomputing them each lookup. The
    /// caller must pass the same `(strategy, graph, cluster, leader)` the
    /// key was built from.
    pub(crate) fn plan_keyed(
        &self,
        key: PlanKey,
        strategy: &dyn DistributedStrategy,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<(Arc<ExecutionPlan>, bool), CoreError> {
        {
            let mut inner = self.inner.lock().expect("plan cache lock");
            if let Some(plan) = inner.plans.get(&key) {
                let plan = Arc::clone(plan);
                inner.stats.hits += 1;
                return Ok((plan, true));
            }
            inner.stats.misses += 1;
        }
        // Plan outside the lock: planning can take milliseconds (MCTS), and
        // strategies are deterministic, so a concurrent duplicate plan for
        // the same key is wasted work but not an inconsistency.
        let plan = Arc::new(strategy.plan(graph, cluster, leader)?);
        let mut inner = self.inner.lock().expect("plan cache lock");
        let entry = inner.plans.entry(key).or_insert_with(|| Arc::clone(&plan));
        Ok((Arc::clone(entry), false))
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().expect("plan cache lock").stats
    }

    /// Number of distinct plans currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache lock").plans.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached plans and resets the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("plan cache lock");
        inner.plans.clear();
        inner.stats = PlanCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HidpStrategy;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::EfficientNetB0.graph(1);

        let first = cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats(), PlanCacheStats { hits: 0, misses: 1 });
        let second = cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 1 });
        // The hit returns the very same plan.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_models_leaders_and_strategies_get_distinct_entries() {
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let b0 = WorkloadModel::EfficientNetB0.graph(1);
        let inception = WorkloadModel::InceptionV3.graph(1);

        cache.plan(&strategy, &b0, &cluster, NodeIndex(1)).unwrap();
        cache
            .plan(&strategy, &inception, &cluster, NodeIndex(1))
            .unwrap();
        cache.plan(&strategy, &b0, &cluster, NodeIndex(0)).unwrap();
        // Batch changes the graph fingerprint too.
        cache
            .plan(
                &strategy,
                &b0.with_batch(2).unwrap(),
                &cluster,
                NodeIndex(1),
            )
            .unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn same_name_different_config_gets_distinct_entries() {
        // Ablation variants share the "HiDP" display name but plan
        // differently; cache_config keeps their keys apart.
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        let full = HidpStrategy::new();
        let model_only = HidpStrategy {
            global: crate::GlobalPartitioner {
                dse: crate::DseAgent::with_policy(crate::DsePolicy::ModelOnly),
                ..crate::GlobalPartitioner::hidp()
            },
            local: crate::LocalPartitioner::hidp(),
        };
        assert_eq!(
            crate::strategy::DistributedStrategy::name(&full),
            crate::strategy::DistributedStrategy::name(&model_only)
        );
        cache.plan(&full, &graph, &cluster, NodeIndex(1)).unwrap();
        cache
            .plan(&model_only, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats(), PlanCacheStats { hits: 0, misses: 2 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn availability_change_invalidates_by_key() {
        let cache = PlanCache::new();
        let mut cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::InceptionV3.graph(1);

        cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        // A node drops out: the cluster fingerprint changes, so the stale
        // plan (which may target the dead node) is not reused.
        cluster.set_available(NodeIndex(3), false).unwrap();
        cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        // The node comes back: the original entry applies again.
        cluster.set_available(NodeIndex(3), true).unwrap();
        cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn clear_resets_plans_and_stats() {
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), PlanCacheStats::default());
    }

    #[test]
    fn cached_plans_are_bit_identical_to_fresh_ones() {
        let cache = PlanCache::new();
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::ResNet152.graph(1);
        let cached = cache
            .plan(&strategy, &graph, &cluster, NodeIndex(1))
            .unwrap();
        let fresh =
            crate::strategy::DistributedStrategy::plan(&strategy, &graph, &cluster, NodeIndex(1))
                .unwrap();
        assert_eq!(*cached.as_ref(), fresh);
    }
}
