//! The HiDP strategy: hierarchical (global → local) partitioning compiled
//! into an executable cluster plan.
//!
//! This is the end-to-end composition of the paper's Algorithm 1:
//!
//! 1. the **global partitioner** consults the DSE agent over the cluster-level
//!    `Ψ{Λ, β}` vector and selects the partitioning mode and per-node shares;
//! 2. for every share, the **local partitioner** consults the DSE agent again
//!    over the node-local `ψ{λ, μ}` vector and splits the share across the
//!    node's CPU clusters and GPU;
//! 3. the resulting task graph (input transfers, per-processor compute tasks,
//!    result returns, final merge) is emitted as an [`ExecutionPlan`] for the
//!    cluster simulator.

use crate::global::{GlobalAssignment, GlobalPartitioner, ShareKind};
use crate::local::{LocalAssignment, LocalPartitioner};
use crate::strategy::DistributedStrategy;
use crate::system_model::SystemModel;
use crate::CoreError;
use hidp_dnn::{DnnGraph, PartitionMode};
use hidp_platform::{Cluster, NodeIndex, ProcessorAddr, ProcessorIndex};
use hidp_sim::{ExecutionPlan, TaskId};
use serde::{Deserialize, Serialize};

/// Flops charged on the leader for merging `bytes` of partial results.
fn merge_flops(bytes: u64) -> u64 {
    // One multiply-add per merged element.
    (bytes / 4) * 2
}

/// A fully resolved hierarchical plan (kept for inspection and tracing; the
/// simulator consumes the flattened [`ExecutionPlan`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalPlan {
    /// The global (cluster-level) assignment.
    pub global: GlobalAssignment,
    /// The local (node-level) assignment for every share, in share order.
    pub locals: Vec<LocalAssignment>,
}

/// The HiDP distributed-inference strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HidpStrategy {
    /// Global partitioner configuration.
    pub global: GlobalPartitioner,
    /// Local partitioner configuration.
    pub local: LocalPartitioner,
}

impl HidpStrategy {
    /// Creates the canonical HiDP strategy (core-aware at both tiers).
    pub fn new() -> Self {
        Self {
            global: GlobalPartitioner::hidp(),
            local: LocalPartitioner::hidp(),
        }
    }

    /// An ablation variant: hierarchical planning with the local tier
    /// disabled (framework-default GPU execution on every node).
    pub fn without_local_tier() -> Self {
        Self {
            global: GlobalPartitioner::hidp(),
            local: LocalPartitioner::gpu_only(),
        }
    }

    /// Computes the hierarchical plan (global + per-share local decisions)
    /// without lowering it to an execution plan.
    ///
    /// # Errors
    ///
    /// Returns an error when the cluster has no available nodes or a share
    /// cannot be scheduled locally.
    pub fn hierarchical_plan(
        &self,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<HierarchicalPlan, CoreError> {
        let system = SystemModel::new(graph, leader);
        let global = self.global.partition(graph, cluster, leader)?;
        let mut locals = Vec::with_capacity(global.shares.len());
        for share in &global.shares {
            // Local halo traffic moves through the memory system; it is much
            // smaller than the global sync volume. Scale by the share size.
            let local_sync = match share.kind {
                ShareKind::DataPart { .. } => share.sync_bytes / 4,
                ShareKind::Block { .. } => share.input_bytes / 8,
            };
            locals.push(self.local.partition(
                &system,
                cluster,
                share.node,
                share.flops,
                share.input_bytes,
                share.output_bytes,
                local_sync,
            )?);
        }
        Ok(HierarchicalPlan { global, locals })
    }

    /// Lowers a hierarchical plan to the task graph the simulator executes.
    ///
    /// `gpu_affinity` is the workload's flops-weighted GPU affinity; the
    /// simulator uses it to derive each processor's effective rate, exactly
    /// as the planner did.
    pub fn lower(
        &self,
        plan: &HierarchicalPlan,
        cluster: &Cluster,
        leader: NodeIndex,
        gpu_affinity: f64,
    ) -> ExecutionPlan {
        let mut exec = ExecutionPlan::new();
        let leader_cpu = leader_anchor(cluster, leader);
        match plan.global.mode {
            PartitionMode::Data => {
                let mut return_tasks: Vec<TaskId> = Vec::new();
                let mut returned_bytes = 0u64;
                for (share, local) in plan.global.shares.iter().zip(plan.locals.iter()) {
                    let input = exec.add_transfer(
                        format!("scatter->{}", node_name(cluster, share.node)),
                        leader,
                        share.node,
                        share.input_bytes,
                        &[],
                    );
                    let computes = add_local_computes(
                        &mut exec,
                        cluster,
                        share.node,
                        local,
                        &[input],
                        gpu_affinity,
                    );
                    let back = exec.add_transfer(
                        format!("gather<-{}", node_name(cluster, share.node)),
                        share.node,
                        leader,
                        share.output_bytes + share.sync_bytes,
                        &computes,
                    );
                    returned_bytes += share.output_bytes;
                    return_tasks.push(back);
                }
                exec.add_compute(
                    "merge@leader",
                    leader_cpu,
                    merge_flops(returned_bytes),
                    0.5,
                    &return_tasks,
                );
            }
            PartitionMode::Model => {
                let mut prev_tasks: Vec<TaskId> = Vec::new();
                let mut prev_node = leader;
                for (share, local) in plan.global.shares.iter().zip(plan.locals.iter()) {
                    let input = exec.add_transfer(
                        format!(
                            "activations {}->{}",
                            node_name(cluster, prev_node),
                            node_name(cluster, share.node)
                        ),
                        prev_node,
                        share.node,
                        share.input_bytes,
                        &prev_tasks,
                    );
                    let computes = add_local_computes(
                        &mut exec,
                        cluster,
                        share.node,
                        local,
                        &[input],
                        gpu_affinity,
                    );
                    prev_tasks = computes;
                    prev_node = share.node;
                }
                let last_share = plan
                    .global
                    .shares
                    .last()
                    .expect("global assignment always has at least one share");
                let back = exec.add_transfer(
                    format!("result {}->leader", node_name(cluster, prev_node)),
                    prev_node,
                    leader,
                    last_share.output_bytes,
                    &prev_tasks,
                );
                exec.add_compute(
                    "report@leader",
                    leader_cpu,
                    merge_flops(last_share.output_bytes),
                    0.5,
                    &[back],
                );
            }
        }
        exec
    }
}

fn node_name(cluster: &Cluster, node: NodeIndex) -> String {
    cluster
        .node(node)
        .map(|n| n.name.clone())
        .unwrap_or_else(|_| node.to_string())
}

/// The processor used for coordination work on the leader (its first CPU
/// cluster, falling back to processor 0).
fn leader_anchor(cluster: &Cluster, leader: NodeIndex) -> ProcessorAddr {
    let processor = cluster
        .node(leader)
        .ok()
        .and_then(|n| n.cpu_indices().first().copied())
        .unwrap_or(ProcessorIndex(0));
    ProcessorAddr {
        node: leader,
        processor,
    }
}

/// Adds one compute task per local split and returns their ids. The
/// workload's GPU affinity is attached to every compute task so the simulator
/// derives the same effective processor rates the planner used.
fn add_local_computes(
    exec: &mut ExecutionPlan,
    cluster: &Cluster,
    node: NodeIndex,
    local: &LocalAssignment,
    deps: &[TaskId],
    gpu_affinity: f64,
) -> Vec<TaskId> {
    local
        .splits
        .iter()
        .map(|split| {
            let name = cluster
                .processor(split.processor)
                .map(|p| format!("{}@{}", p.name, node_name(cluster, node)))
                .unwrap_or_else(|_| format!("compute@{node}"));
            exec.add_compute(name, split.processor, split.flops, gpu_affinity, deps)
        })
        .collect()
}

impl DistributedStrategy for HidpStrategy {
    fn name(&self) -> &str {
        if matches!(self.local.policy, crate::local::LocalPolicy::CoreAware) {
            "HiDP"
        } else {
            "HiDP-global-only"
        }
    }

    fn cache_config(&self) -> String {
        // Ablation variants (DSE policy, local tier) share display names but
        // plan differently; the full config keeps their cache keys apart.
        format!("{self:?}")
    }

    fn write_cache_config(&self, out: &mut String) {
        // Same string as `cache_config`, formatted straight into the reused
        // buffer so the serving loop's per-run key refresh stays
        // allocation-free once the buffer is sized.
        use std::fmt::Write;
        out.clear();
        write!(out, "{self:?}").expect("formatting into a String cannot fail");
    }

    fn plan(
        &self,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ExecutionPlan, CoreError> {
        let hierarchical = self.hierarchical_plan(graph, cluster, leader)?;
        let exec = self.lower(&hierarchical, cluster, leader, graph.gpu_affinity());
        exec.validate()?;
        Ok(exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;
    use hidp_sim::simulate;

    #[test]
    fn plans_are_valid_and_simulatable_for_all_models() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        for model in WorkloadModel::ALL {
            let graph = model.graph(1);
            let plan = strategy.plan(&graph, &cluster, NodeIndex(0)).unwrap();
            assert!(plan.validate().is_ok());
            let report = simulate(&plan, &cluster).unwrap();
            assert!(report.makespan > 0.0, "{model}");
            // All the model's flops are scheduled somewhere (merge/report
            // tasks add a little extra).
            assert!(plan.total_flops() >= graph.total_flops(), "{model}");
        }
    }

    #[test]
    fn write_cache_config_matches_cache_config() {
        // The buffered variant must produce byte-identical cache keys, or
        // the serving loop and the static pipeline would miss each other's
        // cached plans.
        let strategy = HidpStrategy::new();
        let mut buffer = String::from("stale contents");
        strategy.write_cache_config(&mut buffer);
        assert_eq!(buffer, strategy.cache_config());
    }

    #[test]
    fn hierarchical_plan_has_one_local_decision_per_share() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::ResNet152.graph(1);
        let plan = strategy
            .hierarchical_plan(&graph, &cluster, NodeIndex(0))
            .unwrap();
        assert_eq!(plan.global.shares.len(), plan.locals.len());
        for (share, local) in plan.global.shares.iter().zip(plan.locals.iter()) {
            assert_eq!(share.node, local.node);
            assert!(local.total_flops() >= share.flops);
        }
    }

    #[test]
    fn hidp_beats_its_global_only_ablation() {
        let cluster = presets::paper_cluster();
        let hidp = HidpStrategy::new();
        let ablated = HidpStrategy::without_local_tier();
        for model in WorkloadModel::ALL {
            let graph = model.graph(1);
            let full = Scenario::single(graph.clone())
                .run(&hidp, &cluster, NodeIndex(0))
                .unwrap();
            let global_only = Scenario::single(graph)
                .run(&ablated, &cluster, NodeIndex(0))
                .unwrap();
            assert!(
                full.latency() <= global_only.latency() * 1.02,
                "{model}: HiDP {:.3}s vs global-only {:.3}s",
                full.latency(),
                global_only.latency()
            );
        }
    }

    #[test]
    fn strategy_names_distinguish_variants() {
        assert_eq!(HidpStrategy::new().name(), "HiDP");
        assert_eq!(
            HidpStrategy::without_local_tier().name(),
            "HiDP-global-only"
        );
    }

    #[test]
    fn leader_choice_changes_the_plan_but_stays_feasible() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::InceptionV3.graph(1);
        for leader in 0..cluster.len() {
            let eval = Scenario::single(graph.clone())
                .run(&strategy, &cluster, NodeIndex(leader))
                .unwrap();
            assert!(eval.latency() > 0.0, "leader {leader}");
        }
    }

    #[test]
    fn single_node_cluster_still_plans() {
        let cluster = presets::tx2_only();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::Vgg19.graph(1);
        let eval = Scenario::single(graph)
            .run(&strategy, &cluster, NodeIndex(0))
            .unwrap();
        assert!(eval.latency() > 0.0);
    }
}
