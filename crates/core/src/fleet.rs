//! The fleet serving tier: route requests across many clusters on one
//! virtual clock, advance the clusters in parallel, and stay zero-alloc on
//! the warm path.
//!
//! [`crate::ServingScenario`] runs one cluster's admission loop;
//! [`FleetScenario`] runs one such loop **per cluster of a
//! [`hidp_platform::Fleet`]**, all sharing a single virtual clock. A
//! deterministic router assigns every arriving [`FleetRequest`] to a cluster
//! under a pluggable [`RoutingPolicy`]; each cluster then runs the *exact*
//! indexed admission loop of the serving tier (same `IndexedQueue`, same
//! `DispatchEstimator`, same epoch/fingerprint plan re-keying) over the
//! requests routed to it.
//!
//! # Rounds and barriers
//!
//! Virtual time is cut into router **rounds** of
//! [`FleetConfig::round_seconds`]. Each round the router (serially, in
//! global arrival order) delivers every arrival due by the round boundary to
//! its cluster, then all clusters advance **in parallel** up to the boundary
//! ([`crate::ParallelSweep::run_mut`]). A cluster's incremental loop is the
//! serving tier's batch loop with one extra rule: it stops — without
//! mutating any state — whenever its next virtual-time step would cross the
//! boundary, and resumes from exactly that point next round. Because a round
//! delivers *every* arrival up to its boundary before any cluster crosses
//! it, each cluster observes the same arrival/event/completion sequence the
//! one-shot serving loop would, so a 1-cluster fleet is **bit-identical** to
//! [`crate::ServingScenario::run_streaming`] (pinned by
//! `tests/fleet_equivalence.rs`) and results are bit-identical at any worker
//! thread count (each worker mutates only its own cluster; aggregates merge
//! in cluster index order through the exact-merge
//! [`LatencyHistogram`]).
//!
//! # Routing
//!
//! Routing keys reuse the planning fingerprint machinery:
//! [`RoutingPolicy::StaticHash`] is rendezvous hashing of the request key
//! against each cluster's [`Cluster::fingerprint`] — when a
//! [`ClusterTimeline`] flips a node, the cluster's fingerprint changes and
//! traffic re-keys exactly the way the plan cache re-keys.
//! [`RoutingPolicy::LeastLoaded`] reads each cluster's admission-model
//! backlog at the round barrier; [`RoutingPolicy::Locality`] adds the WAN
//! round trip from the request's region, so traffic stays regional until the
//! local backlog outweighs the WAN detour.
//!
//! # WAN accounting
//!
//! The WAN does not shift arrivals: a request reaches its cluster's queue at
//! its global arrival instant (shifting would reorder per-cluster arrivals
//! across rounds and break both determinism proofs). Instead the round trip
//! from the request's regional ingress to its serving cluster is added to
//! the *reported* fleet latency and to the deadline check — routing a
//! request away from its region costs tail latency and SLA misses, which is
//! exactly the trade-off locality routing navigates.

use crate::adaptive::{AdaptiveConfig, AdaptiveState, DriftStats};
use crate::parallel::ParallelSweep;
use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::serving::{
    plan_node_mask, AdmissionPolicy, Departure, DispatchEstimator, FailureMode, IndexedQueue,
    PendingBatch, RecoveryPolicy, RobustnessStats, ServingRequest,
};
use crate::strategy::DistributedStrategy;
use crate::{CoreError, PlanKey};
use hidp_dnn::zoo::WorkloadModel;
use hidp_dnn::DnnGraph;
use hidp_platform::{
    AvailabilityEvent, Cluster, ClusterTimeline, DriftModel, Fleet, NodeIndex, SlowdownWindow,
    WanDegradation,
};
use hidp_sim::serving::{LatencyHistogram, LatencySummary, SlaClass, SlaClassReport};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// One request entering the fleet: a serving request plus the region it
/// originates in (which decides its WAN ingress).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetRequest {
    /// The request (model, batch, arrival, SLA class).
    pub request: ServingRequest,
    /// The region the request originates in; must be `<`
    /// [`Fleet::region_count`].
    pub region: usize,
}

impl FleetRequest {
    /// Wraps a serving request with its origin region.
    pub fn new(request: ServingRequest, region: usize) -> Self {
        Self { request, region }
    }
}

/// How the fleet router picks a serving cluster for each arrival. All
/// policies are deterministic functions of the request, the configuration
/// and the (deterministic) cluster state at the round barrier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingPolicy {
    /// Uniform pseudo-random spread: FNV of `(seed, input index)` modulo the
    /// cluster count. Ignores both load and locality — the baseline the
    /// load-aware policies must beat.
    Random {
        /// Hash seed (different seeds give different but equally uniform
        /// spreads).
        seed: u64,
    },
    /// Rendezvous (highest-random-weight) hashing of the request key
    /// `(model, batch, region)` against each cluster's
    /// [`Cluster::fingerprint`]. Sticky per key — and because the
    /// fingerprint covers availability, a timeline flip re-keys the
    /// cluster's traffic exactly the way it re-keys its plans.
    StaticHash,
    /// The cluster whose admission backlog (dispatch-model horizon beyond
    /// the round barrier, plus [`FleetConfig::route_cost_hint_s`] per
    /// request already routed this round) is smallest. Ties go to the lower
    /// cluster index.
    #[default]
    LeastLoaded,
    /// [`RoutingPolicy::LeastLoaded`] plus the WAN round trip from the
    /// request's regional ingress: traffic stays in-region until the local
    /// backlog outweighs the WAN detour.
    Locality,
}

impl RoutingPolicy {
    /// Short name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::Random { .. } => "random",
            RoutingPolicy::StaticHash => "static-hash",
            RoutingPolicy::LeastLoaded => "least-loaded",
            RoutingPolicy::Locality => "locality",
        }
    }
}

/// Configuration of the fleet loop: the routing policy and round length on
/// top of the per-cluster serving knobs (admission policy, batching,
/// in-flight window, one optional [`ClusterTimeline`] per cluster).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// How arrivals are assigned to clusters.
    pub routing: RoutingPolicy,
    /// Per-cluster admission policy.
    pub policy: AdmissionPolicy,
    /// Per-cluster batching limit (clamped to ≥ 1).
    pub max_batch: usize,
    /// Per-cluster in-flight admission window (`None` = unbounded).
    pub max_inflight: Option<usize>,
    /// One failure timeline per cluster (empty = all clusters static; when
    /// non-empty the length must equal the fleet's cluster count).
    pub timelines: Vec<ClusterTimeline>,
    /// Router round length, virtual seconds (finite, > 0). Shorter rounds
    /// give load-aware routing fresher backlog signals at more barriers.
    pub round_seconds: f64,
    /// Request payload carried over the WAN, bytes (used for the round-trip
    /// latency accounting and locality costs).
    pub payload_bytes: u64,
    /// Estimated serving cost, seconds, charged per request already routed
    /// to a cluster within the current round — lets least-loaded/locality
    /// spread a burst that lands between two barriers.
    pub route_cost_hint_s: f64,
    /// What a down-flip does to batches already in flight (per cluster).
    pub failures: FailureMode,
    /// Recovery responses for killed and at-risk requests. At the fleet
    /// tier a retry goes **back to the router**, which re-routes it away
    /// from the cluster that killed it (failover). `hedge_premium` is a
    /// serving-tier policy and is rejected here.
    pub recovery: RecoveryPolicy,
    /// Straggler windows per cluster (empty = no stragglers; when
    /// non-empty the outer length must equal the fleet's cluster count).
    pub slowdowns: Vec<Vec<SlowdownWindow>>,
    /// Fleet-wide WAN degradation windows: a request delivered inside a
    /// window pays `factor`× its cross-site round trip.
    pub wan_degradations: Vec<WanDegradation>,
    /// One continuous drift model per cluster (empty = no drift; when
    /// non-empty the length must equal the fleet's cluster count).
    pub drifts: Vec<DriftModel>,
    /// The adaptive estimation/re-planning loop, applied per cluster
    /// worker. `None` keeps planning static.
    pub adaptive: Option<AdaptiveConfig>,
}

impl FleetConfig {
    /// Whether the run needs the failure-aware worker loop.
    fn is_robust(&self) -> bool {
        self.failures == FailureMode::Kill
            || self.recovery.is_active()
            || self.slowdowns.iter().any(|s| !s.is_empty())
            || self.drifts.iter().any(|d| !d.is_empty())
            || self.adaptive.is_some()
    }
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            routing: RoutingPolicy::default(),
            policy: AdmissionPolicy::Fifo,
            max_batch: 1,
            max_inflight: None,
            timelines: Vec::new(),
            round_seconds: 1.0,
            // One 224×224×3 f32 image.
            payload_bytes: 602_112,
            route_cost_hint_s: 0.05,
            failures: FailureMode::default(),
            recovery: RecoveryPolicy::default(),
            slowdowns: Vec::new(),
            wan_degradations: Vec::new(),
            drifts: Vec::new(),
            adaptive: None,
        }
    }
}

/// A fleet workload: regional requests plus the [`FleetConfig`] governing
/// routing and every cluster's serving loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScenario {
    label: String,
    requests: Vec<FleetRequest>,
    config: FleetConfig,
}

impl FleetScenario {
    /// Wraps `requests` with the default config; labelled `fleet[n]`.
    pub fn new(requests: Vec<FleetRequest>) -> Self {
        let label = format!("fleet[{}]", requests.len());
        Self {
            label,
            requests,
            config: FleetConfig::default(),
        }
    }

    /// Replaces the report label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Replaces the whole config (builder style); `max_batch` is clamped to
    /// at least 1.
    #[must_use]
    pub fn with_config(mut self, config: FleetConfig) -> Self {
        self.config = config;
        self.config.max_batch = self.config.max_batch.max(1);
        self
    }

    /// Sets the routing policy (builder style).
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.config.routing = routing;
        self
    }

    /// Sets the per-cluster admission policy (builder style).
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the per-cluster batching limit (builder style, clamped to ≥ 1).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch.max(1);
        self
    }

    /// Sets the per-cluster in-flight window (builder style).
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: Option<usize>) -> Self {
        self.config.max_inflight = max_inflight;
        self
    }

    /// Sets the per-cluster failure timelines (builder style).
    #[must_use]
    pub fn with_timelines(mut self, timelines: Vec<ClusterTimeline>) -> Self {
        self.config.timelines = timelines;
        self
    }

    /// Sets the router round length (builder style; validated at run time).
    #[must_use]
    pub fn with_round_seconds(mut self, round_seconds: f64) -> Self {
        self.config.round_seconds = round_seconds;
        self
    }

    /// Sets the failure mode (builder style).
    #[must_use]
    pub fn with_failure_mode(mut self, failures: FailureMode) -> Self {
        self.config.failures = failures;
        self
    }

    /// Sets the recovery policy (builder style; `hedge_premium` is rejected
    /// at validation — hedging is a serving-tier policy).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.config.recovery = recovery;
        self
    }

    /// Sets the per-cluster straggler windows (builder style).
    #[must_use]
    pub fn with_slowdowns(mut self, slowdowns: Vec<Vec<SlowdownWindow>>) -> Self {
        self.config.slowdowns = slowdowns;
        self
    }

    /// Sets the fleet-wide WAN degradation windows (builder style).
    #[must_use]
    pub fn with_wan_degradations(mut self, windows: Vec<WanDegradation>) -> Self {
        self.config.wan_degradations = windows;
        self
    }

    /// Sets the per-cluster drift models (builder style).
    #[must_use]
    pub fn with_drifts(mut self, drifts: Vec<DriftModel>) -> Self {
        self.config.drifts = drifts;
        self
    }

    /// Enables the adaptive estimation/re-planning loop (builder style).
    #[must_use]
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.config.adaptive = Some(adaptive);
        self
    }

    /// The report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The requests, input order.
    pub fn requests(&self) -> &[FleetRequest] {
        &self.requests
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the scenario has no requests (such a scenario cannot run).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Runs the fleet on the calling thread with fresh scratch and
    /// per-cluster plan caches.
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario or config is invalid for `fleet`,
    /// or when planning/estimation fails in any cluster.
    pub fn run_streaming(
        &self,
        strategy: &dyn DistributedStrategy,
        fleet: &Fleet,
        leader: NodeIndex,
    ) -> Result<FleetSummary, CoreError> {
        self.run_streaming_in(
            strategy,
            fleet,
            leader,
            &ParallelSweep::new(1),
            &mut FleetScratch::new(),
        )
    }

    /// [`FleetScenario::run_streaming`] against caller-owned worker threads
    /// and scratch. Results are **bit-identical at every thread count** —
    /// the sweep only decides which thread advances which cluster. After a
    /// first pass has sized the scratch, a steady-state pass over the same
    /// workload shape performs zero heap allocations at `threads == 1`
    /// (`tests/zero_alloc_warm_path.rs`; the threaded path allocates its
    /// scoped-thread machinery per barrier).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetScenario::run_streaming`].
    pub fn run_streaming_in(
        &self,
        strategy: &dyn DistributedStrategy,
        fleet: &Fleet,
        leader: NodeIndex,
        sweep: &ParallelSweep,
        scratch: &mut FleetScratch,
    ) -> Result<FleetSummary, CoreError> {
        self.validate(fleet, leader)?;
        let requests = &self.requests;
        let n = requests.len();
        let clusters = fleet.clusters();
        let cluster_count = clusters.len();
        let round_seconds = self.config.round_seconds;
        let payload = self.config.payload_bytes;
        let hint = self.config.route_cost_hint_s;
        let robust = self.config.is_robust();
        let degradations = self.config.wan_degradations.as_slice();
        let ctx = RoundCtx {
            strategy,
            leader,
            policy: self.config.policy,
            max_batch: self.config.max_batch.max(1),
            max_inflight: self.config.max_inflight.map(|w| w.max(1)),
            robust,
            kill: self.config.failures == FailureMode::Kill,
            recovery: self.config.recovery,
            adaptive: self.config.adaptive,
        };

        scratch.ensure(cluster_count);
        let FleetScratch {
            workers,
            caches,
            order,
            retries,
        } = scratch;
        let caches: &[PlanCache] = caches;
        retries.clear();
        let mut retry_seq = 0u64;
        for (i, worker) in workers.iter_mut().enumerate() {
            let has_events = self.config.timelines.get(i).is_some_and(|t| !t.is_empty());
            worker.reset(
                &clusters[i],
                strategy,
                leader,
                has_events,
                self.config.adaptive.as_ref(),
            );
        }

        // Global arrival order: by normalised time, ties by input index.
        // Delivering in this order makes every cluster's local request list
        // arrive pre-sorted the same way the serving loop sorts.
        order.clear();
        order.extend(0..n as u32);
        order.sort_unstable_by(|&a, &b| {
            (requests[a as usize].request.arrival + 0.0)
                .total_cmp(&(requests[b as usize].request.arrival + 0.0))
                .then(a.cmp(&b))
        });

        let mut next_global = 0usize;
        let mut rounds = 0usize;
        // Round boundaries are multiples of `round_seconds`; `boundary` is
        // the multiplier of the last completed barrier. Windows with no
        // arrivals (or retry releases) are skipped — the boundary jumps to
        // the window holding the next delivery — so the round count scales
        // with the deliveries, not the time span.
        let mut boundary = 0u64;
        loop {
            let mut next_t = if next_global >= n {
                f64::INFINITY
            } else {
                requests[order[next_global] as usize].request.arrival + 0.0
            };
            if let Some(&Reverse(entry)) = retries.peek() {
                next_t = next_t.min(entry.release);
            }
            let next_boundary = if next_t.is_finite() {
                Some(((next_t / round_seconds).ceil() as u64).max(boundary + 1))
            } else {
                None
            };
            let t_end = match next_boundary {
                Some(m) => m as f64 * round_seconds,
                // Final drain: every delivery is made, run to the end.
                None => f64::INFINITY,
            };

            // Snapshot each cluster's backlog at the barrier for the
            // load-aware policies, then route this round's deliveries —
            // fresh arrivals merged with released retries by time (a retry
            // at the same instant goes first: it is strictly older work).
            let barrier = boundary as f64 * round_seconds;
            for worker in workers.iter_mut() {
                worker.backlog = (worker.dispatch.horizon() - barrier).max(0.0);
                worker.routed_in_round = 0;
            }
            loop {
                let arrival_t = if next_global < n {
                    let t = requests[order[next_global] as usize].request.arrival + 0.0;
                    (t <= t_end).then_some(t)
                } else {
                    None
                };
                // A release that predates this round's window is delivered
                // at the barrier — deliveries stay sorted per worker.
                let retry_t = retries.peek().and_then(|&Reverse(entry)| {
                    let t = entry.release.max(barrier);
                    (entry.release <= t_end).then_some(t)
                });
                match (arrival_t, retry_t) {
                    (None, None) => break,
                    (Some(at), rt) if rt.is_none_or(|rt| at < rt) => {
                        let idx = order[next_global] as usize;
                        let fleet_request = &requests[idx];
                        let c = route(
                            self.config.routing,
                            workers,
                            fleet,
                            fleet_request,
                            idx as u64,
                            payload,
                            hint,
                            None,
                        );
                        let mut wan = fleet.wan_round_trip(fleet_request.region, c, payload);
                        if !degradations.is_empty() {
                            wan *= wan_factor(degradations, at);
                        }
                        if robust {
                            workers[c].deliver_robust(
                                fleet_request.request,
                                wan,
                                at,
                                idx as u32,
                                0,
                            );
                        } else {
                            workers[c].deliver(fleet_request.request, wan);
                        }
                        workers[c].routed_in_round += 1;
                        next_global += 1;
                    }
                    (_, Some(ready)) => {
                        let Reverse(entry) = retries.pop().expect("peeked above");
                        let idx = entry.global as usize;
                        let fleet_request = &requests[idx];
                        // Failover: never back to the cluster that killed
                        // it (unless the fleet has only one).
                        let c = route(
                            self.config.routing,
                            workers,
                            fleet,
                            fleet_request,
                            fnv64(&[entry.global as u64, u64::from(entry.attempts)]),
                            payload,
                            hint,
                            Some(entry.from as usize),
                        );
                        let mut wan = fleet.wan_round_trip(fleet_request.region, c, payload);
                        if !degradations.is_empty() {
                            wan *= wan_factor(degradations, ready);
                        }
                        workers[c].deliver_robust(
                            fleet_request.request,
                            wan,
                            ready,
                            entry.global,
                            entry.attempts,
                        );
                        workers[c].routed_in_round += 1;
                    }
                    (Some(_), None) => unreachable!("an arrival with no retry always routes"),
                }
            }

            // Advance every cluster to the barrier, in parallel.
            sweep.run_mut(workers, |i, worker| {
                let events = self
                    .config
                    .timelines
                    .get(i)
                    .map(ClusterTimeline::events)
                    .unwrap_or(&[]);
                let slowdowns = self
                    .config
                    .slowdowns
                    .get(i)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                let drift = self.config.drifts.get(i).filter(|d| !d.is_empty());
                worker.advance(
                    &ctx,
                    &clusters[i],
                    events,
                    slowdowns,
                    drift,
                    &caches[i],
                    t_end,
                );
            });
            for worker in workers.iter_mut() {
                if let Some(error) = worker.error.take() {
                    return Err(error);
                }
            }
            // Collect this round's kill fallout in cluster index order (the
            // deterministic global retry order at any thread count).
            for (c, worker) in workers.iter_mut().enumerate() {
                for retry in worker.retry_out.drain(..) {
                    retries.push(Reverse(FleetRetryEntry {
                        release: retry.release + 0.0,
                        seq: retry_seq,
                        global: retry.global,
                        attempts: retry.attempts,
                        from: c as u32,
                    }));
                    retry_seq += 1;
                }
            }

            rounds += 1;
            match next_boundary {
                Some(m) => boundary = m,
                // The drain round may itself have killed work and queued
                // retries; keep routing until the fleet is quiet.
                None => {
                    if retries.is_empty() {
                        break;
                    }
                }
            }
        }

        self.summarise(workers, n, cluster_count, rounds, robust)
    }

    /// Merges the per-cluster workers into the fleet summary, in cluster
    /// index order (which is what makes the rollup thread-count invariant).
    fn summarise(
        &self,
        workers: &[ClusterWorker],
        n: usize,
        clusters: usize,
        rounds: usize,
        robust: bool,
    ) -> Result<FleetSummary, CoreError> {
        let mut latency = LatencyHistogram::new();
        let mut class_latency = [LatencyHistogram::new(); 3];
        let mut queueing_sum = 0.0f64;
        let mut queueing_max = 0.0f64;
        let mut class_queueing_sum = [0.0f64; 3];
        let mut class_misses = [0usize; 3];
        let mut deadline_misses = 0usize;
        let mut makespan = 0.0f64;
        let mut batches = 0usize;
        let mut epochs_applied = 0usize;
        let mut plan_cache = PlanCacheStats::default();
        let mut busiest = 0usize;
        let mut idlest = usize::MAX;
        let mut wan_sum = 0.0f64;
        let mut robustness = RobustnessStats::default();
        let mut drift = DriftStats::default();
        let mut time_to_first_retry = f64::INFINITY;
        let mut recovery_hist = LatencyHistogram::new();
        for worker in workers {
            robustness.merge(&worker.robustness);
            drift.merge(&DriftStats {
                replans: worker.adaptive.replans,
                observations: worker.adaptive.observations,
                energy_j: worker.dispatch.energy_j,
            });
            if worker.first_retry < time_to_first_retry {
                time_to_first_retry = worker.first_retry;
            }
            recovery_hist.merge(&worker.recovered_latency);
            latency.merge(&worker.latency);
            for (c, hist) in class_latency.iter_mut().enumerate() {
                hist.merge(&worker.class_latency[c]);
            }
            queueing_sum += worker.queueing_sum;
            if worker.queueing_max > queueing_max {
                queueing_max = worker.queueing_max;
            }
            for c in 0..3 {
                class_queueing_sum[c] += worker.class_queueing_sum[c];
                class_misses[c] += worker.class_misses[c];
            }
            deadline_misses += worker.deadline_misses;
            if worker.makespan > makespan {
                makespan = worker.makespan;
            }
            batches += worker.batches;
            epochs_applied += worker.epoch;
            plan_cache.hits += worker.stats.hits;
            plan_cache.misses += worker.stats.misses;
            busiest = busiest.max(worker.requests.len());
            idlest = idlest.min(worker.requests.len());
            wan_sum += worker.wan2.iter().sum::<f64>();
        }
        let mut per_class = [None; 3];
        for (c, &class) in SlaClass::ALL.iter().enumerate() {
            if let Some(latency) = class_latency[c].summary() {
                per_class[c] = Some(SlaClassReport {
                    class,
                    latency,
                    mean_queueing_delay: class_queueing_sum[c] / latency.count as f64,
                    deadline_misses: class_misses[c],
                });
            }
        }
        // Workers count completions and drops; the offered side of the
        // conservation invariant is the global input stream.
        robustness.offered = n as u64;
        if !robust {
            robustness = RobustnessStats::all_completed(n);
        }
        debug_assert!(
            robustness.accounts_for_every_request(),
            "request conservation violated: {robustness:?}"
        );
        let latency_summary = latency.summary().ok_or_else(|| CoreError::Infeasible {
            what: format!(
                "fleet scenario '{}': no request completed under the fault timelines",
                self.label
            ),
        })?;
        Ok(FleetSummary {
            requests: n,
            clusters,
            rounds,
            batches,
            epochs_applied,
            makespan,
            latency: latency_summary,
            max_latency: latency.max(),
            mean_queueing_delay: queueing_sum / n as f64,
            max_queueing_delay: queueing_max,
            deadline_misses,
            per_class,
            plan_cache,
            busiest_cluster_requests: busiest,
            idlest_cluster_requests: idlest,
            mean_wan_round_trip: wan_sum / n as f64,
            robustness,
            drift,
            time_to_first_retry,
            recovery_latency: recovery_hist.summary(),
        })
    }

    /// Rejects empty scenarios, invalid requests/regions, malformed round
    /// or routing parameters, timeline shape mismatches and leaders outside
    /// any cluster.
    fn validate(&self, fleet: &Fleet, leader: NodeIndex) -> Result<(), CoreError> {
        if self.requests.is_empty() {
            return Err(CoreError::Infeasible {
                what: format!("fleet scenario '{}' has no requests", self.label),
            });
        }
        if self.requests.len() >= u32::MAX as usize {
            return Err(CoreError::Infeasible {
                what: format!(
                    "fleet scenario '{}' exceeds the 2^32-1 request limit",
                    self.label
                ),
            });
        }
        for (i, fleet_request) in self.requests.iter().enumerate() {
            let request = &fleet_request.request;
            if !(request.arrival.is_finite() && request.arrival >= 0.0) {
                return Err(CoreError::Infeasible {
                    what: format!(
                        "fleet scenario '{}': request {i} has invalid arrival {}",
                        self.label, request.arrival
                    ),
                });
            }
            if request.batch == 0 {
                return Err(CoreError::Infeasible {
                    what: format!("fleet scenario '{}': request {i} has batch 0", self.label),
                });
            }
            if fleet_request.region >= fleet.region_count() {
                return Err(CoreError::Infeasible {
                    what: format!(
                        "fleet scenario '{}': request {i} originates in region {} but the fleet has {} regions",
                        self.label,
                        fleet_request.region,
                        fleet.region_count()
                    ),
                });
            }
        }
        if !(self.config.round_seconds.is_finite() && self.config.round_seconds > 0.0) {
            return Err(CoreError::Infeasible {
                what: format!(
                    "fleet scenario '{}': round_seconds must be finite and positive, got {}",
                    self.label, self.config.round_seconds
                ),
            });
        }
        if !(self.config.route_cost_hint_s.is_finite() && self.config.route_cost_hint_s >= 0.0) {
            return Err(CoreError::Infeasible {
                what: format!(
                    "fleet scenario '{}': route_cost_hint_s must be finite and non-negative, got {}",
                    self.label, self.config.route_cost_hint_s
                ),
            });
        }
        if !self.config.timelines.is_empty() && self.config.timelines.len() != fleet.len() {
            return Err(CoreError::Infeasible {
                what: format!(
                    "fleet scenario '{}': {} timelines for {} clusters (use an empty list for an all-static fleet)",
                    self.label,
                    self.config.timelines.len(),
                    fleet.len()
                ),
            });
        }
        if self.config.recovery.hedge_premium {
            return Err(CoreError::Infeasible {
                what: format!(
                    "fleet scenario '{}': hedged dispatch is a serving-tier policy \
                     (the fleet's failover response is re-routing retries)",
                    self.label
                ),
            });
        }
        if let Some(retry) = self.config.recovery.retry {
            retry.validate()?;
        }
        if !self.config.slowdowns.is_empty() && self.config.slowdowns.len() != fleet.len() {
            return Err(CoreError::Infeasible {
                what: format!(
                    "fleet scenario '{}': {} slowdown lists for {} clusters (use an empty list for no stragglers)",
                    self.label,
                    self.config.slowdowns.len(),
                    fleet.len()
                ),
            });
        }
        if !self.config.drifts.is_empty() && self.config.drifts.len() != fleet.len() {
            return Err(CoreError::Infeasible {
                what: format!(
                    "fleet scenario '{}': {} drift models for {} clusters (use an empty list for no drift)",
                    self.label,
                    self.config.drifts.len(),
                    fleet.len()
                ),
            });
        }
        if let Some(adaptive) = &self.config.adaptive {
            adaptive.validate()?;
        }
        for window in &self.config.wan_degradations {
            window.validate()?;
        }
        for (i, cluster) in fleet.clusters().iter().enumerate() {
            // The leader must exist in every cluster (every plan keys on it).
            cluster.node(leader)?;
            if let Some(timeline) = self.config.timelines.get(i) {
                timeline.validate(cluster)?;
            }
            if let Some(windows) = self.config.slowdowns.get(i) {
                for window in windows {
                    window.validate()?;
                    cluster.node(window.node)?;
                }
            }
            if let Some(drift) = self.config.drifts.get(i) {
                drift.validate(cluster.len())?;
            }
            if self.config.failures == FailureMode::Kill && cluster.len() > 64 {
                return Err(CoreError::Infeasible {
                    what: format!(
                        "fleet scenario '{}': kill semantics track plan residency in a \
                         64-bit node mask; cluster {i} has {} nodes",
                        self.label,
                        cluster.len()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Read-only per-round context shared by every cluster worker.
struct RoundCtx<'a> {
    strategy: &'a dyn DistributedStrategy,
    leader: NodeIndex,
    policy: AdmissionPolicy,
    max_batch: usize,
    max_inflight: Option<usize>,
    robust: bool,
    kill: bool,
    recovery: RecoveryPolicy,
    adaptive: Option<AdaptiveConfig>,
}

/// Routes one arrival to a cluster (serial, deterministic). `exclude` is
/// the failover rule: a retry never returns to the cluster that killed it
/// (unless the fleet has only one cluster).
#[allow(clippy::too_many_arguments)]
fn route(
    routing: RoutingPolicy,
    workers: &[ClusterWorker],
    fleet: &Fleet,
    fleet_request: &FleetRequest,
    input_index: u64,
    payload: u64,
    hint: f64,
    exclude: Option<usize>,
) -> usize {
    let k = workers.len();
    if k == 1 {
        return 0;
    }
    let skip = |c: usize| exclude == Some(c);
    match routing {
        RoutingPolicy::Random { seed } => match exclude {
            None => (fnv64(&[seed, input_index]) % k as u64) as usize,
            // Uniform over the k-1 survivors, then remapped around the hole.
            Some(x) => {
                let r = (fnv64(&[seed, input_index]) % (k as u64 - 1)) as usize;
                if r >= x {
                    r + 1
                } else {
                    r
                }
            }
        },
        RoutingPolicy::StaticHash => {
            let key = request_key(fleet_request);
            let mut best = usize::MAX;
            let mut best_score = 0u64;
            for (c, worker) in workers.iter().enumerate() {
                if skip(c) {
                    continue;
                }
                let score = fnv64(&[key, worker.fingerprint]);
                if best == usize::MAX || score > best_score {
                    best = c;
                    best_score = score;
                }
            }
            best
        }
        RoutingPolicy::LeastLoaded => {
            let mut best = usize::MAX;
            let mut best_cost = f64::INFINITY;
            for (c, worker) in workers.iter().enumerate() {
                if skip(c) {
                    continue;
                }
                let cost = worker.backlog + worker.routed_in_round as f64 * hint;
                if best == usize::MAX || cost < best_cost {
                    best = c;
                    best_cost = cost;
                }
            }
            best
        }
        RoutingPolicy::Locality => {
            let mut best = usize::MAX;
            let mut best_cost = f64::INFINITY;
            for (c, worker) in workers.iter().enumerate() {
                if skip(c) {
                    continue;
                }
                let cost = fleet.wan_round_trip(fleet_request.region, c, payload)
                    + worker.backlog
                    + worker.routed_in_round as f64 * hint;
                if best == usize::MAX || cost < best_cost {
                    best = c;
                    best_cost = cost;
                }
            }
            best
        }
    }
}

/// The compounded WAN multiplier for a delivery at `at` (1.0 outside every
/// degradation window).
fn wan_factor(degradations: &[WanDegradation], at: f64) -> f64 {
    let mut factor = 1.0f64;
    for window in degradations {
        if window.applies(at) {
            factor *= window.factor;
        }
    }
    factor
}

/// The sticky routing key of a request: model, per-request batch and region.
fn request_key(fleet_request: &FleetRequest) -> u64 {
    let model = WorkloadModel::ALL
        .iter()
        .position(|m| *m == fleet_request.request.model)
        .unwrap_or(0) as u64;
    fnv64(&[
        model,
        fleet_request.request.batch as u64,
        fleet_request.region as u64,
    ])
}

/// FNV-1a over a word sequence, avalanche-finished — the router's local
/// hash (independent of `std` hashing so routes are stable across processes
/// and Rust versions). The finalizer matters: raw FNV-1a's low bit is a
/// *linear* function of the input bytes (each step is `(h ^ b) * odd`, so
/// bit 0 just XOR-accumulates), which makes `hash % n` correlate with input
/// parity for even `n` — e.g. even-indexed requests all landing on
/// even-indexed clusters. The splitmix64-style mix diffuses every input bit
/// into every output bit.
pub(crate) fn fnv64(parts: &[u64]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &part in parts {
        for byte in part.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash = (hash ^ (hash >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash = (hash ^ (hash >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// Reusable working memory for a fleet run: one [`ClusterWorker`] and one
/// sharded [`PlanCache`] per cluster, plus the global routing order. Create
/// one and pass it to every run: after the first pass has sized the buffers,
/// a steady-state pass over the same workload shape performs zero heap
/// allocations at one worker thread (`tests/zero_alloc_warm_path.rs`).
#[derive(Debug, Default)]
pub struct FleetScratch {
    workers: Vec<ClusterWorker>,
    caches: Vec<PlanCache>,
    order: Vec<u32>,
    /// Killed requests awaiting their backoff release, fleet-wide — the
    /// router drains this into (re-routed) deliveries each round.
    retries: BinaryHeap<Reverse<FleetRetryEntry>>,
}

/// A killed request in the fleet retry heap, ordered by release time, ties
/// by push sequence (which is deterministic: workers drain in cluster index
/// order).
#[derive(Debug, Clone, Copy, PartialEq)]
struct FleetRetryEntry {
    release: f64,
    seq: u64,
    global: u32,
    attempts: u32,
    from: u32,
}

impl Eq for FleetRetryEntry {}

impl PartialOrd for FleetRetryEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FleetRetryEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.release
            .total_cmp(&other.release)
            .then(self.seq.cmp(&other.seq))
    }
}

/// One killed request a worker hands back to the router (the router adds
/// the originating cluster index).
#[derive(Debug, Clone, Copy)]
struct FleetRetry {
    global: u32,
    release: f64,
    attempts: u32,
}

impl FleetScratch {
    /// Creates an empty scratch (no buffers are allocated until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests routed to each cluster in the most recent run (allocates;
    /// for post-run reporting, not the hot path).
    pub fn cluster_requests(&self) -> Vec<usize> {
        self.workers.iter().map(|w| w.requests.len()).collect()
    }

    /// Sizes the per-cluster state (only allocates on first use or growth).
    fn ensure(&mut self, clusters: usize) {
        while self.workers.len() < clusters {
            self.workers.push(ClusterWorker::new());
        }
        self.workers.truncate(clusters);
        while self.caches.len() < clusters {
            self.caches.push(PlanCache::new());
        }
        self.caches.truncate(clusters);
    }
}

/// One cluster's incremental serving loop: the exact state of
/// `ServingScenario`'s indexed admission loop, persisted across router
/// rounds so the loop can stop at a barrier and resume bit-identically.
#[derive(Debug)]
struct ClusterWorker {
    // Inputs delivered by the router, in (arrival, global index) order.
    requests: Vec<ServingRequest>,
    /// Per delivered request: WAN round trip added to its reported latency.
    wan2: Vec<f64>,
    // Robust-path delivery metadata (parallel to `requests`; empty on the
    // legacy path): when the entry may enter the queue (arrival for fresh
    // work, backoff release for retries), its global input index, and how
    // many attempts it had already burned when delivered.
    ready: Vec<f64>,
    global: Vec<u32>,
    attempts_in: Vec<u32>,
    // The serving loop's state (field-for-field its locals and scratch).
    key: PlanKey,
    queue: IndexedQueue,
    members: Vec<u32>,
    graphs: HashMap<(WorkloadModel, usize), Arc<DnnGraph>>,
    dispatch: DispatchEstimator,
    inflight: BinaryHeap<Reverse<Departure>>,
    epoch_cluster: Option<Cluster>,
    next_event: usize,
    epoch: usize,
    departure_seq: u64,
    next_arrival: usize,
    now: f64,
    stats: PlanCacheStats,
    // Kill-tracking state (robust path only).
    pending: VecDeque<PendingBatch>,
    pending_members: Vec<u32>,
    retry_out: Vec<FleetRetry>,
    robustness: RobustnessStats,
    // Adaptive estimation/re-planning state (robust path only).
    adaptive: AdaptiveState,
    // Virtual time of the first kill that produced a retry (INFINITY if
    // none), and latency histogram over completions that needed a retry.
    first_retry: f64,
    recovered_latency: LatencyHistogram,
    // Routing signals read by the (serial) router.
    fingerprint: u64,
    backlog: f64,
    routed_in_round: u32,
    // Streaming aggregates (exact-merge histograms + exact sums).
    latency: LatencyHistogram,
    class_latency: [LatencyHistogram; 3],
    queueing_sum: f64,
    queueing_max: f64,
    class_queueing_sum: [f64; 3],
    class_misses: [usize; 3],
    deadline_misses: usize,
    makespan: f64,
    batches: usize,
    error: Option<CoreError>,
}

impl ClusterWorker {
    fn new() -> Self {
        Self {
            requests: Vec::new(),
            wan2: Vec::new(),
            ready: Vec::new(),
            global: Vec::new(),
            attempts_in: Vec::new(),
            key: PlanKey {
                strategy: String::new(),
                strategy_config: String::new(),
                graph_fingerprint: 0,
                batch: 0,
                leader: NodeIndex(0),
                cluster_fingerprint: 0,
            },
            queue: IndexedQueue::default(),
            members: Vec::new(),
            graphs: HashMap::new(),
            dispatch: DispatchEstimator::default(),
            inflight: BinaryHeap::new(),
            epoch_cluster: None,
            next_event: 0,
            epoch: 0,
            departure_seq: 0,
            next_arrival: 0,
            now: 0.0,
            stats: PlanCacheStats::default(),
            pending: VecDeque::new(),
            pending_members: Vec::new(),
            retry_out: Vec::new(),
            robustness: RobustnessStats::default(),
            adaptive: AdaptiveState::default(),
            first_retry: f64::INFINITY,
            recovered_latency: LatencyHistogram::new(),
            fingerprint: 0,
            backlog: 0.0,
            routed_in_round: 0,
            latency: LatencyHistogram::new(),
            class_latency: [LatencyHistogram::new(); 3],
            queueing_sum: 0.0,
            queueing_max: 0.0,
            class_queueing_sum: [0.0; 3],
            class_misses: [0; 3],
            deadline_misses: 0,
            makespan: 0.0,
            batches: 0,
            error: None,
        }
    }

    /// Rearms the worker for a new run over `cluster`, keeping every
    /// buffer's capacity (and the persistent intern tables).
    fn reset(
        &mut self,
        cluster: &Cluster,
        strategy: &dyn DistributedStrategy,
        leader: NodeIndex,
        has_events: bool,
        adaptive: Option<&AdaptiveConfig>,
    ) {
        self.requests.clear();
        self.wan2.clear();
        self.ready.clear();
        self.global.clear();
        self.attempts_in.clear();
        self.key.strategy.clear();
        self.key.strategy.push_str(strategy.name());
        strategy.write_cache_config(&mut self.key.strategy_config);
        self.key.graph_fingerprint = 0;
        self.key.batch = 0;
        self.key.leader = leader;
        self.key.cluster_fingerprint = cluster.fingerprint();
        self.queue.begin();
        self.dispatch.reset();
        self.inflight.clear();
        if has_events {
            match &mut self.epoch_cluster {
                Some(c) => {
                    // Availability-only rewind keeps warm passes zero-alloc;
                    // a different base cluster falls back to a full clone.
                    if c.restore_availability_from(cluster).is_err() {
                        c.clone_from(cluster);
                    }
                }
                None => self.epoch_cluster = Some(cluster.clone()),
            }
        } else {
            self.epoch_cluster = None;
        }
        self.next_event = 0;
        self.epoch = 0;
        self.departure_seq = 0;
        self.next_arrival = 0;
        self.now = 0.0;
        self.stats = PlanCacheStats::default();
        self.pending.clear();
        self.pending_members.clear();
        self.retry_out.clear();
        self.robustness = RobustnessStats::default();
        // Reset also deactivates any belief a previous run materialised: a
        // non-adaptive run must not inherit it, and an adaptive steady-state
        // pass must rediscover it exactly like the warm pass did.
        match adaptive {
            Some(cfg) => self.adaptive.reset(cfg, cluster.len()),
            None => self.adaptive.reset(&AdaptiveConfig::default(), 0),
        }
        self.first_retry = f64::INFINITY;
        self.recovered_latency = LatencyHistogram::new();
        self.fingerprint = cluster.fingerprint();
        self.backlog = 0.0;
        self.routed_in_round = 0;
        self.latency = LatencyHistogram::new();
        self.class_latency = [LatencyHistogram::new(); 3];
        self.queueing_sum = 0.0;
        self.queueing_max = 0.0;
        self.class_queueing_sum = [0.0; 3];
        self.class_misses = [0; 3];
        self.deadline_misses = 0;
        self.makespan = 0.0;
        self.batches = 0;
        self.error = None;
    }

    /// Accepts one routed arrival (called in global arrival order, so the
    /// local list stays sorted the way the serving loop sorts).
    fn deliver(&mut self, request: ServingRequest, wan_round_trip: f64) {
        self.requests.push(request);
        self.wan2.push(wan_round_trip);
        self.queue.ensure(self.requests.len());
    }

    /// [`ClusterWorker::deliver`] for the robust path: `ready` gates when
    /// the entry may enter the queue (the router merges arrivals and retry
    /// releases so deliveries arrive sorted by `ready`), `global` is the
    /// fleet-wide input index (jitter and conservation key on it) and
    /// `attempts` is the retry budget already burned.
    fn deliver_robust(
        &mut self,
        request: ServingRequest,
        wan_round_trip: f64,
        ready: f64,
        global: u32,
        attempts: u32,
    ) {
        self.requests.push(request);
        self.wan2.push(wan_round_trip);
        self.ready.push(ready + 0.0);
        self.global.push(global);
        self.attempts_in.push(attempts);
        self.queue.ensure(self.requests.len());
    }

    /// Advances the cluster to the round barrier, trapping any error for
    /// the router to surface after the parallel section.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &mut self,
        ctx: &RoundCtx<'_>,
        base: &Cluster,
        events: &[AvailabilityEvent],
        slowdowns: &[SlowdownWindow],
        drift: Option<&DriftModel>,
        cache: &PlanCache,
        t_end: f64,
    ) {
        if self.error.is_some() {
            return;
        }
        let result = if ctx.robust {
            self.advance_inner_robust(ctx, base, events, slowdowns, drift, cache, t_end)
        } else {
            self.advance_inner(ctx, base, events, cache, t_end)
        };
        if let Err(error) = result {
            self.error = Some(error);
        }
    }

    /// The serving tier's indexed admission loop, incremental: identical
    /// admissions, epochs and virtual-time steps, except that the loop
    /// returns — before mutating anything — whenever its next step `t`
    /// would cross `t_end`. The router delivers every arrival `≤ t_end`
    /// before calling this, so each step sees exactly the arrival set the
    /// one-shot loop would.
    fn advance_inner(
        &mut self,
        ctx: &RoundCtx<'_>,
        base: &Cluster,
        events: &[AvailabilityEvent],
        cache: &PlanCache,
        t_end: f64,
    ) -> Result<(), CoreError> {
        loop {
            // Admit everything the window allows at the current instant.
            while self.queue.len() > 0 && ctx.max_inflight.is_none_or(|w| self.inflight.len() < w) {
                let head = self.queue.pick(ctx.policy);
                self.queue.coalesce(head, ctx.max_batch, &mut self.members);
                for &m in self.members.iter() {
                    self.queue.remove(m, &self.requests);
                }
                let head = self.requests[head as usize];
                let combined = head.batch * self.members.len();
                let graph = self
                    .graphs
                    .entry((head.model, combined))
                    .or_insert_with(|| Arc::new(head.model.graph(combined)));
                self.key.graph_fingerprint = graph.fingerprint();
                self.key.batch = graph.input_shape().batch();
                let plan_cluster: &Cluster = self.epoch_cluster.as_ref().unwrap_or(base);
                let (plan, hit) =
                    cache.plan_keyed(&self.key, ctx.strategy, graph, plan_cluster, ctx.leader)?;
                if hit {
                    self.stats.hits += 1;
                } else {
                    self.stats.misses += 1;
                }

                // Streaming mode always estimates: completions come from the
                // measured dispatch model, run on the base cluster exactly
                // like the serving loop's.
                let completion = self.dispatch.estimate(plan.as_ref(), base, self.now)?;
                if ctx.max_inflight.is_some() {
                    self.inflight.push(Reverse(Departure {
                        at: completion,
                        seq: self.departure_seq,
                    }));
                    self.departure_seq += 1;
                }
                self.batches += 1;
                if completion > self.makespan {
                    self.makespan = completion;
                }
                for &m in self.members.iter() {
                    let request = &self.requests[m as usize];
                    let latency = completion - request.arrival + self.wan2[m as usize];
                    let delay = self.now - request.arrival;
                    self.latency.observe(latency);
                    self.queueing_sum += delay;
                    if delay > self.queueing_max {
                        self.queueing_max = delay;
                    }
                    let class = request.sla.priority() as usize;
                    self.class_latency[class].observe(latency);
                    self.class_queueing_sum[class] += delay;
                    if latency > request.sla.deadline_seconds() {
                        self.deadline_misses += 1;
                        self.class_misses[class] += 1;
                    }
                }
            }

            if self.next_arrival >= self.requests.len() && self.queue.len() == 0 {
                return Ok(()); // Everything delivered so far is served.
            }

            // Blocked: wait for the next arrival or (when the window is
            // full) the next estimated completion, whichever comes first.
            let mut t = f64::INFINITY;
            if self.next_arrival < self.requests.len() {
                t = self.requests[self.next_arrival].arrival + 0.0;
            }
            if self.queue.len() > 0 {
                let Reverse(soonest) = self
                    .inflight
                    .peek()
                    .expect("a full admission window implies in-flight batches");
                t = t.min(soonest.at);
            }
            if t > t_end {
                return Ok(()); // Barrier: resume here next round.
            }
            // Replay timeline events due by then: each flip starts a new
            // epoch whose cluster fingerprint re-keys planning AND routing.
            while self.next_event < events.len() && events[self.next_event].time <= t {
                let event = &events[self.next_event];
                let c = self
                    .epoch_cluster
                    .as_mut()
                    .expect("events imply an epoch cluster");
                c.set_available(event.node, event.up)?;
                self.key.cluster_fingerprint = c.fingerprint();
                self.fingerprint = c.fingerprint();
                self.epoch += 1;
                self.next_event += 1;
            }
            if t > self.now {
                self.now = t;
            }
            while let Some(&Reverse(soonest)) = self.inflight.peek() {
                if soonest.at <= self.now {
                    self.inflight.pop();
                } else {
                    break;
                }
            }
            while self.next_arrival < self.requests.len()
                && self.requests[self.next_arrival].arrival + 0.0 <= self.now
            {
                self.queue
                    .push(self.next_arrival as u32, &self.requests, ctx.policy);
                self.next_arrival += 1;
            }
        }
    }

    /// The failure-aware incremental loop: [`ClusterWorker::advance_inner`]
    /// extended with the serving tier's kill semantics. Admitted batches
    /// enter a pending FIFO instead of being observed immediately; a batch
    /// is finalised (observed, WAN round trip included) once the clock
    /// passes its completion, and killed when a down-flip lands on a node
    /// its plan touches mid-flight. Killed members do **not** re-enter the
    /// local queue — they go to `retry_out`, and the router re-routes them
    /// away from this cluster next round (failover). On a fault-free
    /// config the FIFO finalisation preserves the admission-order
    /// observation sequence, so the run is bit-identical to the legacy
    /// loop (pinned by `tests/chaos_robustness.rs`).
    ///
    /// Two rules differ from the legacy loop by design, both WAN-aware:
    /// earliest-deadline ranks by `arrival + deadline − WAN round trip`
    /// (when the reply must *leave* this cluster — the deadline rule in
    /// `hidp_sim::serving`) and shedding compares the same WAN-adjusted
    /// deadline against the admission lower bound.
    #[allow(clippy::too_many_arguments)]
    fn advance_inner_robust(
        &mut self,
        ctx: &RoundCtx<'_>,
        base: &Cluster,
        events: &[AvailabilityEvent],
        slowdowns: &[SlowdownWindow],
        drift: Option<&DriftModel>,
        cache: &PlanCache,
        t_end: f64,
    ) -> Result<(), CoreError> {
        let ClusterWorker {
            requests,
            wan2,
            ready,
            global,
            attempts_in,
            key,
            queue,
            members,
            graphs,
            dispatch,
            inflight,
            epoch_cluster,
            next_event,
            epoch,
            departure_seq,
            next_arrival,
            now,
            stats,
            pending,
            pending_members,
            retry_out,
            robustness,
            adaptive,
            first_retry,
            recovered_latency,
            fingerprint,
            latency,
            class_latency,
            queueing_sum,
            queueing_max,
            class_queueing_sum,
            class_misses,
            deadline_misses,
            makespan,
            batches,
            ..
        } = self;

        // Observes one surviving batch's members, in admission order
        // (callers pop the pending FIFO front-first).
        macro_rules! finalise {
            ($b:expr) => {{
                let b = $b;
                let completion = b.effective_completion();
                if completion > *makespan {
                    *makespan = completion;
                }
                robustness.completed += u64::from(b.members_len);
                let span = b.members_start as usize..(b.members_start + b.members_len) as usize;
                for &m in &pending_members[span] {
                    let request = &requests[m as usize];
                    let lat = completion - request.arrival + wan2[m as usize];
                    let delay = b.admitted - request.arrival;
                    latency.observe(lat);
                    if attempts_in[m as usize] > 0 {
                        // This completion only happened because a retry was
                        // re-routed here: its latency is the recovery cost.
                        recovered_latency.observe(lat);
                    }
                    *queueing_sum += delay;
                    if delay > *queueing_max {
                        *queueing_max = delay;
                    }
                    let class = request.sla.priority() as usize;
                    class_latency[class].observe(lat);
                    class_queueing_sum[class] += delay;
                    if lat > request.sla.deadline_seconds() {
                        *deadline_misses += 1;
                        class_misses[class] += 1;
                    }
                }
            }};
        }

        loop {
            // Admit everything the window allows at the current instant.
            while queue.len() > 0 && ctx.max_inflight.is_none_or(|w| inflight.len() < w) {
                let head = queue.pick(ctx.policy);
                if ctx.recovery.shed {
                    // Every admitted completion is ≥ max(now, earliest free
                    // resource); the reply must leave by `deadline − WAN`.
                    let request = &requests[head as usize];
                    let bound = now.max(dispatch.earliest_free());
                    if bound
                        > request.arrival + request.sla.deadline_seconds() - wan2[head as usize]
                    {
                        queue.remove(head, requests);
                        robustness.shed += 1;
                        continue;
                    }
                }
                queue.coalesce(head, ctx.max_batch, members);
                for &m in members.iter() {
                    queue.remove(m, requests);
                }
                let head = requests[head as usize];
                let combined = head.batch * members.len();
                let graph = graphs
                    .entry((head.model, combined))
                    .or_insert_with(|| Arc::new(head.model.graph(combined)));
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                // Adaptive loop: when the estimated effective rates leave the
                // hysteresis band (bounded by `max_replans`), re-materialise
                // the believed cluster so the cache re-plans on the belief.
                // A stale belief (availability epoch flipped underneath it)
                // is rebuilt without re-quantising and without burning a
                // re-plan: the levels did not move, the base did.
                if let Some(cfg) = ctx.adaptive.as_ref() {
                    let hysteresis =
                        adaptive.replans < cfg.max_replans && adaptive.should_replan(cfg);
                    if hysteresis || (adaptive.stale && adaptive.active) {
                        if hysteresis {
                            adaptive.replans += 1;
                        }
                        let belief_base: &Cluster = epoch_cluster.as_ref().unwrap_or(base);
                        adaptive.rebuild_believed(belief_base, hysteresis, cfg)?;
                    }
                }
                if let Some(believed) = adaptive.belief() {
                    key.cluster_fingerprint = believed.fingerprint();
                }
                let plan_cluster: &Cluster = match adaptive.belief() {
                    Some(believed) => believed,
                    None => epoch_cluster.as_ref().unwrap_or(base),
                };
                let (plan, hit) =
                    cache.plan_keyed(key, ctx.strategy, graph, plan_cluster, ctx.leader)?;
                if hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                }
                // Execution stays on the drifting truth; the observer feeds
                // the per-node effective-rate estimates.
                let completion = dispatch.estimate_full(
                    plan.as_ref(),
                    base,
                    *now,
                    slowdowns,
                    drift,
                    ctx.adaptive.as_ref().map(|cfg| (cfg, &mut *adaptive)),
                )?;
                let mask = if ctx.kill {
                    plan_node_mask(plan.as_ref())
                } else {
                    0
                };
                if ctx.max_inflight.is_some() {
                    inflight.push(Reverse(Departure {
                        at: completion,
                        seq: *departure_seq,
                    }));
                    *departure_seq += 1;
                }
                let members_start = pending_members.len() as u32;
                pending_members.extend_from_slice(members);
                pending.push_back(PendingBatch {
                    admitted: *now,
                    completion,
                    hedge_completion: f64::INFINITY,
                    mask,
                    hedge_mask: 0,
                    members_start,
                    members_len: members.len() as u32,
                    primary_alive: true,
                    hedge_alive: false,
                });
                *batches += 1;
            }

            let work_left = *next_arrival < requests.len() || queue.len() > 0;
            // Remaining down-flips can still kill pending work, so the
            // clock keeps walking events while any pending batch outlives
            // the next *down* event (up events never kill).
            let next_down = if ctx.kill {
                events[*next_event..].iter().find(|e| !e.up)
            } else {
                None
            };
            let kills_pending = next_down.is_some_and(|e| {
                pending
                    .iter()
                    .any(|b| b.primary_alive && b.completion > e.time)
            });
            if !work_left && !kills_pending {
                // Quiet until the next delivery: no remaining down-flip can
                // touch what's pending, so its completions are settled —
                // finalise in admission order and yield to the router.
                while let Some(b) = pending.pop_front() {
                    if b.alive() {
                        finalise!(b);
                    }
                }
                return Ok(());
            }

            // Blocked: wait for the next ready delivery, estimated
            // completion (when the window is full) or kill-relevant flip,
            // whichever comes first.
            let mut t = f64::INFINITY;
            if *next_arrival < requests.len() {
                t = ready[*next_arrival];
            }
            if queue.len() > 0 {
                let Reverse(soonest) = inflight
                    .peek()
                    .expect("a full admission window implies in-flight batches");
                t = t.min(soonest.at);
            }
            if kills_pending {
                let down = next_down.expect("kills_pending implies a down event");
                t = t.min(down.time + 0.0);
            }
            if t > t_end {
                return Ok(()); // Barrier: resume here next round.
            }
            // Replay timeline events due by then; under kill semantics a
            // down-flip kills every pending batch whose plan touches the
            // node and whose completion lies beyond the flip.
            while *next_event < events.len() && events[*next_event].time <= t {
                let event = events[*next_event];
                let c = epoch_cluster
                    .as_mut()
                    .expect("events imply an epoch cluster");
                c.set_available(event.node, event.up)?;
                key.cluster_fingerprint = c.fingerprint();
                *fingerprint = c.fingerprint();
                *epoch += 1;
                *next_event += 1;
                if adaptive.active {
                    // The belief was derived from the old availability; the
                    // next admission rebuilds it from the new epoch cluster.
                    adaptive.stale = true;
                }
                if !ctx.kill || event.up {
                    continue;
                }
                if let Some(cfg) = ctx.adaptive.as_ref() {
                    adaptive.observe_kill(event.node.0, cfg);
                }
                let bit = 1u64 << (event.node.0 as u64 & 63);
                for b in pending.iter_mut() {
                    if !(b.primary_alive && b.completion > event.time && b.mask & bit != 0) {
                        continue;
                    }
                    b.primary_alive = false;
                    robustness.killed += u64::from(b.members_len);
                    let span = b.members_start as usize..(b.members_start + b.members_len) as usize;
                    for &m in &pending_members[span] {
                        let i = m as usize;
                        let k = attempts_in[i] + 1;
                        let retryable = ctx.recovery.retry.is_some_and(|r| k <= r.max_attempts);
                        if !retryable {
                            robustness.lost += 1;
                            continue;
                        }
                        let policy = ctx.recovery.retry.expect("retryable implies a policy");
                        let backoff =
                            policy.backoff_base_s * policy.backoff_factor.powi(k as i32 - 1);
                        let unit = fnv64(&[policy.seed, u64::from(global[i]), u64::from(k)]) as f64
                            / u64::MAX as f64;
                        let release = event.time + backoff * (1.0 + policy.jitter_frac * unit);
                        if ctx.recovery.deadline_abort
                            && release > requests[i].arrival + requests[i].sla.deadline_seconds()
                        {
                            robustness.aborted += 1;
                        } else {
                            // Back to the router, which re-routes it away
                            // from this cluster next round.
                            retry_out.push(FleetRetry {
                                global: global[i],
                                release,
                                attempts: k,
                            });
                            robustness.retried += 1;
                            if event.time < *first_retry {
                                *first_retry = event.time + 0.0;
                            }
                        }
                    }
                }
            }
            if t > *now {
                *now = t;
            }
            while let Some(&Reverse(soonest)) = inflight.peek() {
                if soonest.at <= *now {
                    inflight.pop();
                } else {
                    break;
                }
            }
            // Finalise batches the clock has passed, front-first so the
            // observation order stays the admission order.
            while let Some(front) = pending.front() {
                if !front.alive() {
                    pending.pop_front();
                    continue;
                }
                if front.effective_completion() <= *now {
                    let b = pending.pop_front().expect("front exists");
                    finalise!(b);
                } else {
                    break;
                }
            }
            while *next_arrival < requests.len() && ready[*next_arrival] <= *now {
                let idx = *next_arrival as u32;
                let request = &requests[*next_arrival];
                let deadline =
                    request.arrival + request.sla.deadline_seconds() - wan2[*next_arrival];
                queue.push_with_deadline(idx, requests, ctx.policy, deadline);
                *next_arrival += 1;
            }
        }
    }
}

/// The bounded-memory result of a fleet run: counts, the fleet makespan,
/// exact-merge latency tails (WAN round trips included) and per-class
/// aggregates. Everything is `Copy`, like [`crate::ServingSummary`], so the
/// audited steady-state pass returns without allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSummary {
    /// Total requests served across the fleet.
    pub requests: usize,
    /// Clusters in the fleet.
    pub clusters: usize,
    /// Router rounds executed (arrival-bearing windows plus the drain).
    pub rounds: usize,
    /// Batches admitted across all clusters.
    pub batches: usize,
    /// Timeline events applied across all clusters.
    pub epochs_applied: usize,
    /// Estimated completion time of the last batch anywhere, seconds.
    pub makespan: f64,
    /// Fleet-wide latency tail (queueing + service + WAN round trip;
    /// p50/p95/p99 at histogram bin resolution, count and mean exact).
    pub latency: LatencySummary,
    /// Worst fleet latency, seconds (exact).
    pub max_latency: f64,
    /// Mean queueing delay over all requests, seconds (exact; local
    /// queueing, WAN excluded).
    pub mean_queueing_delay: f64,
    /// Worst queueing delay, seconds (exact).
    pub max_queueing_delay: f64,
    /// Requests whose fleet latency missed their class deadline.
    pub deadline_misses: usize,
    /// Per-class aggregates indexed by [`SlaClass::priority`]; `None` for
    /// classes absent from the stream.
    pub per_class: [Option<SlaClassReport>; 3],
    /// Plan-cache traffic summed over the per-cluster caches.
    pub plan_cache: PlanCacheStats,
    /// Requests routed to the most-loaded cluster (routing balance signal).
    pub busiest_cluster_requests: usize,
    /// Requests routed to the least-loaded cluster.
    pub idlest_cluster_requests: usize,
    /// Mean WAN round trip paid per request, seconds (0 when all traffic
    /// stays at its regional ingress).
    pub mean_wan_round_trip: f64,
    /// Offered/completed/dropped accounting including recovery traffic.
    /// Trivially all-completed when the config enables no failure handling.
    pub robustness: RobustnessStats,
    /// Adaptive-loop accounting summed over cluster workers: re-plans
    /// triggered, rate observations fed, and dynamic dispatch energy.
    pub drift: DriftStats,
    /// Virtual time of the first kill that produced a re-routed retry
    /// anywhere in the fleet (`INFINITY` when nothing was retried).
    pub time_to_first_retry: f64,
    /// Latency tail over completions that needed at least one retry
    /// (recovery cost); `None` when no retried request completed.
    pub recovery_latency: Option<LatencySummary>,
}

impl FleetSummary {
    /// Fraction of all requests that missed their deadline.
    pub fn sla_miss_rate(&self) -> f64 {
        self.deadline_misses as f64 / self.requests as f64
    }

    /// The report for one class, if any of its requests were served.
    pub fn class(&self, class: SlaClass) -> Option<&SlaClassReport> {
        self.per_class[class.priority() as usize].as_ref()
    }

    /// Completed requests per second of simulated time (count over the
    /// estimated makespan).
    pub fn requests_per_second(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / self.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HidpStrategy;
    use hidp_platform::presets;

    /// A two-region stream mixing two models and all SLA classes.
    fn regional_burst(count: usize) -> Vec<FleetRequest> {
        (0..count)
            .map(|i| {
                let model = if i % 2 == 0 {
                    WorkloadModel::EfficientNetB0
                } else {
                    WorkloadModel::InceptionV3
                };
                let request =
                    ServingRequest::new(model, i as f64 * 0.05).with_sla(SlaClass::ALL[i % 3]);
                FleetRequest::new(request, i % 2)
            })
            .collect()
    }

    #[test]
    fn every_policy_serves_every_request() {
        let fleet = presets::generated_fleet(4, 2).unwrap();
        let strategy = HidpStrategy::new();
        let requests = regional_burst(120);
        for routing in [
            RoutingPolicy::Random { seed: 7 },
            RoutingPolicy::StaticHash,
            RoutingPolicy::LeastLoaded,
            RoutingPolicy::Locality,
        ] {
            let summary = FleetScenario::new(requests.clone())
                .with_routing(routing)
                .with_max_inflight(Some(4))
                .run_streaming(&strategy, &fleet, NodeIndex(1))
                .unwrap_or_else(|e| panic!("{} failed: {e}", routing.name()));
            assert_eq!(summary.requests, 120, "{}", routing.name());
            assert_eq!(summary.batches, 120, "no batching configured");
            assert_eq!(summary.clusters, 4);
            assert!(summary.rounds >= 1);
            assert!(summary.makespan > 0.0);
            assert_eq!(summary.latency.count, 120);
            assert!(summary.busiest_cluster_requests >= summary.idlest_cluster_requests);
            assert!(summary.requests_per_second() > 0.0);
            // All three SLA classes are present in the stream.
            for class in SlaClass::ALL {
                assert!(summary.class(class).is_some(), "{}", routing.name());
            }
        }
    }

    #[test]
    fn locality_pays_less_wan_than_random_and_least_loaded_spreads() {
        let fleet = presets::generated_fleet(4, 2).unwrap();
        let strategy = HidpStrategy::new();
        let requests = regional_burst(120);
        let run = |routing: RoutingPolicy| {
            FleetScenario::new(requests.clone())
                .with_routing(routing)
                .run_streaming(&strategy, &fleet, NodeIndex(1))
                .unwrap()
        };
        let random = run(RoutingPolicy::Random { seed: 1 });
        let locality = run(RoutingPolicy::Locality);
        let least_loaded = run(RoutingPolicy::LeastLoaded);
        assert!(
            locality.mean_wan_round_trip < random.mean_wan_round_trip,
            "locality {} vs random {}",
            locality.mean_wan_round_trip,
            random.mean_wan_round_trip
        );
        // Load-aware routing never starves a cluster of this even stream.
        assert!(least_loaded.idlest_cluster_requests > 0);
    }

    #[test]
    fn timeline_flip_rekeys_static_hash_routing() {
        let fleet = presets::generated_fleet(3, 1).unwrap();
        let strategy = HidpStrategy::new();
        // One sticky key: identical requests hash to one cluster until a
        // fingerprint changes.
        let requests: Vec<FleetRequest> = (0..40)
            .map(|i| {
                FleetRequest::new(
                    ServingRequest::new(WorkloadModel::EfficientNetB0, i as f64 * 0.5),
                    0,
                )
            })
            .collect();
        let key = request_key(&requests[0]);
        let rendezvous = |fingerprints: &[u64]| {
            let mut best = 0usize;
            let mut best_score = 0u64;
            for (c, &fp) in fingerprints.iter().enumerate() {
                let score = fnv64(&[key, fp]);
                if c == 0 || score > best_score {
                    best = c;
                    best_score = score;
                }
            }
            best
        };
        let pristine: Vec<u64> = fleet.clusters().iter().map(|c| c.fingerprint()).collect();
        let winner = rendezvous(&pristine);
        // Find a (cluster, node) whose failure moves the rendezvous winner;
        // the search is deterministic, so the test either always finds one
        // or fails loudly.
        let flip = (0..fleet.len())
            .flat_map(|c| (0..fleet.clusters()[c].len()).map(move |n| (c, n)))
            .find(|&(c, n)| {
                let mut fingerprints = pristine.clone();
                let mut failed = fleet.clusters()[c].clone();
                failed.set_available(NodeIndex(n), false).unwrap();
                fingerprints[c] = failed.fingerprint();
                rendezvous(&fingerprints) != winner
            })
            .expect("some single-node failure moves the rendezvous winner");

        let static_run = |timelines: Vec<ClusterTimeline>| {
            let mut scratch = FleetScratch::new();
            FleetScenario::new(requests.clone())
                .with_routing(RoutingPolicy::StaticHash)
                .with_timelines(timelines)
                .run_streaming_in(
                    &strategy,
                    &fleet,
                    NodeIndex(1),
                    &ParallelSweep::new(1),
                    &mut scratch,
                )
                .unwrap();
            scratch.cluster_requests()
        };
        let stable = static_run(Vec::new());
        // All requests share one key, so exactly one cluster serves them.
        assert_eq!(stable.iter().filter(|&&n| n > 0).count(), 1);
        assert_eq!(stable[winner], 40);
        // Fail that node mid-stream: the fingerprint flip re-keys the
        // remaining traffic exactly as it re-keys the cluster's plans.
        let mut timelines = vec![ClusterTimeline::new(); 3];
        timelines[flip.0] = ClusterTimeline::new()
            .node_down(10.0, NodeIndex(flip.1))
            .unwrap();
        let rekeyed = static_run(timelines);
        assert_ne!(stable, rekeyed, "epoch flip must re-key routing");
        assert!(rekeyed[winner] < 40, "post-flip traffic moved: {rekeyed:?}");
        assert_eq!(rekeyed.iter().sum::<usize>(), 40);
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        let fleet = presets::generated_fleet(2, 1).unwrap();
        let strategy = HidpStrategy::new();
        let ok = regional_burst(4)
            .into_iter()
            .map(|mut r| {
                r.region = 0;
                r
            })
            .collect::<Vec<_>>();
        // Empty scenario.
        assert!(FleetScenario::new(Vec::new())
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .is_err());
        // Region outside the fleet.
        let mut bad_region = ok.clone();
        bad_region[1].region = 5;
        assert!(FleetScenario::new(bad_region)
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .is_err());
        // Timeline count mismatch.
        assert!(FleetScenario::new(ok.clone())
            .with_timelines(vec![ClusterTimeline::new()])
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .is_err());
        // Non-positive round length.
        assert!(FleetScenario::new(ok.clone())
            .with_round_seconds(0.0)
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .is_err());
        // Leader missing from a cluster.
        assert!(FleetScenario::new(ok)
            .run_streaming(&strategy, &fleet, NodeIndex(64))
            .is_err());
    }

    #[test]
    fn no_fault_robust_fleet_is_bit_identical_to_legacy() {
        let fleet = presets::generated_fleet(4, 2).unwrap();
        let strategy = HidpStrategy::new();
        let requests = regional_burst(80);
        for routing in [
            RoutingPolicy::LeastLoaded,
            RoutingPolicy::Locality,
            RoutingPolicy::Random { seed: 11 },
        ] {
            let legacy = FleetScenario::new(requests.clone())
                .with_routing(routing)
                .with_max_inflight(Some(3))
                .run_streaming(&strategy, &fleet, NodeIndex(1))
                .unwrap();
            // Kill semantics armed, full recovery enabled — but no fault
            // timeline ever fires, so the failure-aware loop must
            // reproduce the legacy run bit for bit.
            let robust = FleetScenario::new(requests.clone())
                .with_routing(routing)
                .with_max_inflight(Some(3))
                .with_failure_mode(FailureMode::Kill)
                .with_recovery(RecoveryPolicy::standard())
                .run_streaming(&strategy, &fleet, NodeIndex(1))
                .unwrap();
            assert_eq!(legacy, robust, "{}", routing.name());
            assert_eq!(robust.robustness, RobustnessStats::all_completed(80));
        }
    }

    #[test]
    fn fleet_failover_reroutes_killed_work_to_surviving_clusters() {
        // Two single-region clusters: locality pins region-0 traffic to
        // cluster 0, which blacks out at t = 0.01 and never recovers.
        let fleet = presets::generated_fleet(2, 2).unwrap();
        let strategy = HidpStrategy::new();
        let nodes = fleet.clusters()[0].len();
        let mut timeline = ClusterTimeline::new();
        for n in 0..nodes {
            timeline = timeline.node_down(0.01, NodeIndex(n)).unwrap();
        }
        // Three region-0 requests: few enough that locality's per-round
        // route-cost hint never spills one to the remote cluster.
        let mut requests: Vec<FleetRequest> = (0..3)
            .map(|_| FleetRequest::new(ServingRequest::new(WorkloadModel::ResNet152, 0.0), 0))
            .collect();
        // Two region-1 requests survive on cluster 1 either way, so the
        // no-recovery baseline still has a latency distribution.
        for _ in 0..2 {
            requests.push(FleetRequest::new(
                ServingRequest::new(WorkloadModel::InceptionV3, 0.0),
                1,
            ));
        }
        let run = |recovery: RecoveryPolicy| {
            FleetScenario::new(requests.clone())
                .with_routing(RoutingPolicy::Locality)
                .with_timelines(vec![timeline.clone(), ClusterTimeline::new()])
                .with_failure_mode(FailureMode::Kill)
                .with_recovery(recovery)
                .run_streaming(&strategy, &fleet, NodeIndex(1))
                .unwrap()
        };

        let abandoned = run(RecoveryPolicy::default());
        assert_eq!(abandoned.robustness.offered, 5);
        assert_eq!(abandoned.robustness.killed, 3);
        assert_eq!(
            abandoned.robustness.lost, 3,
            "no recovery: kills are permanent"
        );
        assert_eq!(abandoned.robustness.completed, 2);
        assert_eq!(abandoned.latency.count, 2);
        assert!(abandoned.robustness.accounts_for_every_request());

        let recovered = run(RecoveryPolicy::standard());
        assert_eq!(recovered.robustness.offered, 5);
        assert_eq!(recovered.robustness.killed, 3);
        assert_eq!(recovered.robustness.retried, 3, "every kill re-routes");
        assert_eq!(recovered.robustness.lost, 0);
        assert_eq!(recovered.robustness.completed, 5);
        assert_eq!(recovered.latency.count, 5);
        assert!(recovered.robustness.accounts_for_every_request());
        // The failover hop pays the cross-region WAN round trip the
        // locality-routed originals avoided.
        assert!(
            recovered.mean_wan_round_trip > abandoned.mean_wan_round_trip,
            "failover pays WAN: {} vs {}",
            recovered.mean_wan_round_trip,
            abandoned.mean_wan_round_trip
        );
    }

    #[test]
    fn wan_degradation_and_stragglers_degrade_the_fleet() {
        let fleet = presets::generated_fleet(3, 2).unwrap();
        let strategy = HidpStrategy::new();
        let requests = regional_burst(40);
        let base = FleetScenario::new(requests.clone())
            .with_routing(RoutingPolicy::Random { seed: 3 })
            .with_failure_mode(FailureMode::Kill)
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .unwrap();
        // Every delivery inside the window pays 4x its WAN round trip.
        let degraded = FleetScenario::new(requests.clone())
            .with_routing(RoutingPolicy::Random { seed: 3 })
            .with_failure_mode(FailureMode::Kill)
            .with_wan_degradations(vec![WanDegradation {
                start: 0.0,
                end: 1e6,
                factor: 4.0,
            }])
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .unwrap();
        assert!(
            degraded.mean_wan_round_trip > 3.9 * base.mean_wan_round_trip,
            "degraded {} vs base {}",
            degraded.mean_wan_round_trip,
            base.mean_wan_round_trip
        );
        assert_eq!(degraded.robustness, RobustnessStats::all_completed(40));
        // Straggler windows on every node stretch estimated completions.
        let slowdowns: Vec<Vec<SlowdownWindow>> = fleet
            .clusters()
            .iter()
            .map(|cluster| {
                (0..cluster.len())
                    .map(|n| SlowdownWindow {
                        node: NodeIndex(n),
                        start: 0.0,
                        end: 1e6,
                        factor: 3.0,
                    })
                    .collect()
            })
            .collect();
        let straggling = FleetScenario::new(requests.clone())
            .with_routing(RoutingPolicy::Random { seed: 3 })
            .with_slowdowns(slowdowns)
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .unwrap();
        assert!(
            straggling.makespan > base.makespan,
            "stragglers {} vs base {}",
            straggling.makespan,
            base.makespan
        );
    }

    #[test]
    fn fleet_rejects_serving_tier_hedging_and_malformed_fault_inputs() {
        let fleet = presets::generated_fleet(2, 1).unwrap();
        let strategy = HidpStrategy::new();
        let ok = regional_burst(4)
            .into_iter()
            .map(|mut r| {
                r.region = 0;
                r
            })
            .collect::<Vec<_>>();
        // Hedging is a serving-tier policy; the fleet's failover response
        // is re-routing retries.
        let hedged = RecoveryPolicy {
            hedge_premium: true,
            ..RecoveryPolicy::default()
        };
        assert!(FleetScenario::new(ok.clone())
            .with_recovery(hedged)
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .is_err());
        // Retry backoff must be positive.
        let bad_retry = RecoveryPolicy {
            retry: Some(crate::RetryPolicy {
                backoff_base_s: -1.0,
                ..crate::RetryPolicy::default()
            }),
            ..RecoveryPolicy::default()
        };
        assert!(FleetScenario::new(ok.clone())
            .with_recovery(bad_retry)
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .is_err());
        // Slowdown shape must match the fleet; windows must name real nodes.
        assert!(FleetScenario::new(ok.clone())
            .with_slowdowns(vec![Vec::new()])
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .is_err());
        let rogue = SlowdownWindow {
            node: NodeIndex(99),
            start: 0.0,
            end: 1.0,
            factor: 2.0,
        };
        assert!(FleetScenario::new(ok.clone())
            .with_slowdowns(vec![vec![rogue], Vec::new()])
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .is_err());
        // WAN degradation windows must be well-formed.
        assert!(FleetScenario::new(ok)
            .with_wan_degradations(vec![WanDegradation {
                start: 5.0,
                end: 1.0,
                factor: 2.0,
            }])
            .run_streaming(&strategy, &fleet, NodeIndex(1))
            .is_err());
    }
}
