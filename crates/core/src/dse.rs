//! The Design Space Exploration (DSE) agent.
//!
//! Both the global and the local partitioner consult a DSE agent to find the
//! optimal partitioning *mode* (model vs data) and the corresponding
//! partitioning points (paper §III, Algorithm 1 lines 4–6 and 8–10): the
//! agent runs both dynamic-programming searches over the same resource
//! vector and returns whichever mode yields the lower estimated latency,
//! `Θ = min(Θ_ω, Θ_σ)`.

use crate::dp::{
    data_partition_search, model_partition_search, ChainSegment, DataSearch, ModelSearch,
    WorkloadSummary,
};
use crate::system_model::Resource;
use crate::CoreError;
use hidp_dnn::PartitionMode;
use serde::{Deserialize, Serialize};

/// The decision returned by the DSE agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// The selected partitioning mode.
    pub mode: PartitionMode,
    /// The model-partitioning search result (present when it was feasible).
    pub model: Option<ModelSearch>,
    /// The data-partitioning search result (present when it was feasible).
    pub data: Option<DataSearch>,
    /// Estimated latency of the selected mode, in seconds (`Θ`).
    pub latency: f64,
}

impl Decision {
    /// Estimated latency of the mode that was *not* selected, if it was
    /// explored. Useful for ablation studies.
    pub fn rejected_latency(&self) -> Option<f64> {
        match self.mode {
            PartitionMode::Model => self.data.as_ref().map(|d| d.latency),
            PartitionMode::Data => self.model.as_ref().map(|m| m.latency),
        }
    }
}

/// Exploration policy: which modes the agent is allowed to consider.
/// HiDP uses [`DsePolicy::Hybrid`]; the forced variants exist for the
/// ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DsePolicy {
    /// Consider both modes and pick the faster one (HiDP default).
    #[default]
    Hybrid,
    /// Only consider model (layer-wise) partitioning.
    ModelOnly,
    /// Only consider data (input-wise) partitioning.
    DataOnly,
}

/// The DSE agent. Stateless: each call explores one workload over one
/// resource vector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DseAgent {
    /// The exploration policy.
    pub policy: DsePolicy,
}

impl DseAgent {
    /// Creates an agent with the default hybrid policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an agent with an explicit policy.
    pub fn with_policy(policy: DsePolicy) -> Self {
        Self { policy }
    }

    /// Explores partitioning of the workload described by `segments` /
    /// `workload` over `resources` and returns the best decision.
    ///
    /// `max_parts` bounds the data-partitioning parallelism `σ` (use the
    /// number of resources for no extra bound).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when no mode produces a feasible
    /// result (e.g. empty resource vector).
    pub fn explore(
        &self,
        segments: &[ChainSegment],
        resources: &[Resource],
        workload: WorkloadSummary,
        max_parts: usize,
    ) -> Result<Decision, CoreError> {
        let model = if self.policy != DsePolicy::DataOnly {
            model_partition_search(segments, resources, workload).ok()
        } else {
            None
        };
        let data = if self.policy != DsePolicy::ModelOnly {
            data_partition_search(resources, workload, max_parts).ok()
        } else {
            None
        };

        let model_latency = model.as_ref().map(|m| m.latency).unwrap_or(f64::INFINITY);
        let data_latency = data.as_ref().map(|d| d.latency).unwrap_or(f64::INFINITY);
        if !model_latency.is_finite() && !data_latency.is_finite() {
            return Err(CoreError::Infeasible {
                what: "neither partitioning mode produced a feasible plan".into(),
            });
        }
        let (mode, latency) = if model_latency <= data_latency {
            (PartitionMode::Model, model_latency)
        } else {
            (PartitionMode::Data, data_latency)
        };
        Ok(Decision {
            mode,
            model,
            data,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_platform::NodeIndex;

    fn resource(node: usize, rate: f64, comm_rate: f64) -> Resource {
        Resource {
            node: NodeIndex(node),
            processor: None,
            name: format!("r{node}"),
            rate,
            comm_rate,
        }
    }

    fn segments(count: usize, flops: u64) -> Vec<ChainSegment> {
        (0..count)
            .map(|_| ChainSegment {
                flops,
                boundary_bytes: 200_000,
            })
            .collect()
    }

    #[test]
    fn hybrid_picks_data_for_heavy_parallel_friendly_work() {
        // Lots of compute, cheap sync: data partitioning across two equal
        // nodes halves the compute time.
        let agent = DseAgent::new();
        let res = vec![resource(0, 1e9, f64::INFINITY), resource(1, 1e9, 80e6)];
        let workload = WorkloadSummary {
            input_bytes: 600_000,
            output_bytes: 4_000,
            flops: 40_000_000_000,
            sync_bytes: 100_000,
        };
        let decision = agent
            .explore(&segments(10, 4_000_000_000), &res, workload, 4)
            .unwrap();
        assert_eq!(decision.mode, PartitionMode::Data);
        assert!(decision.latency < 40.0);
        assert!(decision.rejected_latency().is_some());
    }

    #[test]
    fn hybrid_picks_model_when_sync_is_prohibitive() {
        // Small activations but enormous halo traffic make data partitioning
        // unattractive; model mode (single block on the fastest node) wins.
        let agent = DseAgent::new();
        let res = vec![resource(0, 2e9, f64::INFINITY), resource(1, 1e9, 10e6)];
        let workload = WorkloadSummary {
            input_bytes: 100_000,
            output_bytes: 4_000,
            flops: 1_000_000_000,
            sync_bytes: 200_000_000,
        };
        let decision = agent
            .explore(&segments(6, 166_000_000), &res, workload, 4)
            .unwrap();
        assert_eq!(decision.mode, PartitionMode::Model);
    }

    #[test]
    fn forced_policies_restrict_the_mode() {
        let res = vec![resource(0, 1e9, f64::INFINITY), resource(1, 1e9, 80e6)];
        let workload = WorkloadSummary {
            input_bytes: 600_000,
            output_bytes: 4_000,
            flops: 40_000_000_000,
            sync_bytes: 100_000,
        };
        let segs = segments(10, 4_000_000_000);

        let model_only = DseAgent::with_policy(DsePolicy::ModelOnly)
            .explore(&segs, &res, workload, 4)
            .unwrap();
        assert_eq!(model_only.mode, PartitionMode::Model);
        assert!(model_only.data.is_none());

        let data_only = DseAgent::with_policy(DsePolicy::DataOnly)
            .explore(&segs, &res, workload, 4)
            .unwrap();
        assert_eq!(data_only.mode, PartitionMode::Data);
        assert!(data_only.model.is_none());

        // The hybrid decision is never worse than either forced policy.
        let hybrid = DseAgent::new().explore(&segs, &res, workload, 4).unwrap();
        assert!(hybrid.latency <= model_only.latency + 1e-12);
        assert!(hybrid.latency <= data_only.latency + 1e-12);
    }

    #[test]
    fn empty_resources_are_infeasible() {
        let agent = DseAgent::new();
        let workload = WorkloadSummary {
            input_bytes: 1,
            output_bytes: 1,
            flops: 1,
            sync_bytes: 0,
        };
        assert!(agent.explore(&segments(2, 1), &[], workload, 2).is_err());
    }
}
