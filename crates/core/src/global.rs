//! The global DNN partitioner: decides how one inference request is split
//! across the edge *cluster* (paper §III, "Global partitioner").

use crate::dp::{ChainSegment, WorkloadSummary};
use crate::dse::{Decision, DseAgent};
use crate::system_model::SystemModel;
use crate::CoreError;
use hidp_dnn::partition::{data_partition, even_fractions};
use hidp_dnn::{DnnGraph, PartitionMode};
use hidp_platform::{Cluster, NodeIndex};
use serde::{Deserialize, Serialize};

/// What a node receives from the global partitioner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShareKind {
    /// A contiguous block of layers (model partitioning); positions are
    /// topological node indices into the graph.
    Block {
        /// First layer (inclusive).
        first: usize,
        /// Last layer (inclusive).
        last: usize,
    },
    /// A fraction of the input data (data partitioning).
    DataPart {
        /// Fraction of the input processed by this node.
        fraction: f64,
    },
}

/// One node's portion of the global assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalShare {
    /// The node executing this share.
    pub node: NodeIndex,
    /// What the node executes.
    pub kind: ShareKind,
    /// Flops the node must execute for this share.
    pub flops: u64,
    /// Bytes shipped *to* the node before it can start (activation block or
    /// input slice).
    pub input_bytes: u64,
    /// Bytes the node produces (forwarded down the pipeline or returned to
    /// the leader).
    pub output_bytes: u64,
    /// Bytes of halo synchronisation with sibling shares (data mode only).
    pub sync_bytes: u64,
}

/// The complete global decision for one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalAssignment {
    /// The selected partitioning mode.
    pub mode: PartitionMode,
    /// Per-node shares. For model mode these are pipeline stages in order;
    /// for data mode they are parallel parts.
    pub shares: Vec<GlobalShare>,
    /// Latency estimated by the DSE agent, in seconds.
    pub estimated_latency: f64,
    /// The raw DSE decision (kept for ablation and tracing).
    pub decision: Decision,
}

impl GlobalAssignment {
    /// Nodes participating in this assignment.
    pub fn nodes(&self) -> Vec<NodeIndex> {
        self.shares.iter().map(|s| s.node).collect()
    }

    /// Total flops across all shares.
    pub fn total_flops(&self) -> u64 {
        self.shares.iter().map(|s| s.flops).sum()
    }
}

/// Converts a graph into DP chain segments delimited by its cut points.
///
/// Runs in O(number of segments): each segment's flops come from the
/// graph's construction-time prefix sums ([`DnnGraph::span_flops`]) instead
/// of re-summing `graph.cost(pos)` over `first..=boundary` per segment,
/// which made this walk quadratic in the layer count for chain-shaped
/// models (every layer a cut point).
pub fn chain_segments(graph: &DnnGraph) -> Vec<ChainSegment> {
    let mut boundaries: Vec<usize> = graph.cut_points().iter().map(|id| id.0).collect();
    boundaries.push(graph.len() - 1);
    let mut segments = Vec::with_capacity(boundaries.len());
    let mut first = 0usize;
    for boundary in boundaries {
        if boundary < first {
            continue;
        }
        let boundary_bytes = graph
            .cost(hidp_dnn::NodeId(boundary))
            .expect("position is inside the graph")
            .output_bytes;
        segments.push(ChainSegment {
            flops: graph.span_flops(first, boundary),
            boundary_bytes,
        });
        first = boundary + 1;
    }
    segments
}

/// Builds the [`WorkloadSummary`] the DP searches consume for a whole graph.
pub fn workload_summary(graph: &DnnGraph) -> WorkloadSummary {
    // The per-boundary halo traffic is what the data-partition model reports
    // for a two-way split's edge part.
    let sync_bytes = data_partition(graph, &even_fractions(2))
        .map(|p| p.parts[0].sync_bytes)
        .unwrap_or(0);
    WorkloadSummary {
        input_bytes: graph.input_shape().bytes(),
        output_bytes: graph.output_shape().bytes(),
        flops: graph.total_flops(),
        sync_bytes,
    }
}

/// The global partitioner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalPartitioner {
    /// The DSE agent used to pick the mode and partition points.
    pub dse: DseAgent,
    /// Whether node rates account for *all* processors (HiDP) or only the
    /// framework-default processor, i.e. the GPU (global-only baselines).
    pub core_aware: bool,
    /// Upper bound on the data-partitioning parallelism `σ` (0 = number of
    /// available nodes).
    pub max_parts: usize,
}

impl GlobalPartitioner {
    /// Creates the HiDP global partitioner (core-aware, hybrid DSE).
    pub fn hidp() -> Self {
        Self {
            dse: DseAgent::new(),
            core_aware: true,
            max_parts: 0,
        }
    }

    /// Partitions `graph` over the available nodes of `cluster`, coordinated
    /// by `leader`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when the cluster has no available
    /// nodes or the DSE finds no feasible decision.
    pub fn partition(
        &self,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<GlobalAssignment, CoreError> {
        let model = SystemModel::new(graph, leader);
        let resources = if self.core_aware {
            model.global_resources(cluster)
        } else {
            model.global_resources_gpu_only(cluster)
        };
        if resources.is_empty() {
            return Err(CoreError::Infeasible {
                what: "no available nodes in the cluster".into(),
            });
        }
        let segments = chain_segments(graph);
        let workload = workload_summary(graph);
        let max_parts = if self.max_parts == 0 {
            resources.len()
        } else {
            self.max_parts.min(resources.len())
        };
        let decision = self
            .dse
            .explore(&segments, &resources, workload, max_parts)?;

        // Segment position → graph node position of each segment end.
        let mut seg_end_positions: Vec<usize> = graph.cut_points().iter().map(|id| id.0).collect();
        seg_end_positions.push(graph.len() - 1);

        let shares = match decision.mode {
            PartitionMode::Model => {
                let search = decision
                    .model
                    .as_ref()
                    .expect("model decision carries a model search");
                let mut shares = Vec::with_capacity(search.block_ends.len());
                let mut first_segment = 0usize;
                for (block_idx, (&seg_end, &resource_idx)) in search
                    .block_ends
                    .iter()
                    .zip(search.assignments.iter())
                    .enumerate()
                {
                    let first = if first_segment == 0 {
                        0
                    } else {
                        seg_end_positions[first_segment - 1] + 1
                    };
                    let last = seg_end_positions[seg_end];
                    let flops: u64 = segments[first_segment..=seg_end]
                        .iter()
                        .map(|s| s.flops)
                        .sum();
                    let input_bytes = if block_idx == 0 {
                        workload.input_bytes
                    } else {
                        segments[first_segment - 1].boundary_bytes
                    };
                    let output_bytes = segments[seg_end].boundary_bytes;
                    shares.push(GlobalShare {
                        node: resources[resource_idx].node,
                        kind: ShareKind::Block { first, last },
                        flops,
                        input_bytes,
                        output_bytes,
                        sync_bytes: 0,
                    });
                    first_segment = seg_end + 1;
                }
                shares
            }
            PartitionMode::Data => {
                let search = decision
                    .data
                    .as_ref()
                    .expect("data decision carries a data search");
                let sigma = search.shares.len();
                search
                    .shares
                    .iter()
                    .map(|share| {
                        let sync = if sigma == 1 { 0 } else { workload.sync_bytes };
                        GlobalShare {
                            node: resources[share.resource].node,
                            kind: ShareKind::DataPart {
                                fraction: share.fraction,
                            },
                            flops: (workload.flops as f64 * share.fraction) as u64 + sync / 4,
                            input_bytes: (workload.input_bytes as f64 * share.fraction).ceil()
                                as u64,
                            output_bytes: (workload.output_bytes as f64 * share.fraction).ceil()
                                as u64,
                            sync_bytes: sync,
                        }
                    })
                    .collect()
            }
        };

        Ok(GlobalAssignment {
            mode: decision.mode,
            estimated_latency: decision.latency,
            shares,
            decision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn chain_segments_cover_all_flops() {
        for model in WorkloadModel::ALL {
            let graph = model.graph(1);
            let segments = chain_segments(&graph);
            let total: u64 = segments.iter().map(|s| s.flops).sum();
            assert_eq!(total, graph.total_flops(), "{model}");
            assert_eq!(segments.len(), graph.cut_points().len() + 1, "{model}");
        }
    }

    #[test]
    fn workload_summary_matches_graph() {
        let graph = WorkloadModel::Vgg19.graph(1);
        let w = workload_summary(&graph);
        assert_eq!(w.flops, graph.total_flops());
        assert_eq!(w.input_bytes, graph.input_shape().bytes());
        assert_eq!(w.output_bytes, graph.output_shape().bytes());
        assert!(w.sync_bytes > 0);
    }

    #[test]
    fn hidp_partitioner_produces_consistent_shares() {
        let cluster = presets::paper_cluster();
        for model in WorkloadModel::ALL {
            let graph = model.graph(1);
            let assignment = GlobalPartitioner::hidp()
                .partition(&graph, &cluster, NodeIndex(0))
                .unwrap();
            assert!(!assignment.shares.is_empty(), "{model}");
            assert!(assignment.estimated_latency > 0.0);
            match assignment.mode {
                PartitionMode::Data => {
                    let fractions: f64 = assignment
                        .shares
                        .iter()
                        .map(|s| match s.kind {
                            ShareKind::DataPart { fraction } => fraction,
                            _ => panic!("data assignment must contain data shares"),
                        })
                        .sum();
                    assert!((fractions - 1.0).abs() < 1e-9, "{model}");
                }
                PartitionMode::Model => {
                    // Blocks must tile the graph.
                    let mut expected_first = 0usize;
                    for share in &assignment.shares {
                        match share.kind {
                            ShareKind::Block { first, last } => {
                                assert_eq!(first, expected_first, "{model}");
                                expected_first = last + 1;
                            }
                            _ => panic!("model assignment must contain blocks"),
                        }
                    }
                    assert_eq!(expected_first, graph.len(), "{model}");
                    assert_eq!(assignment.total_flops(), graph.total_flops(), "{model}");
                }
            }
        }
    }

    #[test]
    fn core_aware_rates_never_hurt_the_estimate() {
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::ResNet152.graph(1);
        let aware = GlobalPartitioner::hidp()
            .partition(&graph, &cluster, NodeIndex(0))
            .unwrap();
        let gpu_only = GlobalPartitioner {
            core_aware: false,
            ..GlobalPartitioner::hidp()
        }
        .partition(&graph, &cluster, NodeIndex(0))
        .unwrap();
        assert!(aware.estimated_latency <= gpu_only.estimated_latency + 1e-12);
    }

    #[test]
    fn unavailable_nodes_receive_no_work() {
        let mut cluster = presets::paper_cluster();
        cluster.set_available(NodeIndex(1), false).unwrap();
        cluster.set_available(NodeIndex(2), false).unwrap();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        let assignment = GlobalPartitioner::hidp()
            .partition(&graph, &cluster, NodeIndex(0))
            .unwrap();
        for share in &assignment.shares {
            assert_ne!(share.node, NodeIndex(1));
            assert_ne!(share.node, NodeIndex(2));
        }
    }

    #[test]
    fn single_node_cluster_degenerates_to_local_execution() {
        let cluster = presets::tx2_only();
        let graph = WorkloadModel::InceptionV3.graph(1);
        let assignment = GlobalPartitioner::hidp()
            .partition(&graph, &cluster, NodeIndex(0))
            .unwrap();
        assert_eq!(assignment.shares.len(), 1);
        assert_eq!(assignment.shares[0].node, NodeIndex(0));
    }
}
