//! The unified plan→simulate evaluation pipeline.
//!
//! Every experiment in the workspace — single-request latency/energy
//! comparisons (Fig. 5, Fig. 8), the dynamic workload (Fig. 6), the workload
//! mixes (Fig. 7) and hand-built plans (Fig. 1) — is the same three steps:
//! describe a workload, plan it with a strategy, simulate the plans on a
//! cluster. [`Scenario`] captures the workload description and [`Scenario::run`]
//! executes the whole pipeline, so benches, integration tests and examples
//! share one code path instead of re-implementing the plan/simulate/report
//! glue per layer.
//!
//! The pipeline is **zero-copy on its warm path**: scenarios hold
//! `Arc<DnnGraph>`s (a cyclic mix shares one graph per distinct model
//! instead of cloning layer vectors per repeat), planning returns
//! `Arc<ExecutionPlan>`s straight from the [`PlanCache`] (nothing is
//! deep-copied per request — plans are simulated in place), cache probes
//! reuse one [`crate::PlanKey`] across the request loop, and
//! [`Scenario::run_with_cache_in`] simulates into a caller-owned
//! [`SimScratch`] so sweep workers reuse buffers across runs. Setting
//! [`TraceDetail::Summary`] via [`Scenario::with_trace_detail`] additionally
//! skips the per-task trace for metric-only consumers. None of this changes
//! any result — evaluations are bit-identical to the deep-copy pipeline.
//!
//! ```
//! use hidp_core::{HidpStrategy, Scenario};
//! use hidp_dnn::zoo::WorkloadModel;
//! use hidp_platform::{presets, NodeIndex};
//!
//! # fn main() -> Result<(), hidp_core::CoreError> {
//! let cluster = presets::paper_cluster();
//! let evaluation = Scenario::single(WorkloadModel::EfficientNetB0.graph(1))
//!     .run(&HidpStrategy::new(), &cluster, NodeIndex(1))?;
//! println!("HiDP latency: {:.1} ms", evaluation.latency() * 1e3);
//! # Ok(())
//! # }
//! ```

use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::strategy::DistributedStrategy;
use crate::CoreError;
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex};
use hidp_sim::{
    simulate_stream_detailed, simulate_stream_in, ExecutionPlan, SimReport, SimScratch, TraceDetail,
};
use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::sync::Arc;

/// A planned request stream: per request, its arrival time and the shared
/// execution plan the cache resolved for it.
type PlannedStream = Vec<(f64, Arc<ExecutionPlan>)>;

/// A workload to evaluate: one or more inference requests with arrival
/// times, plus a label used in reports.
///
/// Graphs are held behind `Arc`, so cloning a scenario — or repeating one
/// model across a long stream — shares the graph data instead of copying
/// it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    label: String,
    requests: Vec<(f64, Arc<DnnGraph>)>,
    trace: TraceDetail,
}

impl Scenario {
    /// A single inference request arriving at time zero; labelled with the
    /// model name. Accepts an owned graph or an already-shared
    /// `Arc<DnnGraph>`.
    pub fn single(graph: impl Into<Arc<DnnGraph>>) -> Self {
        let graph = graph.into();
        let label = graph.name().to_string();
        Self {
            label,
            requests: vec![(0.0, graph)],
            trace: TraceDetail::Full,
        }
    }

    /// A stream of `(arrival_seconds, graph)` requests sharing the cluster.
    /// Accepts owned graphs or `Arc<DnnGraph>`s — pass `Arc`s (e.g. from
    /// `InferenceRequest::to_stream`) so repeated models share one graph.
    pub fn stream<G: Into<Arc<DnnGraph>>>(requests: Vec<(f64, G)>) -> Self {
        let requests: Vec<(f64, Arc<DnnGraph>)> = requests
            .into_iter()
            .map(|(arrival, graph)| (arrival, graph.into()))
            .collect();
        let label = match requests.as_slice() {
            [(_, only)] => only.name().to_string(),
            many => format!("stream[{}]", many.len()),
        };
        Self {
            label,
            requests,
            trace: TraceDetail::Full,
        }
    }

    /// Replaces the report label (builder style).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Sets how much of the execution trace simulations materialise
    /// (builder style). The default is [`TraceDetail::Full`]; grids and
    /// sweeps that only consume latencies/energy/makespan should pass
    /// [`TraceDetail::Summary`] — every metric stays bit-identical, only
    /// [`Evaluation::report`]`.records` is left empty.
    #[must_use]
    pub fn with_trace_detail(mut self, trace: TraceDetail) -> Self {
        self.trace = trace;
        self
    }

    /// The trace detail simulations of this scenario use.
    pub fn trace_detail(&self) -> TraceDetail {
        self.trace
    }

    /// The label used in evaluation reports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The requests of this scenario as `(arrival, graph)` pairs.
    pub fn requests(&self) -> &[(f64, Arc<DnnGraph>)] {
        &self.requests
    }

    /// Number of requests in the scenario.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the scenario has no requests (such a scenario cannot run).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Plans every request with `strategy` and simulates the plans on
    /// `cluster`, with requests arriving at `leader`.
    ///
    /// Planning consults a scenario-local [`PlanCache`], so a stream that
    /// cycles through a few distinct models plans each one exactly once.
    /// All strategies are deterministic, so memoization changes no result —
    /// only its cost. To reuse plans *across* scenarios (e.g. a rate sweep
    /// over the same models), pass a shared cache to
    /// [`Scenario::run_with_cache`] instead.
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario is empty, when planning any
    /// request fails, or when simulation fails.
    pub fn run(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<Evaluation, CoreError> {
        self.run_with_cache(strategy, cluster, leader, &PlanCache::new())
    }

    /// [`Scenario::run`] against a caller-owned [`PlanCache`], for reusing
    /// plans across scenario runs. The returned evaluation's
    /// [`Evaluation::plan_cache`] counts only this run's lookups.
    ///
    /// The warm path is zero-copy: cached plans are threaded through as
    /// `Arc<ExecutionPlan>` and simulated in place, and cache probes reuse
    /// one key, so a 100 %-hit stream performs no per-request deep copies.
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario is empty, when planning any
    /// request fails, or when simulation fails.
    pub fn run_with_cache(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
    ) -> Result<Evaluation, CoreError> {
        let (planned, stats) = self.plan_requests(strategy, cluster, leader, cache)?;
        let report = simulate_stream_detailed(&planned, cluster, self.trace)?;
        let mut evaluation = Self::evaluation_from(strategy.name(), &self.label, report, cluster)?;
        evaluation.plan_cache = Some(stats);
        Ok(evaluation)
    }

    /// [`Scenario::run_with_cache`] against caller-owned simulation working
    /// memory: the simulator reuses `scratch`'s buffers across calls (see
    /// [`SimScratch`]), which is what [`crate::ParallelSweep`] workers and
    /// rate sweeps use to keep the steady-state evaluation path
    /// allocation-free. Results are bit-identical to
    /// [`Scenario::run_with_cache`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::run_with_cache`].
    pub fn run_with_cache_in(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
        scratch: &mut SimScratch,
    ) -> Result<Evaluation, CoreError> {
        let (planned, stats) = self.plan_requests(strategy, cluster, leader, cache)?;
        let report = simulate_stream_in(scratch, &planned, cluster, self.trace)?.clone();
        let mut evaluation = Self::evaluation_from(strategy.name(), &self.label, report, cluster)?;
        evaluation.plan_cache = Some(stats);
        Ok(evaluation)
    }

    /// The planning half of the pipeline: every request resolved to a shared
    /// plan through `cache`, plus this run's hit/miss attribution.
    fn plan_requests(
        &self,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
    ) -> Result<(PlannedStream, PlanCacheStats), CoreError> {
        if self.requests.is_empty() {
            return Err(CoreError::Infeasible {
                what: format!("scenario '{}' has no requests", self.label),
            });
        }
        // Counted per lookup, not as a before/after delta of the shared
        // counters, so concurrent users of the same cache do not inflate
        // this run's numbers.
        let mut stats = PlanCacheStats::default();
        let mut planned = Vec::with_capacity(self.requests.len());
        // One reusable key: everything except the graph fields is
        // loop-invariant, so each request mutates two integers and pays a
        // borrowed hash probe — no string clone, no cluster walk, no key
        // allocation on the warm path.
        let mut key = crate::PlanKey::for_run(strategy, cluster, leader);
        for (arrival, graph) in &self.requests {
            key.graph_fingerprint = graph.fingerprint();
            key.batch = graph.input_shape().batch();
            let (plan, hit) = cache.plan_keyed(&key, strategy, graph, cluster, leader)?;
            if hit {
                stats.hits += 1;
            } else {
                stats.misses += 1;
            }
            planned.push((*arrival, plan));
        }
        Ok((planned, stats))
    }

    /// Simulates already-built execution plans — the tail of the pipeline,
    /// shared by [`Scenario::run`] and by experiments that construct plans
    /// by hand (e.g. the Fig. 1 single-node configurations). Plans are
    /// borrowed: pass owned plans, references or `Arc`s alike.
    ///
    /// # Errors
    ///
    /// Returns an error when `planned` is empty or simulation fails.
    pub fn run_plans<P: Borrow<ExecutionPlan>>(
        strategy: impl Into<String>,
        scenario: impl Into<String>,
        planned: &[(f64, P)],
        cluster: &Cluster,
    ) -> Result<Evaluation, CoreError> {
        Self::run_plans_detailed(strategy, scenario, planned, cluster, TraceDetail::Full)
    }

    /// [`Scenario::run_plans`] with an explicit [`TraceDetail`].
    ///
    /// # Errors
    ///
    /// Returns an error when `planned` is empty or simulation fails.
    pub fn run_plans_detailed<P: Borrow<ExecutionPlan>>(
        strategy: impl Into<String>,
        scenario: impl Into<String>,
        planned: &[(f64, P)],
        cluster: &Cluster,
        detail: TraceDetail,
    ) -> Result<Evaluation, CoreError> {
        let scenario = scenario.into();
        if planned.is_empty() {
            return Err(CoreError::Infeasible {
                what: format!("scenario '{scenario}' has no plans to simulate"),
            });
        }
        let report = simulate_stream_detailed(planned, cluster, detail)?;
        Self::evaluation_from(strategy, scenario, report, cluster)
    }

    /// Wraps a finished simulation report into an [`Evaluation`] (energy
    /// accounting plus metric extraction) — the shared tail of every run
    /// entry point, including the serving runtime's
    /// ([`crate::ServingScenario`]).
    pub(crate) fn evaluation_from(
        strategy: impl Into<String>,
        scenario: impl Into<String>,
        report: SimReport,
        cluster: &Cluster,
    ) -> Result<Evaluation, CoreError> {
        let total_energy = report.total_energy(cluster)?;
        let dynamic_energy = report.dynamic_energy(cluster)?;
        Ok(Evaluation {
            strategy: strategy.into(),
            scenario: scenario.into(),
            latencies: report.latencies(),
            makespan: report.makespan,
            total_energy,
            dynamic_energy,
            plan_cache: None,
            report,
        })
    }
}

/// Metrics of one evaluated scenario (single request or stream).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Strategy name.
    pub strategy: String,
    /// Scenario label (model name for single-request scenarios).
    pub scenario: String,
    /// Per-request latencies in seconds (request order).
    pub latencies: Vec<f64>,
    /// Completion time of the whole scenario in seconds.
    pub makespan: f64,
    /// Total cluster energy over the scenario window, in joules.
    pub total_energy: f64,
    /// Workload-attributable (dynamic) energy in joules.
    pub dynamic_energy: f64,
    /// Plan-cache hit/miss counters for this run (`None` when the scenario
    /// was built from pre-made plans via [`Scenario::run_plans`]).
    pub plan_cache: Option<PlanCacheStats>,
    /// The simulated report (timings of every task; `records` is empty when
    /// the scenario ran with [`TraceDetail::Summary`]).
    pub report: SimReport,
}

impl Evaluation {
    /// End-to-end latency of the first request, in seconds — the headline
    /// number for single-request scenarios.
    pub fn latency(&self) -> f64 {
        self.latencies.first().copied().unwrap_or(self.makespan)
    }

    /// Mean latency over all requests, in seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.latencies.is_empty() {
            return self.makespan;
        }
        self.latencies.iter().sum::<f64>() / self.latencies.len() as f64
    }

    /// Completed inferences per `window_seconds` (the paper reports
    /// inferences per 100 s).
    pub fn throughput(&self, window_seconds: f64) -> f64 {
        hidp_sim::stats::throughput_per_window(&self.report, window_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HidpStrategy;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn single_scenario_produces_positive_metrics() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let eval = Scenario::single(WorkloadModel::EfficientNetB0.graph(1))
            .run(&strategy, &cluster, NodeIndex(0))
            .unwrap();
        assert_eq!(eval.strategy, "HiDP");
        assert_eq!(eval.scenario, "efficientnet_b0");
        assert_eq!(eval.latencies.len(), 1);
        assert!(eval.latency() > 0.0);
        assert!(eval.total_energy > eval.dynamic_energy);
        assert!(eval.dynamic_energy > 0.0);
    }

    #[test]
    fn stream_scenario_reports_one_latency_per_request() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let scenario = Scenario::stream(vec![
            (0.0, WorkloadModel::EfficientNetB0.graph(1)),
            (0.5, WorkloadModel::InceptionV3.graph(1)),
        ]);
        assert_eq!(scenario.label(), "stream[2]");
        assert_eq!(scenario.len(), 2);
        let eval = scenario.run(&strategy, &cluster, NodeIndex(0)).unwrap();
        assert_eq!(eval.latencies.len(), 2);
        assert!(eval.makespan >= eval.latencies[0]);
        assert!(eval.throughput(100.0) > 0.0);
        assert!(eval.mean_latency() > 0.0);
    }

    #[test]
    fn empty_scenario_is_rejected() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let empty = Scenario::stream(Vec::<(f64, hidp_dnn::DnnGraph)>::new());
        assert!(empty.is_empty());
        assert!(empty.run(&strategy, &cluster, NodeIndex(0)).is_err());
        assert!(Scenario::run_plans::<ExecutionPlan>("x", "y", &[], &cluster).is_err());
    }

    #[test]
    fn single_and_one_element_stream_agree() {
        // The pipeline must not distinguish a single request from a stream
        // of one request arriving at t = 0.
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let single = Scenario::single(WorkloadModel::ResNet152.graph(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        let stream = Scenario::stream(vec![(0.0, WorkloadModel::ResNet152.graph(1))])
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert_eq!(single.latencies, stream.latencies);
        assert_eq!(single.makespan, stream.makespan);
        assert_eq!(single.scenario, stream.scenario);
    }

    #[test]
    fn labels_can_be_overridden() {
        let scenario = Scenario::single(WorkloadModel::Vgg19.graph(1)).with_label("custom-label");
        assert_eq!(scenario.label(), "custom-label");
    }

    #[test]
    fn run_plans_matches_run_for_strategy_plans() {
        // run() is exactly plan-each-request + run_plans().
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let graph = WorkloadModel::InceptionV3.graph(1);
        let via_run = Scenario::single(graph.clone())
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        let plan =
            crate::strategy::DistributedStrategy::plan(&strategy, &graph, &cluster, NodeIndex(1))
                .unwrap();
        let via_plans =
            Scenario::run_plans("HiDP", graph.name(), &[(0.0, plan)], &cluster).unwrap();
        assert_eq!(via_run.latencies, via_plans.latencies);
        // Energy accounting sums in sorted processor order, so the two paths
        // are bit-identical — exact equality, no ULP tolerance.
        assert_eq!(via_run.total_energy, via_plans.total_energy);
        assert_eq!(via_run.dynamic_energy, via_plans.dynamic_energy);
        assert_eq!(via_run.report, via_plans.report);
    }

    #[test]
    fn cyclic_mix_plans_each_distinct_model_exactly_once() {
        // A 3-model mix repeated 3 times: 9 requests, 3 planner invocations.
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let models = [
            WorkloadModel::EfficientNetB0,
            WorkloadModel::InceptionV3,
            WorkloadModel::ResNet152,
        ];
        let requests: Vec<(f64, hidp_dnn::DnnGraph)> = (0..9)
            .map(|i| (i as f64 * 0.2, models[i % 3].graph(1)))
            .collect();
        let eval = Scenario::stream(requests)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        let stats = eval.plan_cache.expect("run() surfaces cache stats");
        assert_eq!(stats.misses, 3, "each distinct model planned once");
        assert_eq!(stats.hits, 6, "repeats served from the cache");
        assert_eq!(eval.latencies.len(), 9);
    }

    #[test]
    fn shared_cache_reuses_plans_across_runs() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let cache = crate::PlanCache::new();
        let scenario = Scenario::single(WorkloadModel::Vgg19.graph(1));

        let cold = scenario
            .run_with_cache(&strategy, &cluster, NodeIndex(1), &cache)
            .unwrap();
        let warm = scenario
            .run_with_cache(&strategy, &cluster, NodeIndex(1), &cache)
            .unwrap();
        // Per-run stats are deltas, not cumulative counters.
        assert_eq!(cold.plan_cache.unwrap().misses, 1);
        assert_eq!(cold.plan_cache.unwrap().hits, 0);
        assert_eq!(warm.plan_cache.unwrap().misses, 0);
        assert_eq!(warm.plan_cache.unwrap().hits, 1);
        // Memoization changes cost, never results.
        assert_eq!(cold.latencies, warm.latencies);
        assert_eq!(cold.total_energy, warm.total_energy);
        assert_eq!(cold.report, warm.report);
    }

    #[test]
    fn scratch_entry_point_is_bit_identical_to_the_one_shot_path() {
        // One scratch reused across differently-shaped runs must change
        // nothing about any evaluation.
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let cache = crate::PlanCache::new();
        let mut scratch = SimScratch::new();
        let scenarios = [
            Scenario::single(WorkloadModel::InceptionV3.graph(1)),
            Scenario::stream(vec![
                (0.0, WorkloadModel::EfficientNetB0.graph(1)),
                (0.1, WorkloadModel::ResNet152.graph(1)),
                (0.2, WorkloadModel::EfficientNetB0.graph(1)),
            ]),
            Scenario::single(WorkloadModel::Vgg19.graph(1)).with_trace_detail(TraceDetail::Summary),
        ];
        for scenario in &scenarios {
            let direct = scenario
                .run_with_cache(&strategy, &cluster, NodeIndex(1), &cache)
                .unwrap();
            let scratched = scenario
                .run_with_cache_in(&strategy, &cluster, NodeIndex(1), &cache, &mut scratch)
                .unwrap();
            // Cache stats differ (the direct run warmed the cache), so
            // compare everything else.
            assert_eq!(direct.latencies, scratched.latencies);
            assert_eq!(direct.makespan, scratched.makespan);
            assert_eq!(direct.total_energy, scratched.total_energy);
            assert_eq!(direct.dynamic_energy, scratched.dynamic_energy);
            assert_eq!(direct.report, scratched.report);
        }
    }

    #[test]
    fn summary_trace_detail_keeps_metrics_and_drops_records() {
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let requests: Vec<(f64, hidp_dnn::DnnGraph)> = (0..4)
            .map(|i| (i as f64 * 0.1, WorkloadModel::EfficientNetB0.graph(1)))
            .collect();
        let full = Scenario::stream(requests.clone())
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        let summary = Scenario::stream(requests)
            .with_trace_detail(TraceDetail::Summary)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        assert!(summary.report.records.is_empty());
        assert!(!full.report.records.is_empty());
        assert_eq!(full.latencies, summary.latencies);
        assert_eq!(full.makespan, summary.makespan);
        assert_eq!(full.total_energy, summary.total_energy);
        assert_eq!(full.dynamic_energy, summary.dynamic_energy);
        assert_eq!(full.plan_cache, summary.plan_cache);
        assert_eq!(full.report.meter, summary.report.meter);
    }
}
