//! OmniBoost (Karatzas et al., DAC 2023): model partitioning with a
//! Monte-Carlo tree search over pipeline placements.
//!
//! OmniBoost determines layer-block boundaries with an MCTS whose leaf
//! evaluations come from a throughput estimator, and pipelines the resulting
//! blocks over the devices' default processors. The original estimator is a
//! learned model; as documented in DESIGN.md we substitute the analytical
//! cost model (the quantity the learned estimator approximates). The search
//! itself is a faithful UCT implementation: each tree level places the next
//! block boundary, rollouts complete the placement randomly, and the reward
//! is the negated pipeline latency.

use hidp_core::{
    chain_segments, workload_summary, CoreError, DistributedStrategy, Resource, SystemModel,
};
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex, ProcessorAddr, ProcessorIndex};
use hidp_sim::ExecutionPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The OmniBoost baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OmniBoostStrategy {
    /// Number of MCTS iterations per request.
    pub iterations: usize,
    /// UCT exploration constant.
    pub exploration: f64,
    /// RNG seed (the search is fully deterministic for a given seed).
    pub seed: u64,
}

impl Default for OmniBoostStrategy {
    fn default() -> Self {
        Self {
            iterations: 400,
            exploration: 1.4,
            seed: 0xB0057,
        }
    }
}

impl OmniBoostStrategy {
    /// Creates the strategy with default search parameters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A complete placement: one entry per pipeline block, `(last_segment,
/// resource_index)`.
type Placement = Vec<(usize, usize)>;

fn placement_latency(
    placement: &Placement,
    segments: &[hidp_core::dp::ChainSegment],
    resources: &[Resource],
    input_bytes: u64,
    output_bytes: u64,
) -> f64 {
    let mut latency = 0.0;
    let mut first = 0usize;
    for (block_idx, &(last, resource_idx)) in placement.iter().enumerate() {
        let resource = &resources[resource_idx];
        let flops: u64 = segments[first..=last].iter().map(|s| s.flops).sum();
        let in_bytes = if block_idx == 0 {
            input_bytes
        } else {
            segments[first - 1].boundary_bytes
        };
        latency += resource.transfer_time(in_bytes) + resource.compute_time(flops);
        if block_idx + 1 == placement.len() {
            latency += resource.transfer_time(output_bytes);
        }
        first = last + 1;
    }
    latency
}

struct TreeNode {
    /// Boundary decisions made so far: (last_segment, resource).
    placement: Placement,
    children: Vec<usize>,
    visits: f64,
    total_reward: f64,
    untried: Vec<(usize, usize)>,
}

/// Candidate actions from a partial placement: either finish the chain on
/// some resource or cut at one of a few look-ahead boundaries.
fn candidate_actions(
    placement: &Placement,
    segment_count: usize,
    resource_count: usize,
    max_blocks: usize,
) -> Vec<(usize, usize)> {
    let first = placement.last().map(|&(last, _)| last + 1).unwrap_or(0);
    if first >= segment_count {
        return Vec::new();
    }
    let used: Vec<usize> = placement.iter().map(|&(_, r)| r).collect();
    let mut actions = Vec::new();
    let remaining_blocks = max_blocks - placement.len();
    for resource in 0..resource_count {
        if used.contains(&resource) {
            continue;
        }
        // Always allow "run the rest here".
        actions.push((segment_count - 1, resource));
        if remaining_blocks > 1 {
            // A handful of intermediate cut choices keeps the branching factor
            // manageable (the original work uses a coarse action space too).
            let span = segment_count - first;
            for fraction in [0.25f64, 0.5, 0.75] {
                let cut = first + ((span as f64 * fraction) as usize).min(span - 1);
                if cut + 1 < segment_count {
                    actions.push((cut, resource));
                }
            }
        }
    }
    actions.sort_unstable();
    actions.dedup();
    actions
}

fn rollout(
    placement: &Placement,
    segments: &[hidp_core::dp::ChainSegment],
    resources: &[Resource],
    input_bytes: u64,
    output_bytes: u64,
    max_blocks: usize,
    rng: &mut StdRng,
) -> f64 {
    let mut placement = placement.clone();
    while placement
        .last()
        .map(|&(last, _)| last + 1 < segments.len())
        .unwrap_or(true)
    {
        let actions = candidate_actions(&placement, segments.len(), resources.len(), max_blocks);
        if actions.is_empty() {
            // No unused resource left: extend the last block to the end.
            if let Some(last) = placement.last_mut() {
                last.0 = segments.len() - 1;
            } else {
                placement.push((segments.len() - 1, 0));
            }
            break;
        }
        let action = actions[rng.gen_range(0..actions.len())];
        placement.push(action);
        if placement.len() == max_blocks {
            if let Some(last) = placement.last_mut() {
                last.0 = segments.len() - 1;
            }
            break;
        }
    }
    -placement_latency(&placement, segments, resources, input_bytes, output_bytes)
}

fn mcts_search(
    segments: &[hidp_core::dp::ChainSegment],
    resources: &[Resource],
    input_bytes: u64,
    output_bytes: u64,
    iterations: usize,
    exploration: f64,
    seed: u64,
) -> Placement {
    let max_blocks = resources.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes = vec![TreeNode {
        placement: Vec::new(),
        children: Vec::new(),
        visits: 0.0,
        total_reward: 0.0,
        untried: candidate_actions(&Vec::new(), segments.len(), resources.len(), max_blocks),
    }];
    let mut best_placement: Option<(f64, Placement)> = None;

    for _ in 0..iterations {
        // Selection.
        let mut current = 0usize;
        loop {
            let node = &nodes[current];
            let complete = node
                .placement
                .last()
                .map(|&(last, _)| last + 1 >= segments.len())
                .unwrap_or(false);
            if complete || !node.untried.is_empty() || node.children.is_empty() {
                break;
            }
            let parent_visits = node.visits.max(1.0);
            current = *node
                .children
                .iter()
                .max_by(|a, b| {
                    let ucb = |idx: usize| {
                        let child = &nodes[idx];
                        child.total_reward / child.visits.max(1e-9)
                            + exploration * (parent_visits.ln() / child.visits.max(1e-9)).sqrt()
                    };
                    ucb(**a).partial_cmp(&ucb(**b)).expect("finite rewards")
                })
                .expect("children is non-empty");
        }

        // Expansion.
        let expanded = if !nodes[current].untried.is_empty() {
            let action_idx = rng.gen_range(0..nodes[current].untried.len());
            let action = nodes[current].untried.swap_remove(action_idx);
            let mut placement = nodes[current].placement.clone();
            placement.push(action);
            if placement.len() == max_blocks {
                // No resources left for further blocks: the last block must
                // run to the end of the chain.
                if let Some(last) = placement.last_mut() {
                    last.0 = segments.len() - 1;
                }
            }
            let untried = if placement.len() < resources.len() {
                candidate_actions(&placement, segments.len(), resources.len(), max_blocks)
            } else {
                Vec::new()
            };
            let child_idx = nodes.len();
            nodes.push(TreeNode {
                placement,
                children: Vec::new(),
                visits: 0.0,
                total_reward: 0.0,
                untried,
            });
            nodes[current].children.push(child_idx);
            child_idx
        } else {
            current
        };

        // Simulation.
        let reward = rollout(
            &nodes[expanded].placement,
            segments,
            resources,
            input_bytes,
            output_bytes,
            max_blocks,
            &mut rng,
        );
        if best_placement
            .as_ref()
            .map(|(best, _)| reward > *best)
            .unwrap_or(true)
        {
            // Re-derive the complete placement that produced this reward by
            // greedily finishing the expanded node's placement on the best
            // remaining resource (deterministic tie-break).
            let mut placement = nodes[expanded].placement.clone();
            if placement
                .last()
                .map(|&(last, _)| last + 1 < segments.len())
                .unwrap_or(true)
            {
                let used: Vec<usize> = placement.iter().map(|&(_, r)| r).collect();
                let next = (0..resources.len())
                    .filter(|r| !used.contains(r))
                    .max_by(|a, b| {
                        resources[*a]
                            .rate
                            .partial_cmp(&resources[*b].rate)
                            .expect("finite rates")
                    });
                match next {
                    Some(resource) => placement.push((segments.len() - 1, resource)),
                    None => {
                        if let Some(last) = placement.last_mut() {
                            last.0 = segments.len() - 1;
                        }
                    }
                }
            }
            let latency =
                placement_latency(&placement, segments, resources, input_bytes, output_bytes);
            best_placement = Some((-latency, placement));
        }

        // Backpropagation (along the selection path we only know `current`
        // and `expanded`; walk ancestors by prefix matching).
        let mut idx = expanded;
        loop {
            nodes[idx].visits += 1.0;
            nodes[idx].total_reward += reward;
            if idx == 0 {
                break;
            }
            // Parent = node whose placement is the prefix one shorter.
            let target_len = nodes[idx].placement.len() - 1;
            let prefix = &nodes[idx].placement[..target_len];
            idx = nodes
                .iter()
                .position(|n| n.placement.len() == target_len && n.placement == prefix)
                .unwrap_or(0);
        }
    }

    best_placement
        .map(|(_, p)| p)
        .unwrap_or_else(|| vec![(segments.len() - 1, 0)])
}

impl DistributedStrategy for OmniBoostStrategy {
    fn name(&self) -> &str {
        "OmniBoost"
    }

    fn cache_config(&self) -> String {
        format!("{self:?}")
    }

    fn plan(
        &self,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ExecutionPlan, CoreError> {
        cluster.node(leader)?;
        let system = SystemModel::new(graph, leader);
        let resources = system.global_resources_gpu_only(cluster);
        if resources.is_empty() {
            return Err(CoreError::Infeasible {
                what: "no available nodes".into(),
            });
        }
        let segments = chain_segments(graph);
        let workload = workload_summary(graph);
        let placement = mcts_search(
            &segments,
            &resources,
            workload.input_bytes,
            workload.output_bytes,
            self.iterations,
            self.exploration,
            self.seed,
        );

        let mut plan = ExecutionPlan::new();
        let mut prev_tasks = Vec::new();
        let mut prev_node = leader;
        let mut first = 0usize;
        for (block_idx, &(last, resource_idx)) in placement.iter().enumerate() {
            let resource = &resources[resource_idx];
            let node = resource.node;
            let device = cluster.node(node)?;
            let processor = device
                .gpu_index()
                .or_else(|| device.cpu_indices().first().copied())
                .ok_or_else(|| CoreError::Infeasible {
                    what: format!("node {node} has no processors"),
                })?;
            let flops: u64 = segments[first..=last].iter().map(|s| s.flops).sum();
            let in_bytes = if block_idx == 0 {
                workload.input_bytes
            } else {
                segments[first - 1].boundary_bytes
            };
            let transfer = plan.add_transfer(
                format!("block{block_idx}->{}", device.name),
                prev_node,
                node,
                in_bytes,
                &prev_tasks,
            );
            let compute = plan.add_compute(
                format!("block{block_idx}@{}", device.name),
                ProcessorAddr { node, processor },
                flops,
                system.gpu_affinity,
                &[transfer],
            );
            prev_tasks = vec![compute];
            prev_node = node;
            first = last + 1;
        }
        let back = plan.add_transfer(
            "result->leader",
            prev_node,
            leader,
            workload.output_bytes,
            &prev_tasks,
        );
        let leader_proc = cluster
            .node(leader)?
            .cpu_indices()
            .first()
            .copied()
            .unwrap_or(ProcessorIndex(0));
        plan.add_compute(
            "report@leader",
            ProcessorAddr {
                node: leader,
                processor: leader_proc,
            },
            (workload.output_bytes / 4) * 2,
            0.5,
            &[back],
        );
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuOnlyStrategy;
    use hidp_core::Scenario;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn search_is_deterministic_per_seed() {
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::InceptionV3.graph(1);
        let a = OmniBoostStrategy::new()
            .plan(&graph, &cluster, NodeIndex(0))
            .unwrap();
        let b = OmniBoostStrategy::new()
            .plan(&graph, &cluster, NodeIndex(0))
            .unwrap();
        assert_eq!(a, b);
        let c = OmniBoostStrategy {
            seed: 99,
            ..OmniBoostStrategy::new()
        }
        .plan(&graph, &cluster, NodeIndex(0))
        .unwrap();
        // A different seed may or may not find the same placement, but the
        // plan must still be valid.
        assert!(c.validate().is_ok());
    }

    #[test]
    fn never_worse_than_naive_gpu_only_by_much() {
        // The MCTS always evaluates the "single block on the leader GPU"
        // placement, so it can only improve on it (modulo the report task).
        let cluster = presets::paper_cluster();
        for model in WorkloadModel::ALL {
            let scenario = Scenario::single(model.graph(1));
            let omni = scenario
                .run(&OmniBoostStrategy::new(), &cluster, NodeIndex(1))
                .unwrap();
            let gpu = scenario
                .run(&GpuOnlyStrategy::new(), &cluster, NodeIndex(1))
                .unwrap();
            assert!(
                omni.latency() <= gpu.latency() * 1.10,
                "{model}: OmniBoost {:.3}s vs GPU-only {:.3}s",
                omni.latency(),
                gpu.latency()
            );
        }
    }

    #[test]
    fn blocks_tile_the_network() {
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::ResNet152.graph(1);
        let plan = OmniBoostStrategy::new()
            .plan(&graph, &cluster, NodeIndex(0))
            .unwrap();
        // The compute flops of all blocks must cover the graph (plus report).
        assert!(plan.total_flops() >= graph.total_flops());
    }
}
