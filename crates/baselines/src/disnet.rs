//! DisNet (Samikwa et al., IEEE IoT-J 2024): hybrid global partitioning.
//!
//! DisNet jointly considers data and model partitioning when distributing
//! work across the cluster, but — unlike HiDP — it exerts no granular
//! control over the local device resources: each node runs its share on the
//! framework-default processor. Following the paper's methodology (§IV-A,
//! "we used the data and model partitioning algorithm of HiDP to implement
//! DisNet"), this baseline is HiDP's global partitioner with the core-aware
//! rate model and the local tier disabled.

use hidp_core::{
    CoreError, DistributedStrategy, GlobalPartitioner, HidpStrategy, LocalPartitioner,
};
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex};
use hidp_sim::ExecutionPlan;
use serde::{Deserialize, Serialize};

/// The DisNet baseline: hybrid global partitioning, GPU-only local execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisNetStrategy {
    inner: HidpStrategy,
}

impl Default for DisNetStrategy {
    fn default() -> Self {
        Self {
            inner: HidpStrategy {
                global: GlobalPartitioner {
                    core_aware: false,
                    ..GlobalPartitioner::hidp()
                },
                local: LocalPartitioner::gpu_only(),
            },
        }
    }
}

impl DisNetStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DistributedStrategy for DisNetStrategy {
    fn name(&self) -> &str {
        "DisNet"
    }

    fn cache_config(&self) -> String {
        format!("{self:?}")
    }

    fn plan(
        &self,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ExecutionPlan, CoreError> {
        self.inner.plan(graph, cluster, leader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuOnlyStrategy, ModnnStrategy};
    use hidp_core::{HidpStrategy, Scenario};
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    fn latency_of(strategy: &dyn DistributedStrategy, model: WorkloadModel) -> f64 {
        let cluster = presets::paper_cluster();
        Scenario::single(model.graph(1))
            .run(strategy, &cluster, NodeIndex(1))
            .unwrap()
            .latency()
    }

    #[test]
    fn disnet_beats_fixed_mode_baselines_on_average() {
        let mut disnet_total = 0.0;
        let mut modnn_total = 0.0;
        let mut gpu_total = 0.0;
        for model in WorkloadModel::ALL {
            disnet_total += latency_of(&DisNetStrategy::new(), model);
            modnn_total += latency_of(&ModnnStrategy::new(), model);
            gpu_total += latency_of(&GpuOnlyStrategy::new(), model);
        }
        assert!(disnet_total < modnn_total);
        assert!(disnet_total < gpu_total);
    }

    #[test]
    fn hidp_beats_disnet_because_of_the_local_tier() {
        let mut hidp_total = 0.0;
        let mut disnet_total = 0.0;
        for model in WorkloadModel::ALL {
            hidp_total += latency_of(&HidpStrategy::new(), model);
            disnet_total += latency_of(&DisNetStrategy::new(), model);
        }
        assert!(
            hidp_total < disnet_total,
            "HiDP {hidp_total:.3}s vs DisNet {disnet_total:.3}s"
        );
    }

    #[test]
    fn plans_are_valid_for_all_models() {
        let cluster = presets::paper_cluster();
        for model in WorkloadModel::ALL {
            let graph = model.graph(1);
            let plan = DisNetStrategy::new()
                .plan(&graph, &cluster, NodeIndex(1))
                .unwrap();
            assert!(plan.validate().is_ok(), "{model}");
        }
    }
}
