//! MoDNN (Mao et al., DATE 2017): local distributed mobile computing via
//! **data partitioning**.
//!
//! MoDNN splits the input of each inference proportionally to the compute
//! capacity of the participating nodes and executes the resulting sub-models
//! in parallel, exchanging intermediate (halo) data. It makes its decisions
//! globally only: each node runs its slice on the framework-default
//! processor (the GPU), and the partitioning mode is fixed to data-wise
//! regardless of the model's characteristics. Following the paper's
//! methodology (§IV-A), this implementation reuses HiDP's data-partitioning
//! machinery with those two restrictions applied.

use hidp_core::{workload_summary, CoreError, DistributedStrategy, SystemModel};
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex, ProcessorAddr, ProcessorIndex};
use hidp_sim::ExecutionPlan;
use serde::{Deserialize, Serialize};

/// The MoDNN baseline: GPU-rate-proportional data partitioning over all
/// available nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModnnStrategy {
    /// Maximum number of parallel parts (0 = all available nodes).
    pub max_parts: usize,
}

impl ModnnStrategy {
    /// Creates the strategy with no explicit part bound.
    pub fn new() -> Self {
        Self { max_parts: 0 }
    }
}

fn default_processor(cluster: &Cluster, node: NodeIndex) -> Result<ProcessorIndex, CoreError> {
    let device = cluster.node(node)?;
    device
        .gpu_index()
        .or_else(|| device.cpu_indices().first().copied())
        .ok_or_else(|| CoreError::Infeasible {
            what: format!("node {node} has no processors"),
        })
}

impl DistributedStrategy for ModnnStrategy {
    fn name(&self) -> &str {
        "MoDNN"
    }

    fn cache_config(&self) -> String {
        format!("{self:?}")
    }

    fn plan(
        &self,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ExecutionPlan, CoreError> {
        cluster.node(leader)?;
        let system = SystemModel::new(graph, leader);
        let workload = workload_summary(graph);
        // Node capacity as MoDNN sees it: the default (GPU) processor only.
        let resources = system.global_resources_gpu_only(cluster);
        if resources.is_empty() {
            return Err(CoreError::Infeasible {
                what: "no available nodes".into(),
            });
        }
        let parts = if self.max_parts == 0 {
            resources.len()
        } else {
            self.max_parts.min(resources.len())
        };
        // Proportional split over the `parts` fastest nodes.
        let mut order: Vec<usize> = (0..resources.len()).collect();
        order.sort_by(|a, b| {
            resources[*b]
                .rate
                .partial_cmp(&resources[*a].rate)
                .expect("rates are finite")
        });
        let selected = &order[..parts];
        let total_rate: f64 = selected.iter().map(|&i| resources[i].rate).sum();

        let mut plan = ExecutionPlan::new();
        let mut gathers = Vec::new();
        let mut returned = 0u64;
        for &idx in selected {
            let resource = &resources[idx];
            let fraction = resource.rate / total_rate;
            let node = resource.node;
            let processor = default_processor(cluster, node)?;
            let sync = if parts == 1 { 0 } else { workload.sync_bytes };
            let flops = (workload.flops as f64 * fraction) as u64 + sync / 4;
            let input_bytes = (workload.input_bytes as f64 * fraction).ceil() as u64;
            let output_bytes = (workload.output_bytes as f64 * fraction).ceil() as u64;

            let scatter = plan.add_transfer(
                format!("scatter->{}", cluster.node(node)?.name),
                leader,
                node,
                input_bytes,
                &[],
            );
            let compute = plan.add_compute(
                format!("slice@{}", cluster.node(node)?.name),
                ProcessorAddr { node, processor },
                flops,
                system.gpu_affinity,
                &[scatter],
            );
            let gather = plan.add_transfer(
                format!("gather<-{}", cluster.node(node)?.name),
                node,
                leader,
                output_bytes + sync,
                &[compute],
            );
            returned += output_bytes;
            gathers.push(gather);
        }
        let leader_proc = default_processor(cluster, leader)?;
        plan.add_compute(
            "merge@leader",
            ProcessorAddr {
                node: leader,
                processor: leader_proc,
            },
            (returned / 4) * 2,
            0.5,
            &gathers,
        );
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuOnlyStrategy;
    use hidp_core::Scenario;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn uses_every_available_node() {
        let cluster = presets::paper_cluster();
        let strategy = ModnnStrategy::new();
        let graph = WorkloadModel::Vgg19.graph(1);
        let plan = strategy.plan(&graph, &cluster, NodeIndex(0)).unwrap();
        // 5 scatters + 5 computes + 5 gathers + merge.
        assert_eq!(plan.len(), 16);
        assert!(plan.total_transfer_bytes() > 0);
    }

    #[test]
    fn respects_availability() {
        let mut cluster = presets::paper_cluster();
        cluster.set_available(NodeIndex(2), false).unwrap();
        let strategy = ModnnStrategy::new();
        let graph = WorkloadModel::ResNet152.graph(1);
        let plan = strategy.plan(&graph, &cluster, NodeIndex(0)).unwrap();
        assert_eq!(plan.len(), 13);
    }

    #[test]
    fn parallelism_beats_gpu_only_on_heavy_models() {
        let cluster = presets::paper_cluster();
        let scenario = Scenario::single(WorkloadModel::Vgg19.graph(1));
        let modnn = scenario
            .run(&ModnnStrategy::new(), &cluster, NodeIndex(1))
            .unwrap();
        let single = scenario
            .run(&GpuOnlyStrategy::new(), &cluster, NodeIndex(1))
            .unwrap();
        assert!(modnn.latency() < single.latency());
    }

    #[test]
    fn max_parts_bounds_the_fanout() {
        let cluster = presets::paper_cluster();
        let strategy = ModnnStrategy { max_parts: 2 };
        let graph = WorkloadModel::InceptionV3.graph(1);
        let plan = strategy.plan(&graph, &cluster, NodeIndex(0)).unwrap();
        assert_eq!(plan.len(), 7);
    }
}
