//! # hidp-baselines
//!
//! The distributed-inference baselines the HiDP paper compares against
//! (§IV-A), all implementing [`hidp_core::DistributedStrategy`] so they can
//! be evaluated head-to-head with HiDP on the same cluster simulator:
//!
//! * [`GpuOnlyStrategy`] — the framework default (configuration P1): the
//!   whole model on the leader's GPU, no partitioning;
//! * [`ModnnStrategy`] — MoDNN: capacity-proportional data partitioning,
//!   GPU-only local execution;
//! * [`OmniBoostStrategy`] — OmniBoost: Monte-Carlo tree search over model
//!   (pipeline) placements, GPU-only local execution;
//! * [`DisNetStrategy`] — DisNet: hybrid (model/data) global partitioning,
//!   no local tier.
//!
//! ```
//! use hidp_baselines::all_strategies;
//!
//! let strategies = all_strategies();
//! assert_eq!(strategies.len(), 5);
//! assert_eq!(strategies[0].name(), "HiDP");
//! ```

#![warn(missing_docs)]

mod disnet;
mod gpu_only;
mod modnn;
mod omniboost;

pub use disnet::DisNetStrategy;
pub use gpu_only::GpuOnlyStrategy;
pub use modnn::ModnnStrategy;
pub use omniboost::OmniBoostStrategy;

use hidp_core::{DistributedStrategy, HidpStrategy};

/// Returns HiDP plus every baseline, in the order the paper's figures list
/// them (HiDP, DisNet, OmniBoost, MoDNN, plus the GPU-only reference).
pub fn all_strategies() -> Vec<Box<dyn DistributedStrategy>> {
    vec![
        Box::new(HidpStrategy::new()),
        Box::new(DisNetStrategy::new()),
        Box::new(OmniBoostStrategy::new()),
        Box::new(ModnnStrategy::new()),
        Box::new(GpuOnlyStrategy::new()),
    ]
}

/// Returns only the strategies compared in Fig. 5–8 (HiDP, DisNet,
/// OmniBoost, MoDNN).
pub fn paper_strategies() -> Vec<Box<dyn DistributedStrategy>> {
    vec![
        Box::new(HidpStrategy::new()),
        Box::new(DisNetStrategy::new()),
        Box::new(OmniBoostStrategy::new()),
        Box::new(ModnnStrategy::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_core::Scenario;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::{presets, NodeIndex};

    #[test]
    fn strategy_names_are_unique() {
        let strategies = all_strategies();
        let mut names: Vec<&str> = strategies.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), strategies.len());
    }

    #[test]
    fn hidp_has_the_lowest_average_latency() {
        // The paper's headline result (Fig. 5a): HiDP beats every baseline on
        // average across the four workloads.
        let cluster = presets::paper_cluster();
        let strategies = paper_strategies();
        let mut totals = vec![0.0f64; strategies.len()];
        for model in WorkloadModel::ALL {
            let graph = model.graph(1);
            for (i, strategy) in strategies.iter().enumerate() {
                totals[i] += Scenario::single(graph.clone())
                    .run(strategy.as_ref(), &cluster, NodeIndex(1))
                    .unwrap()
                    .latency();
            }
        }
        for (i, total) in totals.iter().enumerate().skip(1) {
            assert!(
                totals[0] < *total,
                "HiDP ({:.3}s) should beat {} ({:.3}s)",
                totals[0],
                strategies[i].name(),
                total
            );
        }
    }

    #[test]
    fn hidp_has_the_lowest_average_energy() {
        // Fig. 5b: lower latency also translates into lower energy.
        let cluster = presets::paper_cluster();
        let strategies = paper_strategies();
        let mut totals = vec![0.0f64; strategies.len()];
        for model in WorkloadModel::ALL {
            let graph = model.graph(1);
            for (i, strategy) in strategies.iter().enumerate() {
                totals[i] += Scenario::single(graph.clone())
                    .run(strategy.as_ref(), &cluster, NodeIndex(1))
                    .unwrap()
                    .total_energy;
            }
        }
        for (i, total) in totals.iter().enumerate().skip(1) {
            assert!(
                totals[0] < *total,
                "HiDP ({:.1}J) should beat {} ({:.1}J)",
                totals[0],
                strategies[i].name(),
                total
            );
        }
    }
}
