//! The framework-default baseline: no partitioning at all, the whole model
//! runs on the leader's GPU (the paper's configuration P1, which
//! state-of-the-art distributed techniques inherit from TensorFlow's default
//! device placement).

use hidp_core::{CoreError, DistributedStrategy, SystemModel};
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex, ProcessorAddr};
use hidp_sim::ExecutionPlan;
use serde::{Deserialize, Serialize};

/// Runs every request entirely on the leader's default (GPU) processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuOnlyStrategy;

impl GpuOnlyStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        Self
    }
}

impl DistributedStrategy for GpuOnlyStrategy {
    fn name(&self) -> &str {
        "GPU-only"
    }

    fn plan(
        &self,
        graph: &DnnGraph,
        cluster: &Cluster,
        leader: NodeIndex,
    ) -> Result<ExecutionPlan, CoreError> {
        let node = cluster.node(leader)?;
        let gpu = node
            .gpu_index()
            .or_else(|| node.cpu_indices().first().copied())
            .ok_or_else(|| CoreError::Infeasible {
                what: format!("leader {leader} has no processors"),
            })?;
        let system = SystemModel::new(graph, leader);
        let mut plan = ExecutionPlan::new();
        let compute = plan.add_compute(
            format!("{}@{}", graph.name(), node.name),
            ProcessorAddr {
                node: leader,
                processor: gpu,
            },
            graph.total_flops(),
            system.gpu_affinity,
            &[],
        );
        plan.add_compute(
            "report@leader",
            ProcessorAddr {
                node: leader,
                processor: gpu,
            },
            graph.output_shape().bytes() / 2,
            0.5,
            &[compute],
        );
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidp_core::Scenario;
    use hidp_dnn::zoo::WorkloadModel;
    use hidp_platform::presets;

    #[test]
    fn whole_model_runs_on_one_processor() {
        let cluster = presets::paper_cluster();
        let strategy = GpuOnlyStrategy::new();
        let graph = WorkloadModel::ResNet152.graph(1);
        let plan = strategy.plan(&graph, &cluster, NodeIndex(1)).unwrap();
        assert_eq!(plan.total_transfer_bytes(), 0);
        assert!(plan.total_flops() >= graph.total_flops());
        let eval = Scenario::single(graph)
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap();
        // ResNet-152 on the TX2's Pascal GPU alone: tens of milliseconds at
        // the very least.
        assert!(eval.latency() > 0.02);
    }

    #[test]
    fn falls_back_to_cpu_when_no_gpu_exists() {
        use hidp_platform::{EdgeNode, NetworkModel, Processor};
        let node = EdgeNode::new("cpu-only", vec![Processor::cpu("c", 4, 1.5, 40.0)], 4.0).unwrap();
        let cluster = Cluster::new(vec![node], NetworkModel::paper_wireless()).unwrap();
        let strategy = GpuOnlyStrategy::new();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        assert!(strategy.plan(&graph, &cluster, NodeIndex(0)).is_ok());
    }

    #[test]
    fn unknown_leader_is_rejected() {
        let cluster = presets::paper_cluster();
        let graph = WorkloadModel::EfficientNetB0.graph(1);
        assert!(GpuOnlyStrategy::new()
            .plan(&graph, &cluster, NodeIndex(9))
            .is_err());
    }
}
