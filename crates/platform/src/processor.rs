//! Processor (core-level) models.
//!
//! The paper's system model characterises each processor `ρ_k` by a
//! computation frequency `f_k` and derives a computation rate
//! `λ = f_k / δ` where `δ` is the DNN's compute intensity (cycles per flop).
//! We fold the two into a peak throughput in GFLOP/s and a per-workload
//! efficiency factor: GPUs only reach their peak on dense, GPU-friendly
//! layers, which is exactly the effect motivating HiDP's local partitioning
//! tier (paper §I and Fig. 1).

use serde::{Deserialize, Serialize};

/// The kind of processing unit inside an edge node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessorKind {
    /// A cluster of identical CPU cores scheduled together.
    CpuCluster {
        /// Number of cores in the cluster.
        cores: usize,
    },
    /// An integrated GPU.
    Gpu {
        /// Number of shader/CUDA cores (informational).
        cores: usize,
    },
    /// A neural processing unit / DLA.
    Npu,
}

impl ProcessorKind {
    /// Whether the processor is a CPU cluster.
    pub fn is_cpu(&self) -> bool {
        matches!(self, ProcessorKind::CpuCluster { .. })
    }

    /// Whether the processor is a GPU.
    pub fn is_gpu(&self) -> bool {
        matches!(self, ProcessorKind::Gpu { .. })
    }
}

/// One processing unit (`ρ_k` in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Human-readable name (e.g. `"cortex-a57"`, `"pascal-gpu"`).
    pub name: String,
    /// The processor kind.
    pub kind: ProcessorKind,
    /// Clock frequency in GHz (`f_k`).
    pub frequency_ghz: f64,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Power drawn when busy, in watts.
    pub active_power_w: f64,
    /// Power drawn when idle, in watts.
    pub idle_power_w: f64,
    /// Memory bandwidth available to this processor for activation exchange
    /// with its siblings, in MB/s (`μ_k`, the local communication rate).
    pub local_bandwidth_mbps: f64,
}

impl Processor {
    /// Creates a CPU cluster processor.
    pub fn cpu(
        name: impl Into<String>,
        cores: usize,
        frequency_ghz: f64,
        peak_gflops: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind: ProcessorKind::CpuCluster { cores },
            frequency_ghz,
            peak_gflops,
            active_power_w: 1.5 * cores as f64,
            idle_power_w: 0.2 * cores as f64,
            local_bandwidth_mbps: 6_000.0,
        }
    }

    /// Creates a GPU processor.
    pub fn gpu(
        name: impl Into<String>,
        cores: usize,
        frequency_ghz: f64,
        peak_gflops: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind: ProcessorKind::Gpu { cores },
            frequency_ghz,
            peak_gflops,
            active_power_w: 10.0,
            idle_power_w: 1.0,
            local_bandwidth_mbps: 8_000.0,
        }
    }

    /// Overrides the power envelope (builder style).
    pub fn with_power(mut self, active_w: f64, idle_w: f64) -> Self {
        self.active_power_w = active_w;
        self.idle_power_w = idle_w;
        self
    }

    /// Overrides the local (intra-node) bandwidth in MB/s (builder style).
    pub fn with_local_bandwidth(mut self, mbps: f64) -> Self {
        self.local_bandwidth_mbps = mbps;
        self
    }

    /// Effective throughput in GFLOP/s for a workload with the given GPU
    /// affinity (flops-weighted, 0..=1).
    ///
    /// GPUs reach their peak only on GPU-friendly work; on CPU-friendly
    /// layers (depthwise convolutions, element-wise ops) their utilisation
    /// drops roughly with the affinity. CPU clusters run at a flat ~85% of
    /// peak regardless of layer mix. NPUs behave like GPUs but with a higher
    /// floor (they ship with tuned kernels for common layers).
    pub fn effective_gflops(&self, gpu_affinity: f64) -> f64 {
        let affinity = gpu_affinity.clamp(0.0, 1.0);
        match self.kind {
            ProcessorKind::CpuCluster { .. } => self.peak_gflops * 0.85,
            ProcessorKind::Gpu { .. } => self.peak_gflops * (0.25 + 0.75 * affinity),
            ProcessorKind::Npu => self.peak_gflops * (0.5 + 0.5 * affinity),
        }
    }

    /// Computation rate `λ` in flops/second for the given workload affinity.
    pub fn computation_rate(&self, gpu_affinity: f64) -> f64 {
        self.effective_gflops(gpu_affinity) * 1e9
    }

    /// Time in seconds to execute `flops` of the given affinity on this
    /// processor (computation only).
    pub fn compute_time(&self, flops: u64, gpu_affinity: f64) -> f64 {
        flops as f64 / self.computation_rate(gpu_affinity)
    }

    /// The dynamic power increment of busy time over idle, in watts —
    /// `(active − idle).max(0)`, the convention [`crate::EnergyMeter`] uses.
    /// Throttled compute draws this at full rate for *longer*, which is why
    /// drift inflates energy per inference, not just latency.
    pub fn dynamic_power_w(&self) -> f64 {
        (self.active_power_w - self.idle_power_w).max(0.0)
    }

    /// Delivered-throughput multiplier for a batch-`batch` launch, relative
    /// to the calibrated per-inference rate (utilization-aware sublinear
    /// batch cost model).
    ///
    /// The paper calibrates each processor's rate on single-request
    /// launches. Larger launches amortise the per-launch overheads that
    /// keep wide accelerators underutilised at batch 1 (kernel launch,
    /// weight/cache re-reads, pipeline fill), so delivered throughput rises
    /// with the batch towards a saturation ceiling. We use the classic
    /// fixed-overhead model `time(k) = time(1) · (1 − β + β·k)` where `β`
    /// is the marginal-cost fraction of a launch, i.e. an efficiency
    /// multiplier of `k / (1 − β + β·k)` that saturates at `1/β`:
    ///
    /// * GPUs: `β = 0.5` — half of a batch-1 launch is amortisable, so
    ///   throughput saturates at 2× the calibrated rate;
    /// * NPUs: `β = 0.6` — tuned kernels leave less on the table;
    /// * CPU clusters: `β = 0.9` — already well utilised at batch 1.
    ///
    /// `batch <= 1` returns exactly `1.0`, which keeps every single-request
    /// cost (the entire calibrated paper grid) bit-identical.
    pub fn batch_efficiency(&self, batch: usize) -> f64 {
        if batch <= 1 {
            return 1.0;
        }
        let beta = match self.kind {
            ProcessorKind::CpuCluster { .. } => 0.9,
            ProcessorKind::Gpu { .. } => 0.5,
            ProcessorKind::Npu => 0.6,
        };
        let k = batch as f64;
        k / (1.0 - beta + beta * k)
    }

    /// Time in seconds to execute `flops` of the given affinity launched as
    /// one batch-`batch` kernel: [`Processor::compute_time`] divided by
    /// [`Processor::batch_efficiency`]. With `batch <= 1` this is
    /// bit-identical to `compute_time` (the divisor is exactly `1.0`).
    pub fn batched_compute_time(&self, flops: u64, gpu_affinity: f64, batch: usize) -> f64 {
        self.compute_time(flops, gpu_affinity) / self.batch_efficiency(batch)
    }

    /// Energy in joules for keeping this processor busy for `busy_seconds`
    /// within a window of `total_seconds`.
    pub fn energy(&self, busy_seconds: f64, total_seconds: f64) -> f64 {
        let idle = (total_seconds - busy_seconds).max(0.0);
        self.active_power_w * busy_seconds + self.idle_power_w * idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let cpu = Processor::cpu("a57", 4, 1.4, 50.0);
        assert!(cpu.kind.is_cpu());
        assert!(!cpu.kind.is_gpu());
        let gpu = Processor::gpu("pascal", 256, 1.3, 650.0);
        assert!(gpu.kind.is_gpu());
    }

    #[test]
    fn gpu_efficiency_depends_on_affinity() {
        let gpu = Processor::gpu("pascal", 256, 1.3, 650.0);
        let dense = gpu.effective_gflops(1.0);
        let dw = gpu.effective_gflops(0.4);
        assert!(dense > dw);
        assert!((dense - 650.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_efficiency_is_flat() {
        let cpu = Processor::cpu("a78", 8, 2.0, 120.0);
        assert_eq!(cpu.effective_gflops(1.0), cpu.effective_gflops(0.3));
    }

    #[test]
    fn affinity_is_clamped() {
        let gpu = Processor::gpu("g", 128, 1.0, 100.0);
        assert_eq!(gpu.effective_gflops(2.0), gpu.effective_gflops(1.0));
        assert_eq!(gpu.effective_gflops(-1.0), gpu.effective_gflops(0.0));
    }

    #[test]
    fn compute_time_scales_inversely_with_rate() {
        let fast = Processor::gpu("fast", 1024, 1.0, 1000.0);
        let slow = Processor::gpu("slow", 128, 1.0, 100.0);
        let flops = 1_000_000_000u64;
        assert!(fast.compute_time(flops, 1.0) < slow.compute_time(flops, 1.0));
        assert!((fast.compute_time(flops, 1.0) - 1e-3 * 1.0).abs() < 1e-6);
    }

    #[test]
    fn batch_efficiency_is_sublinear_and_exact_at_one() {
        let gpu = Processor::gpu("g", 256, 1.3, 650.0);
        let cpu = Processor::cpu("c", 4, 1.4, 50.0);
        // Batch 1 is the calibrated baseline — exactly 1.0, no rounding.
        assert_eq!(gpu.batch_efficiency(1), 1.0);
        assert_eq!(gpu.batch_efficiency(0), 1.0);
        assert_eq!(cpu.batch_efficiency(1), 1.0);
        assert_eq!(
            gpu.batched_compute_time(1_000_000_000, 1.0, 1),
            gpu.compute_time(1_000_000_000, 1.0)
        );
        // Efficiency grows with batch but never reaches the 1/β ceiling.
        let mut prev = 1.0;
        for k in 2..=64usize {
            let e = gpu.batch_efficiency(k);
            assert!(e > prev, "efficiency must grow with batch");
            assert!(e < 2.0, "GPU efficiency saturates below 1/β = 2");
            prev = e;
        }
        // GPU batch-4: time(4) = 2.5 × time(1), i.e. 1.6× the throughput.
        let t1 = gpu.compute_time(1_000_000_000, 1.0);
        let t4 = gpu.batched_compute_time(4_000_000_000, 1.0, 4);
        assert!((t4 - 2.5 * t1).abs() < 1e-12);
        // CPUs amortise far less than GPUs.
        assert!(cpu.batch_efficiency(8) < gpu.batch_efficiency(8));
        // Per-item latency still falls on CPUs too (β < 1).
        assert!(cpu.batch_efficiency(8) > 1.0);
    }

    #[test]
    fn energy_accounts_for_idle_and_busy() {
        let p = Processor::cpu("c", 4, 1.5, 40.0).with_power(6.0, 1.0);
        // 2 s busy + 3 s idle = 6*2 + 1*3 = 15 J.
        assert!((p.energy(2.0, 5.0) - 15.0).abs() < 1e-9);
        // Busy longer than the window: no negative idle time.
        assert!((p.energy(5.0, 4.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn builder_overrides_apply() {
        let p = Processor::gpu("g", 1, 1.0, 10.0)
            .with_power(3.0, 0.5)
            .with_local_bandwidth(1234.0);
        assert_eq!(p.active_power_w, 3.0);
        assert_eq!(p.idle_power_w, 0.5);
        assert_eq!(p.local_bandwidth_mbps, 1234.0);
    }

    #[test]
    fn npu_efficiency_between_cpu_and_gpu_behaviour() {
        let npu = Processor {
            name: "dla".into(),
            kind: ProcessorKind::Npu,
            frequency_ghz: 1.0,
            peak_gflops: 200.0,
            active_power_w: 5.0,
            idle_power_w: 0.5,
            local_bandwidth_mbps: 8000.0,
        };
        assert!(npu.effective_gflops(0.0) >= 0.5 * 200.0 - 1e-9);
        assert!(npu.effective_gflops(1.0) <= 200.0 + 1e-9);
    }
}
