//! Processor (core-level) models.
//!
//! The paper's system model characterises each processor `ρ_k` by a
//! computation frequency `f_k` and derives a computation rate
//! `λ = f_k / δ` where `δ` is the DNN's compute intensity (cycles per flop).
//! We fold the two into a peak throughput in GFLOP/s and a per-workload
//! efficiency factor: GPUs only reach their peak on dense, GPU-friendly
//! layers, which is exactly the effect motivating HiDP's local partitioning
//! tier (paper §I and Fig. 1).

use serde::{Deserialize, Serialize};

/// The kind of processing unit inside an edge node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessorKind {
    /// A cluster of identical CPU cores scheduled together.
    CpuCluster {
        /// Number of cores in the cluster.
        cores: usize,
    },
    /// An integrated GPU.
    Gpu {
        /// Number of shader/CUDA cores (informational).
        cores: usize,
    },
    /// A neural processing unit / DLA.
    Npu,
}

impl ProcessorKind {
    /// Whether the processor is a CPU cluster.
    pub fn is_cpu(&self) -> bool {
        matches!(self, ProcessorKind::CpuCluster { .. })
    }

    /// Whether the processor is a GPU.
    pub fn is_gpu(&self) -> bool {
        matches!(self, ProcessorKind::Gpu { .. })
    }
}

/// One processing unit (`ρ_k` in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Human-readable name (e.g. `"cortex-a57"`, `"pascal-gpu"`).
    pub name: String,
    /// The processor kind.
    pub kind: ProcessorKind,
    /// Clock frequency in GHz (`f_k`).
    pub frequency_ghz: f64,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Power drawn when busy, in watts.
    pub active_power_w: f64,
    /// Power drawn when idle, in watts.
    pub idle_power_w: f64,
    /// Memory bandwidth available to this processor for activation exchange
    /// with its siblings, in MB/s (`μ_k`, the local communication rate).
    pub local_bandwidth_mbps: f64,
}

impl Processor {
    /// Creates a CPU cluster processor.
    pub fn cpu(
        name: impl Into<String>,
        cores: usize,
        frequency_ghz: f64,
        peak_gflops: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind: ProcessorKind::CpuCluster { cores },
            frequency_ghz,
            peak_gflops,
            active_power_w: 1.5 * cores as f64,
            idle_power_w: 0.2 * cores as f64,
            local_bandwidth_mbps: 6_000.0,
        }
    }

    /// Creates a GPU processor.
    pub fn gpu(
        name: impl Into<String>,
        cores: usize,
        frequency_ghz: f64,
        peak_gflops: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind: ProcessorKind::Gpu { cores },
            frequency_ghz,
            peak_gflops,
            active_power_w: 10.0,
            idle_power_w: 1.0,
            local_bandwidth_mbps: 8_000.0,
        }
    }

    /// Overrides the power envelope (builder style).
    pub fn with_power(mut self, active_w: f64, idle_w: f64) -> Self {
        self.active_power_w = active_w;
        self.idle_power_w = idle_w;
        self
    }

    /// Overrides the local (intra-node) bandwidth in MB/s (builder style).
    pub fn with_local_bandwidth(mut self, mbps: f64) -> Self {
        self.local_bandwidth_mbps = mbps;
        self
    }

    /// Effective throughput in GFLOP/s for a workload with the given GPU
    /// affinity (flops-weighted, 0..=1).
    ///
    /// GPUs reach their peak only on GPU-friendly work; on CPU-friendly
    /// layers (depthwise convolutions, element-wise ops) their utilisation
    /// drops roughly with the affinity. CPU clusters run at a flat ~85% of
    /// peak regardless of layer mix. NPUs behave like GPUs but with a higher
    /// floor (they ship with tuned kernels for common layers).
    pub fn effective_gflops(&self, gpu_affinity: f64) -> f64 {
        let affinity = gpu_affinity.clamp(0.0, 1.0);
        match self.kind {
            ProcessorKind::CpuCluster { .. } => self.peak_gflops * 0.85,
            ProcessorKind::Gpu { .. } => self.peak_gflops * (0.25 + 0.75 * affinity),
            ProcessorKind::Npu => self.peak_gflops * (0.5 + 0.5 * affinity),
        }
    }

    /// Computation rate `λ` in flops/second for the given workload affinity.
    pub fn computation_rate(&self, gpu_affinity: f64) -> f64 {
        self.effective_gflops(gpu_affinity) * 1e9
    }

    /// Time in seconds to execute `flops` of the given affinity on this
    /// processor (computation only).
    pub fn compute_time(&self, flops: u64, gpu_affinity: f64) -> f64 {
        flops as f64 / self.computation_rate(gpu_affinity)
    }

    /// Energy in joules for keeping this processor busy for `busy_seconds`
    /// within a window of `total_seconds`.
    pub fn energy(&self, busy_seconds: f64, total_seconds: f64) -> f64 {
        let idle = (total_seconds - busy_seconds).max(0.0);
        self.active_power_w * busy_seconds + self.idle_power_w * idle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let cpu = Processor::cpu("a57", 4, 1.4, 50.0);
        assert!(cpu.kind.is_cpu());
        assert!(!cpu.kind.is_gpu());
        let gpu = Processor::gpu("pascal", 256, 1.3, 650.0);
        assert!(gpu.kind.is_gpu());
    }

    #[test]
    fn gpu_efficiency_depends_on_affinity() {
        let gpu = Processor::gpu("pascal", 256, 1.3, 650.0);
        let dense = gpu.effective_gflops(1.0);
        let dw = gpu.effective_gflops(0.4);
        assert!(dense > dw);
        assert!((dense - 650.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_efficiency_is_flat() {
        let cpu = Processor::cpu("a78", 8, 2.0, 120.0);
        assert_eq!(cpu.effective_gflops(1.0), cpu.effective_gflops(0.3));
    }

    #[test]
    fn affinity_is_clamped() {
        let gpu = Processor::gpu("g", 128, 1.0, 100.0);
        assert_eq!(gpu.effective_gflops(2.0), gpu.effective_gflops(1.0));
        assert_eq!(gpu.effective_gflops(-1.0), gpu.effective_gflops(0.0));
    }

    #[test]
    fn compute_time_scales_inversely_with_rate() {
        let fast = Processor::gpu("fast", 1024, 1.0, 1000.0);
        let slow = Processor::gpu("slow", 128, 1.0, 100.0);
        let flops = 1_000_000_000u64;
        assert!(fast.compute_time(flops, 1.0) < slow.compute_time(flops, 1.0));
        assert!((fast.compute_time(flops, 1.0) - 1e-3 * 1.0).abs() < 1e-6);
    }

    #[test]
    fn energy_accounts_for_idle_and_busy() {
        let p = Processor::cpu("c", 4, 1.5, 40.0).with_power(6.0, 1.0);
        // 2 s busy + 3 s idle = 6*2 + 1*3 = 15 J.
        assert!((p.energy(2.0, 5.0) - 15.0).abs() < 1e-9);
        // Busy longer than the window: no negative idle time.
        assert!((p.energy(5.0, 4.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn builder_overrides_apply() {
        let p = Processor::gpu("g", 1, 1.0, 10.0)
            .with_power(3.0, 0.5)
            .with_local_bandwidth(1234.0);
        assert_eq!(p.active_power_w, 3.0);
        assert_eq!(p.idle_power_w, 0.5);
        assert_eq!(p.local_bandwidth_mbps, 1234.0);
    }

    #[test]
    fn npu_efficiency_between_cpu_and_gpu_behaviour() {
        let npu = Processor {
            name: "dla".into(),
            kind: ProcessorKind::Npu,
            frequency_ghz: 1.0,
            peak_gflops: 200.0,
            active_power_w: 5.0,
            idle_power_w: 0.5,
            local_bandwidth_mbps: 8000.0,
        };
        assert!(npu.effective_gflops(0.0) >= 0.5 * 200.0 - 1e-9);
        assert!(npu.effective_gflops(1.0) <= 200.0 + 1e-9);
    }
}
