//! A tiny deterministic hasher for content fingerprints.
//!
//! Plan-cache keys need hashes that are stable across processes and runs, so
//! `std`'s randomly seeded `HashMap` hasher is out. FNV-1a over a canonical
//! byte encoding is plenty: the fingerprints key an in-process cache, not a
//! cryptographic identity.
//!
//! Deliberately duplicated in `crates/dnn/src/graph.rs` (the crates are
//! independent); if the encoding rules change here, change that copy too.

/// 64-bit FNV-1a accumulator.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh accumulator.
    pub(crate) fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds an unsigned integer (little-endian).
    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a usize as u64.
    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by bit pattern (exact, no rounding).
    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a length-prefixed string (prefix prevents concatenation
    /// ambiguity between adjacent fields).
    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The accumulated hash.
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }

    /// Resumes accumulation from a previously captured state (FNV-1a is a
    /// running fold, so `finish` doubles as the resumable state). This is
    /// what lets [`crate::Cluster`] cache the hash of its static content and
    /// re-fold only the availability bytes on each toggle.
    pub(crate) fn from_state(state: u64) -> Self {
        Self(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_prefix_disambiguates_field_boundaries() {
        let mut ab_c = Fnv64::new();
        ab_c.write_str("ab");
        ab_c.write_str("c");
        let mut a_bc = Fnv64::new();
        a_bc.write_str("a");
        a_bc.write_str("bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
    }
}
