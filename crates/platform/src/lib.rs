//! # hidp-platform
//!
//! Heterogeneous edge platform models for the HiDP reproduction: processors
//! (CPU clusters, GPUs, NPUs), edge nodes, clusters, the wireless network
//! connecting them, and energy accounting.
//!
//! The paper evaluates on physical Jetson and Raspberry Pi boards; this crate
//! provides calibrated analytical models of the same devices
//! ([`presets::paper_cluster`]) so that the partitioning and scheduling code
//! paths can be exercised without the hardware. See DESIGN.md for the
//! substitution rationale.
//!
//! ```
//! use hidp_platform::presets;
//!
//! let cluster = presets::paper_cluster();
//! assert_eq!(cluster.len(), 5);
//! let tx2 = &cluster.nodes()[1];
//! assert_eq!(tx2.name, "jetson-tx2");
//! ```

#![warn(missing_docs)]

mod cluster;
mod drift;
mod error;
mod faultplan;
mod fingerprint;
mod fleet;
mod network;
mod node;
pub mod power;
pub mod presets;
mod processor;
mod timeline;

pub use cluster::Cluster;
pub use drift::{BandwidthContention, DriftModel, ThrottleWindow};
pub use error::PlatformError;
pub use faultplan::{SlowdownWindow, WanDegradation};
pub use fleet::{Fleet, WanModel};
pub use network::{Link, NetworkModel};
pub use node::{EdgeNode, NodeIndex, ProcessorAddr, ProcessorIndex};
pub use power::EnergyMeter;
pub use processor::{Processor, ProcessorKind};
pub use timeline::{AvailabilityEvent, ClusterTimeline};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, PlatformError>;
