//! Fault-injection vocabulary: the degradation windows a chaos plan is made
//! of, beyond the up/down [`crate::ClusterTimeline`] flips.
//!
//! Availability flips model *binary* failure — a node is gone and in-flight
//! work on it is killed. The two window types here model the softer failure
//! modes real edge fleets see: a straggling node that still serves but
//! slowly ([`SlowdownWindow`], consumed by the serving tier's dispatch
//! estimator), and a degraded WAN segment that inflates cross-region
//! round trips without dropping them ([`WanDegradation`], consumed by the
//! fleet tier's delivery path). Both are pure data — the seeded generator
//! that composes them into a full `FaultPlan` lives in `hidp_workloads`,
//! next to the other trace generators.

use crate::error::PlatformError;
use crate::node::NodeIndex;
use serde::{Deserialize, Serialize};

/// A straggler window: compute on `node` runs `factor`× slower for tasks
/// starting in `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowdownWindow {
    /// The straggling node.
    pub node: NodeIndex,
    /// Window start, seconds (inclusive).
    pub start: f64,
    /// Window end, seconds (exclusive).
    pub end: f64,
    /// Duration multiplier for compute starting inside the window (> 1 is
    /// a slowdown; must be positive and finite).
    pub factor: f64,
}

impl SlowdownWindow {
    /// Whether a compute task on `node` starting at `at` falls inside this
    /// window.
    #[must_use]
    pub fn applies(&self, node: NodeIndex, at: f64) -> bool {
        node == self.node && at >= self.start && at < self.end
    }

    /// Validates the window: finite non-negative times, `start < end`, a
    /// positive finite factor.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if !(self.start.is_finite() && self.start >= 0.0 && self.end.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "slowdown window times must be finite and non-negative \
                     (got [{}, {}))",
                    self.start, self.end
                ),
            });
        }
        if self.start >= self.end {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "slowdown window must be non-empty (got [{}, {}))",
                    self.start, self.end
                ),
            });
        }
        if !(self.factor.is_finite() && self.factor > 0.0) {
            return Err(PlatformError::InvalidParameter {
                what: format!("slowdown factor must be positive (got {})", self.factor),
            });
        }
        Ok(())
    }
}

/// A WAN degradation window: every cross-site round trip paid by a request
/// delivered in `[start, end)` is multiplied by `factor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WanDegradation {
    /// Window start, seconds (inclusive).
    pub start: f64,
    /// Window end, seconds (exclusive).
    pub end: f64,
    /// Round-trip multiplier inside the window (> 1 is a degradation; must
    /// be positive and finite).
    pub factor: f64,
}

impl WanDegradation {
    /// Whether a delivery at time `at` pays the degraded round trip.
    #[must_use]
    pub fn applies(&self, at: f64) -> bool {
        at >= self.start && at < self.end
    }

    /// Validates the window: finite non-negative times, `start < end`, a
    /// positive finite factor.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if !(self.start.is_finite() && self.start >= 0.0 && self.end.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "WAN degradation times must be finite and non-negative \
                     (got [{}, {}))",
                    self.start, self.end
                ),
            });
        }
        if self.start >= self.end {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "WAN degradation window must be non-empty (got [{}, {}))",
                    self.start, self.end
                ),
            });
        }
        if !(self.factor.is_finite() && self.factor > 0.0) {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "WAN degradation factor must be positive (got {})",
                    self.factor
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_window_applies_half_open() {
        let w = SlowdownWindow {
            node: NodeIndex(2),
            start: 1.0,
            end: 2.0,
            factor: 3.0,
        };
        assert!(w.validate().is_ok());
        assert!(w.applies(NodeIndex(2), 1.0));
        assert!(w.applies(NodeIndex(2), 1.5));
        assert!(!w.applies(NodeIndex(2), 2.0));
        assert!(!w.applies(NodeIndex(1), 1.5));
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let base = SlowdownWindow {
            node: NodeIndex(0),
            start: 1.0,
            end: 2.0,
            factor: 2.0,
        };
        assert!(SlowdownWindow { end: 1.0, ..base }.validate().is_err());
        assert!(SlowdownWindow {
            factor: 0.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(SlowdownWindow {
            start: f64::NAN,
            ..base
        }
        .validate()
        .is_err());
        let wan = WanDegradation {
            start: 0.0,
            end: 5.0,
            factor: 4.0,
        };
        assert!(wan.validate().is_ok());
        assert!(WanDegradation { end: 0.0, ..wan }.validate().is_err());
        assert!(WanDegradation {
            factor: f64::INFINITY,
            ..wan
        }
        .validate()
        .is_err());
    }
}
