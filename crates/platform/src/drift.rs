//! Continuous drift sources: DVFS/thermal throttling curves, contention on
//! the shared network, and background-load windows.
//!
//! The fault vocabulary in [`crate::SlowdownWindow`] models *discrete*
//! degradation — a straggler that is slow by a fixed factor for a while.
//! Real edge platforms drift *continuously*: a board heats up and the DVFS
//! governor walks the clock down (a ramp, not a step), co-located tenants
//! contend for the radio, and background daemons steal cycles in bursts.
//! [`DriftModel`] packages those three sources as pure data that the
//! dispatch estimator evaluates per task, exactly like slowdown windows:
//! a duration is multiplied **only** when a window applies, so a drift-free
//! model leaves every estimate bit-identical to the legacy path.
//!
//! Like [`crate::SlowdownWindow`] and [`crate::WanDegradation`], the seeded
//! generator that composes drift models into reproducible traces lives in
//! `hidp_workloads` next to the chaos recipes; this module is evaluation
//! only.

use crate::error::PlatformError;
use crate::faultplan::SlowdownWindow;
use crate::node::NodeIndex;
use serde::{Deserialize, Serialize};

/// A throttling window on one node: compute durations are multiplied by a
/// factor that ramps linearly from `from_factor` at `start` to `to_factor`
/// at `end` (a DVFS step when the two are equal, a thermal ramp otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThrottleWindow {
    /// The throttled node.
    pub node: NodeIndex,
    /// Window start, seconds (inclusive).
    pub start: f64,
    /// Window end, seconds (exclusive).
    pub end: f64,
    /// Duration multiplier at `start` (≥ 1 slows compute down).
    pub from_factor: f64,
    /// Duration multiplier approached at `end`.
    pub to_factor: f64,
}

impl ThrottleWindow {
    /// Whether a compute task on `node` starting at `at` is throttled by
    /// this window.
    #[must_use]
    pub fn applies(&self, node: NodeIndex, at: f64) -> bool {
        node == self.node && at >= self.start && at < self.end
    }

    /// The duration multiplier at `at`, linearly interpolated across the
    /// window. Callers must check [`ThrottleWindow::applies`] first; the
    /// value outside the window is an extrapolation.
    #[must_use]
    pub fn factor_at(&self, at: f64) -> f64 {
        let span = self.end - self.start;
        let t = ((at - self.start) / span).clamp(0.0, 1.0);
        self.from_factor + (self.to_factor - self.from_factor) * t
    }

    /// Validates the window: finite non-negative times, `start < end`, and
    /// factors ≥ 1 (throttling never speeds compute up).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if !(self.start.is_finite() && self.start >= 0.0 && self.end.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "throttle window times must be finite and non-negative \
                     (got [{}, {}))",
                    self.start, self.end
                ),
            });
        }
        if self.start >= self.end {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "throttle window must be non-empty (got [{}, {}))",
                    self.start, self.end
                ),
            });
        }
        for (name, f) in [("from", self.from_factor), ("to", self.to_factor)] {
            if !(f.is_finite() && f >= 1.0) {
                return Err(PlatformError::InvalidParameter {
                    what: format!("throttle {name}_factor must be ≥ 1 (got {f})"),
                });
            }
        }
        Ok(())
    }
}

/// A contention window on the shared network: every inter-node transfer
/// starting in `[start, end)` takes `factor`× as long (the effective
/// bandwidth drops to `1/factor` of nominal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthContention {
    /// Window start, seconds (inclusive).
    pub start: f64,
    /// Window end, seconds (exclusive).
    pub end: f64,
    /// Transfer-duration multiplier inside the window (≥ 1).
    pub factor: f64,
}

impl BandwidthContention {
    /// Whether a transfer starting at `at` pays the contention factor.
    #[must_use]
    pub fn applies(&self, at: f64) -> bool {
        at >= self.start && at < self.end
    }

    /// Validates the window: finite non-negative times, `start < end`, a
    /// factor ≥ 1.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), PlatformError> {
        if !(self.start.is_finite() && self.start >= 0.0 && self.end.is_finite()) {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "contention window times must be finite and non-negative \
                     (got [{}, {}))",
                    self.start, self.end
                ),
            });
        }
        if self.start >= self.end {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "contention window must be non-empty (got [{}, {}))",
                    self.start, self.end
                ),
            });
        }
        if !(self.factor.is_finite() && self.factor >= 1.0) {
            return Err(PlatformError::InvalidParameter {
                what: format!("contention factor must be ≥ 1 (got {})", self.factor),
            });
        }
        Ok(())
    }
}

/// Everything one cluster drifts by: throttling curves per node, background
/// load (reusing the [`SlowdownWindow`] vocabulary, but *unknown to the
/// planner* — it only reaches plans through the online estimates), and
/// contention on the shared network.
///
/// The model is evaluated, never planned against: the serving loop's
/// dispatch estimator applies it to "measured" task durations, and the
/// adaptive layer in `hidp_core` recovers it from those observations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    /// Throttling curves (DVFS steps and thermal ramps).
    pub throttles: Vec<ThrottleWindow>,
    /// Background-load windows: flat compute slowdowns from co-located
    /// work, reusing the straggler vocabulary.
    pub background: Vec<SlowdownWindow>,
    /// Contention windows on the shared network.
    pub bandwidth: Vec<BandwidthContention>,
}

impl DriftModel {
    /// Whether the model injects nothing (the drift-free default).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.throttles.is_empty() && self.background.is_empty() && self.bandwidth.is_empty()
    }

    /// Scales a compute duration for a task on `node` starting at `at`.
    /// Multiplies only by windows that apply — a drift-free model (or an
    /// instant outside every window) returns `duration` bit-identically.
    #[must_use]
    pub fn scale_compute(&self, node: NodeIndex, at: f64, duration: f64) -> f64 {
        let mut d = duration;
        for w in &self.throttles {
            if w.applies(node, at) {
                d *= w.factor_at(at);
            }
        }
        for w in &self.background {
            if w.applies(node, at) {
                d *= w.factor;
            }
        }
        d
    }

    /// Scales an inter-node transfer duration starting at `at`. Multiplies
    /// only by windows that apply (bit-identity as for
    /// [`DriftModel::scale_compute`]).
    #[must_use]
    pub fn scale_transfer(&self, at: f64, duration: f64) -> f64 {
        let mut d = duration;
        for w in &self.bandwidth {
            if w.applies(at) {
                d *= w.factor;
            }
        }
        d
    }

    /// The last instant any window is active (0 for an empty model).
    #[must_use]
    pub fn horizon(&self) -> f64 {
        let mut h = 0.0f64;
        for w in &self.throttles {
            h = h.max(w.end);
        }
        for w in &self.background {
            h = h.max(w.end);
        }
        for w in &self.bandwidth {
            h = h.max(w.end);
        }
        h
    }

    /// Validates every window and checks that each names a node inside a
    /// cluster of `node_count` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] for malformed windows or
    /// [`PlatformError::UnknownNode`] for out-of-range node indices.
    pub fn validate(&self, node_count: usize) -> Result<(), PlatformError> {
        for w in &self.throttles {
            w.validate()?;
            if w.node.0 >= node_count {
                return Err(PlatformError::UnknownNode { index: w.node.0 });
            }
        }
        for w in &self.background {
            w.validate()?;
            if w.node.0 >= node_count {
                return Err(PlatformError::UnknownNode { index: w.node.0 });
            }
        }
        for w in &self.bandwidth {
            w.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> ThrottleWindow {
        ThrottleWindow {
            node: NodeIndex(2),
            start: 10.0,
            end: 20.0,
            from_factor: 1.0,
            to_factor: 3.0,
        }
    }

    #[test]
    fn throttle_ramp_interpolates_linearly() {
        let w = ramp();
        w.validate().unwrap();
        assert!(w.applies(NodeIndex(2), 10.0));
        assert!(!w.applies(NodeIndex(2), 20.0));
        assert!(!w.applies(NodeIndex(1), 15.0));
        assert_eq!(w.factor_at(10.0), 1.0);
        assert_eq!(w.factor_at(15.0), 2.0);
        assert_eq!(w.factor_at(20.0), 3.0);
        // A DVFS step holds its factor across the window.
        let step = ThrottleWindow {
            from_factor: 2.5,
            to_factor: 2.5,
            ..w
        };
        assert_eq!(step.factor_at(12.0), 2.5);
        assert_eq!(step.factor_at(19.9), 2.5);
    }

    #[test]
    fn invalid_windows_are_rejected() {
        let w = ramp();
        assert!(ThrottleWindow { end: 5.0, ..w }.validate().is_err());
        assert!(ThrottleWindow {
            from_factor: 0.5,
            ..w
        }
        .validate()
        .is_err());
        assert!(ThrottleWindow {
            to_factor: f64::NAN,
            ..w
        }
        .validate()
        .is_err());
        let c = BandwidthContention {
            start: 0.0,
            end: 5.0,
            factor: 2.0,
        };
        assert!(c.validate().is_ok());
        assert!(BandwidthContention { end: 0.0, ..c }.validate().is_err());
        assert!(BandwidthContention { factor: 0.9, ..c }.validate().is_err());
    }

    #[test]
    fn empty_model_is_the_identity() {
        let model = DriftModel::default();
        assert!(model.is_empty());
        assert_eq!(model.scale_compute(NodeIndex(0), 5.0, 0.125), 0.125);
        assert_eq!(model.scale_transfer(5.0, 0.25), 0.25);
        assert_eq!(model.horizon(), 0.0);
        model.validate(1).unwrap();
    }

    #[test]
    fn windows_compose_multiplicatively_only_when_applying() {
        let model = DriftModel {
            throttles: vec![ramp()],
            background: vec![SlowdownWindow {
                node: NodeIndex(2),
                start: 0.0,
                end: 100.0,
                factor: 2.0,
            }],
            bandwidth: vec![BandwidthContention {
                start: 10.0,
                end: 20.0,
                factor: 4.0,
            }],
        };
        assert!(!model.is_empty());
        assert_eq!(model.horizon(), 100.0);
        // At t = 15 node 2 pays the ramp (2×) and the background load (2×).
        assert_eq!(model.scale_compute(NodeIndex(2), 15.0, 1.0), 4.0);
        // Outside the ramp only the background window applies.
        assert_eq!(model.scale_compute(NodeIndex(2), 50.0, 1.0), 2.0);
        // Other nodes are untouched — bit-identically.
        assert_eq!(model.scale_compute(NodeIndex(0), 15.0, 0.3), 0.3);
        assert_eq!(model.scale_transfer(15.0, 1.0), 4.0);
        assert_eq!(model.scale_transfer(25.0, 0.7), 0.7);
        model.validate(5).unwrap();
        // Node bounds are enforced.
        assert!(model.validate(2).is_err());
    }
}
