//! Device presets for the evaluation platform of Table II.
//!
//! | Device          | CPU                              | GPU                | DRAM |
//! |-----------------|----------------------------------|--------------------|------|
//! | Jetson Orin NX  | 8× Cortex-A78                    | 1024-core Ampere   | 8 GB |
//! | Jetson TX2      | 2× Denver-2 + 4× Cortex-A57      | 256-core Pascal    | 8 GB |
//! | Jetson Nano     | 4× Cortex-A57                    | 128-core Maxwell   | 4 GB |
//! | Raspberry Pi 5  | Cortex-A76                       | VideoCore VII      | 4 GB |
//! | Raspberry Pi 4  | Cortex-A72                       | VideoCore VI       | 4 GB |
//!
//! The throughput figures are **achieved** single-precision DNN inference
//! rates under a TensorFlow-class runtime (not theoretical peaks): this is
//! the quantity the paper's system model calls `λ = f/δ`, and it is what
//! makes the paper's trade-offs visible — e.g. the TX2's CPU clusters
//! deliver a substantial fraction of its GPU throughput (Fig. 1's optimal
//! 80/20 and 50/50 CPU/GPU splits), and on the Raspberry Pis the CPU
//! outperforms the OpenGL-driven VideoCore GPU. Power figures approximate
//! the boards' measured idle and per-engine active draw. Absolute accuracy
//! is not required; the partitioning decisions depend only on the relative
//! compute and communication rates.

use crate::cluster::Cluster;
use crate::fleet::{Fleet, WanModel};
use crate::network::{Link, NetworkModel};
use crate::node::EdgeNode;
use crate::processor::Processor;
use crate::PlatformError;

/// NVIDIA Jetson Orin NX (8 GB): the most capable device in the cluster.
pub fn jetson_orin_nx() -> EdgeNode {
    EdgeNode::new(
        "jetson-orin-nx",
        vec![
            Processor::cpu("cortex-a78x8", 8, 2.0, 60.0)
                .with_power(6.5, 1.5)
                .with_local_bandwidth(12_000.0),
            Processor::gpu("ampere-1024", 1024, 0.92, 160.0)
                .with_power(11.0, 1.5)
                .with_local_bandwidth(16_000.0),
        ],
        8.0,
    )
    .expect("static preset is valid")
    .with_board_power(6.0)
}

/// NVIDIA Jetson TX2 (8 GB): two CPU clusters (Denver-2 big cores and
/// Cortex-A57) plus a 256-core Pascal GPU — the platform used for the
/// paper's Fig. 1 motivation study.
pub fn jetson_tx2() -> EdgeNode {
    EdgeNode::new(
        "jetson-tx2",
        vec![
            Processor::cpu("denver2-x2", 2, 2.0, 12.0)
                .with_power(2.8, 0.7)
                .with_local_bandwidth(8_000.0),
            Processor::cpu("cortex-a57x4", 4, 1.9, 20.0)
                .with_power(3.8, 0.9)
                .with_local_bandwidth(8_000.0),
            Processor::gpu("pascal-256", 256, 1.3, 55.0)
                .with_power(7.5, 1.2)
                .with_local_bandwidth(10_000.0),
        ],
        8.0,
    )
    .expect("static preset is valid")
    .with_board_power(5.5)
}

/// NVIDIA Jetson Nano (4 GB).
pub fn jetson_nano() -> EdgeNode {
    EdgeNode::new(
        "jetson-nano",
        vec![
            Processor::cpu("cortex-a57x4", 4, 1.43, 12.0)
                .with_power(3.2, 0.7)
                .with_local_bandwidth(6_000.0),
            Processor::gpu("maxwell-128", 128, 0.92, 22.0)
                .with_power(4.5, 0.8)
                .with_local_bandwidth(6_000.0),
        ],
        4.0,
    )
    .expect("static preset is valid")
    .with_board_power(4.0)
}

/// Raspberry Pi 5 (4 GB). The VideoCore VII GPU is programmable through
/// OpenGL compute but delivers far less DNN throughput than the CPU cluster —
/// a node where the CPU is the better DNN engine (paper §I cites exactly this
/// inversion).
pub fn raspberry_pi5() -> EdgeNode {
    EdgeNode::new(
        "raspberry-pi5",
        vec![
            Processor::cpu("cortex-a76", 2, 2.4, 14.0)
                .with_power(3.8, 0.8)
                .with_local_bandwidth(5_000.0),
            Processor::gpu("videocore-vii", 12, 0.8, 5.0)
                .with_power(2.0, 0.4)
                .with_local_bandwidth(4_000.0),
        ],
        4.0,
    )
    .expect("static preset is valid")
    .with_board_power(3.5)
}

/// Raspberry Pi 4 Model B (4 GB).
pub fn raspberry_pi4() -> EdgeNode {
    EdgeNode::new(
        "raspberry-pi4",
        vec![
            Processor::cpu("cortex-a72", 2, 1.8, 8.0)
                .with_power(3.0, 0.7)
                .with_local_bandwidth(3_500.0),
            Processor::gpu("videocore-vi", 8, 0.5, 3.0)
                .with_power(1.5, 0.3)
                .with_local_bandwidth(3_000.0),
        ],
        4.0,
    )
    .expect("static preset is valid")
    .with_board_power(3.0)
}

/// The paper's five-device evaluation cluster, ordered from the most to the
/// least capable node, connected by the 80 MB/s wireless network.
///
/// Node 0 (Jetson Orin NX) acts as the leader in the experiments unless a
/// different leader is chosen explicitly.
pub fn paper_cluster() -> Cluster {
    Cluster::new(
        vec![
            jetson_orin_nx(),
            jetson_tx2(),
            jetson_nano(),
            raspberry_pi5(),
            raspberry_pi4(),
        ],
        NetworkModel::paper_wireless(),
    )
    .expect("static preset is valid")
}

/// A cluster containing only the Jetson TX2 — the single-device platform of
/// the paper's Fig. 1 motivation experiment.
pub fn tx2_only() -> Cluster {
    Cluster::new(vec![jetson_tx2()], NetworkModel::paper_wireless())
        .expect("static preset is valid")
}

/// A generated heterogeneous fleet of `cluster_count` clusters spread over
/// `region_count` regions — the fleet-tier analogue of
/// [`paper_cluster`], scaling to hundreds of clusters (thousands of nodes)
/// from the same five device presets.
///
/// Deterministic by construction (no RNG): cluster `i` has `3 + (i % 4)`
/// nodes drawn from the device cycle starting at offset `i`, sits in region
/// `i % region_count`, and runs the paper's 80 MB/s wireless internally. The
/// WAN defaults to a 25 MB/s / 40 ms inter-region link; same-region cluster
/// pairs override it with a 500 MB/s / 2 ms metro backhaul, so locality has
/// a real price signal per cluster pair.
///
/// Every cluster has at least three nodes, so node indices 0–2 are valid
/// leaders fleet-wide.
///
/// # Errors
///
/// Returns [`PlatformError::InvalidParameter`] when `cluster_count` is zero,
/// `region_count` is zero, or `region_count` exceeds `cluster_count` (a
/// region would be empty).
pub fn generated_fleet(cluster_count: usize, region_count: usize) -> Result<Fleet, PlatformError> {
    if region_count == 0 {
        return Err(PlatformError::InvalidParameter {
            what: "a fleet needs at least one region".into(),
        });
    }
    if region_count > cluster_count {
        return Err(PlatformError::InvalidParameter {
            what: format!(
                "{region_count} regions cannot all be populated by {cluster_count} clusters"
            ),
        });
    }
    let devices: [fn() -> EdgeNode; 5] = [
        jetson_orin_nx,
        jetson_tx2,
        jetson_nano,
        raspberry_pi5,
        raspberry_pi4,
    ];
    let mut clusters = Vec::with_capacity(cluster_count);
    let mut regions = Vec::with_capacity(cluster_count);
    for i in 0..cluster_count {
        let size = 3 + (i % 4);
        let nodes: Vec<EdgeNode> = (0..size)
            .map(|j| devices[(i + j) % devices.len()]())
            .collect();
        clusters.push(
            Cluster::new(nodes, NetworkModel::paper_wireless())
                .expect("generated cluster is valid"),
        );
        regions.push(i % region_count);
    }
    let default_wan = Link::new(25.0, 40.0).expect("static link parameters are valid");
    let backhaul = Link::new(500.0, 2.0).expect("static link parameters are valid");
    let mut wan = WanModel::uniform(cluster_count, default_wan)?;
    for a in 0..cluster_count {
        for b in (a + 1)..cluster_count {
            if regions[a] == regions[b] {
                wan.set_link(a, b, backhaul)?;
            }
        }
    }
    Fleet::new(clusters, regions, wan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_processor_inventory() {
        // CPU core counts and GPU presence follow Table II.
        let orin = jetson_orin_nx();
        assert_eq!(orin.cpu_indices().len(), 1);
        assert!(orin.gpu_index().is_some());
        assert_eq!(orin.dram_gb, 8.0);

        let tx2 = jetson_tx2();
        assert_eq!(tx2.cpu_indices().len(), 2, "Denver-2 + A57 clusters");
        assert!(tx2.gpu_index().is_some());
        assert_eq!(tx2.dram_gb, 8.0);

        let nano = jetson_nano();
        assert_eq!(nano.dram_gb, 4.0);
        let pi5 = raspberry_pi5();
        assert_eq!(pi5.dram_gb, 4.0);
        let pi4 = raspberry_pi4();
        assert_eq!(pi4.dram_gb, 4.0);
    }

    #[test]
    fn device_ordering_by_capability() {
        // Orin > TX2 > Nano > Pi5 > Pi4 in aggregate throughput.
        let rates: Vec<f64> = [
            jetson_orin_nx(),
            jetson_tx2(),
            jetson_nano(),
            raspberry_pi5(),
            raspberry_pi4(),
        ]
        .iter()
        .map(|n| n.aggregate_rate(1.0))
        .collect();
        for pair in rates.windows(2) {
            assert!(pair[0] > pair[1], "expected strictly decreasing rates");
        }
    }

    #[test]
    fn raspberry_pi_cpu_beats_its_gpu() {
        // The inversion motivating core-aware scheduling: on the Pis the CPU
        // outperforms the GPU even on dense workloads.
        for node in [raspberry_pi4(), raspberry_pi5()] {
            let cpu = &node.processors[node.cpu_indices()[0].0];
            let gpu = &node.processors[node.gpu_index().unwrap().0];
            assert!(
                cpu.effective_gflops(1.0) > gpu.effective_gflops(1.0),
                "{}",
                node.name
            );
        }
    }

    #[test]
    fn jetson_gpu_beats_its_cpu_on_dense_work() {
        for node in [jetson_orin_nx(), jetson_tx2(), jetson_nano()] {
            let gpu = &node.processors[node.gpu_index().unwrap().0];
            let best_cpu = node
                .cpu_indices()
                .iter()
                .map(|i| node.processors[i.0].effective_gflops(1.0))
                .fold(0.0, f64::max);
            assert!(gpu.effective_gflops(1.0) > best_cpu, "{}", node.name);
        }
    }

    #[test]
    fn tx2_cpu_share_is_significant_for_cpu_friendly_work() {
        // On CPU-friendly workloads (affinity ~0.5) the TX2's combined CPU
        // clusters contribute a meaningful share of the node's throughput,
        // which is why local CPU+GPU splits beat GPU-only execution (Fig. 1).
        let tx2 = jetson_tx2();
        let gpu_rate = tx2.processors[tx2.gpu_index().unwrap().0].computation_rate(0.5);
        let cpu_rate: f64 = tx2
            .cpu_indices()
            .iter()
            .map(|i| tx2.processors[i.0].computation_rate(0.5))
            .sum();
        assert!(cpu_rate / (cpu_rate + gpu_rate) > 0.3);
    }

    #[test]
    fn achieved_rates_produce_realistic_single_board_latencies() {
        // VGG-19 (≈39 GFLOP) on the TX2 GPU alone should land in the
        // 0.5–1.5 s range reported for TensorFlow-class runtimes, and on the
        // Orin NX GPU in the 0.1–0.3 s range.
        let tx2_gpu = &jetson_tx2().processors[2];
        let t = tx2_gpu.compute_time(39_000_000_000, 1.0);
        assert!((0.4..1.6).contains(&t), "TX2 VGG-19 latency {t:.2}s");
        let orin_gpu = &jetson_orin_nx().processors[1];
        let t = orin_gpu.compute_time(39_000_000_000, 1.0);
        assert!((0.08..0.35).contains(&t), "Orin VGG-19 latency {t:.2}s");
    }

    #[test]
    fn paper_cluster_has_five_devices() {
        let cluster = paper_cluster();
        assert_eq!(cluster.len(), 5);
        assert_eq!(cluster.nodes()[0].name, "jetson-orin-nx");
        assert_eq!(cluster.nodes()[4].name, "raspberry-pi4");
        let tx2 = tx2_only();
        assert_eq!(tx2.len(), 1);
    }
}
