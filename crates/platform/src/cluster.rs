//! Edge cluster model: the set of nodes `N(ϕ_j)` plus the network connecting
//! them and per-node availability (paper Eq. 3–4).

use crate::network::NetworkModel;
use crate::node::{EdgeNode, NodeIndex, ProcessorAddr, ProcessorIndex};
use crate::processor::{Processor, ProcessorKind};
use crate::PlatformError;
use serde::{Deserialize, Serialize};

/// A collaborative cluster of heterogeneous edge nodes.
///
/// The content fingerprint is cached: the hash of the static content (nodes
/// and network) is folded once at construction, and availability toggles
/// re-fold only the availability bytes (O(nodes), not O(nodes×processors)),
/// so [`Cluster::fingerprint`] itself is a field read. The cached values are
/// plain functions of the other fields, so the derived equality and serde
/// round trips stay consistent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    nodes: Vec<EdgeNode>,
    network: NetworkModel,
    available: Vec<bool>,
    /// FNV-1a state after hashing `nodes` and `network` (availability not
    /// yet folded in).
    static_state: u64,
    /// The full fingerprint (static state + availability bytes).
    fingerprint: u64,
}

impl Cluster {
    /// Creates a cluster from nodes and a network model.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when `nodes` is empty.
    pub fn new(nodes: Vec<EdgeNode>, network: NetworkModel) -> Result<Self, PlatformError> {
        if nodes.is_empty() {
            return Err(PlatformError::InvalidParameter {
                what: "cluster needs at least one node".into(),
            });
        }
        let available = vec![true; nodes.len()];
        let static_state = Self::static_fingerprint_state(&nodes, &network);
        let fingerprint = Self::fold_availability(static_state, &available);
        Ok(Self {
            nodes,
            network,
            available,
            static_state,
            fingerprint,
        })
    }

    /// All nodes.
    pub fn nodes(&self) -> &[EdgeNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster has no nodes (never true for valid clusters).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The network model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownNode`] for out-of-range indices.
    pub fn node(&self, index: NodeIndex) -> Result<&EdgeNode, PlatformError> {
        self.nodes
            .get(index.0)
            .ok_or(PlatformError::UnknownNode { index: index.0 })
    }

    /// Looks up a processor by fully qualified address.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownNode`] or
    /// [`PlatformError::UnknownProcessor`] for invalid addresses.
    pub fn processor(&self, addr: ProcessorAddr) -> Result<&Processor, PlatformError> {
        let node = self.node(addr.node)?;
        node.processors
            .get(addr.processor.0)
            .ok_or(PlatformError::UnknownProcessor {
                node: addr.node.0,
                processor: addr.processor.0,
            })
    }

    /// All processor addresses in the cluster.
    pub fn all_processors(&self) -> Vec<ProcessorAddr> {
        self.nodes
            .iter()
            .enumerate()
            .flat_map(|(ni, node)| {
                (0..node.processor_count()).map(move |pi| ProcessorAddr {
                    node: NodeIndex(ni),
                    processor: ProcessorIndex(pi),
                })
            })
            .collect()
    }

    /// Marks a node available or unavailable (paper Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownNode`] for out-of-range indices.
    pub fn set_available(
        &mut self,
        index: NodeIndex,
        available: bool,
    ) -> Result<(), PlatformError> {
        if index.0 >= self.nodes.len() {
            return Err(PlatformError::UnknownNode { index: index.0 });
        }
        self.available[index.0] = available;
        // Incremental fingerprint refresh: the static prefix is cached, so a
        // toggle only re-folds the availability bytes.
        self.fingerprint = Self::fold_availability(self.static_state, &self.available);
        Ok(())
    }

    /// Replaces the network model, refreshing the cached fingerprint.
    pub fn set_network(&mut self, network: NetworkModel) {
        self.network = network;
        self.static_state = Self::static_fingerprint_state(&self.nodes, &self.network);
        self.fingerprint = Self::fold_availability(self.static_state, &self.available);
    }

    /// Rewinds per-node availability (and the cached fingerprint) to match
    /// `source` without allocating — for scratch clusters that serving warm
    /// paths reuse across runs. Both clusters must have identical static
    /// content (same nodes and network), which makes the rewind a plain
    /// byte copy plus a cached-fingerprint copy.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when the static content
    /// differs (callers should fall back to a full clone).
    pub fn restore_availability_from(&mut self, source: &Cluster) -> Result<(), PlatformError> {
        if self.static_state != source.static_state
            || self.available.len() != source.available.len()
        {
            return Err(PlatformError::InvalidParameter {
                what: "availability rewind requires identical static content".into(),
            });
        }
        self.available.copy_from_slice(&source.available);
        self.fingerprint = source.fingerprint;
        Ok(())
    }

    /// Rescales this cluster in place to a *believed* copy of `base`: each
    /// node's processor throughput is divided by its entry in
    /// `node_factors` (an effective-slowdown estimate ≥ 1 lowers believed
    /// speed) and the default link bandwidth by `bandwidth_factor`, with
    /// availability copied from `base` and the cached fingerprint
    /// recomputed. Per-pair link overrides are left at their base values —
    /// the contention model degrades the shared medium, not single radios.
    ///
    /// This is how the adaptive serving loop materialises the cluster its
    /// online estimates describe without allocating: `self` must already be
    /// a clone of `base` (same shape), so the rescale only writes `f64`
    /// fields and re-folds the fingerprint. Planning against the believed
    /// cluster — rather than re-keying the true one — is what makes
    /// re-planning actually produce *different* plans: strategies are
    /// deterministic functions of the cluster they see.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when the shapes differ
    /// or a factor is not finite and positive.
    pub fn apply_rate_factors(
        &mut self,
        base: &Cluster,
        node_factors: &[f64],
        bandwidth_factor: f64,
    ) -> Result<(), PlatformError> {
        if self.nodes.len() != base.nodes.len() || node_factors.len() != base.nodes.len() {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "rate factors need matching shapes (cluster {}, base {}, factors {})",
                    self.nodes.len(),
                    base.nodes.len(),
                    node_factors.len()
                ),
            });
        }
        for &f in node_factors
            .iter()
            .chain(std::iter::once(&bandwidth_factor))
        {
            if !(f.is_finite() && f > 0.0) {
                return Err(PlatformError::InvalidParameter {
                    what: format!("rate factors must be finite and positive (got {f})"),
                });
            }
        }
        for ((node, base_node), &factor) in self
            .nodes
            .iter_mut()
            .zip(base.nodes.iter())
            .zip(node_factors.iter())
        {
            if node.processors.len() != base_node.processors.len() {
                return Err(PlatformError::InvalidParameter {
                    what: "rate factors need identical processor inventories".into(),
                });
            }
            for (p, base_p) in node.processors.iter_mut().zip(base_node.processors.iter()) {
                p.peak_gflops = base_p.peak_gflops / factor;
            }
        }
        let base_link = base.network.default_link();
        self.network.set_default_link(crate::network::Link {
            bandwidth_mbps: base_link.bandwidth_mbps / bandwidth_factor,
            latency_ms: base_link.latency_ms,
        });
        self.available.copy_from_slice(&base.available);
        self.static_state = Self::static_fingerprint_state(&self.nodes, &self.network);
        self.fingerprint = Self::fold_availability(self.static_state, &self.available);
        Ok(())
    }

    /// Marks a node as failed (paper Eq. 4) — convenience wrapper around
    /// [`Cluster::set_available`] for failure-scenario code.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownNode`] for out-of-range indices.
    pub fn fail_node(&mut self, index: NodeIndex) -> Result<(), PlatformError> {
        self.set_available(index, false)
    }

    /// Marks a previously failed node as available again.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownNode`] for out-of-range indices.
    pub fn recover_node(&mut self, index: NodeIndex) -> Result<(), PlatformError> {
        self.set_available(index, true)
    }

    /// The availability vector `A(N_ϕ)`.
    pub fn availability(&self) -> &[bool] {
        &self.available
    }

    /// Whether a node is currently available.
    pub fn is_available(&self, index: NodeIndex) -> bool {
        self.available.get(index.0).copied().unwrap_or(false)
    }

    /// Indices of all available nodes.
    pub fn available_nodes(&self) -> Vec<NodeIndex> {
        self.available
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| NodeIndex(i))
            .collect()
    }

    /// Global computation-to-communication ratio vector `Ψ` (paper Eq. 3):
    /// one entry per available node, `Λ_j(ρ_k) / β_ϕj`, where `β` is derived
    /// from the link to `reference` for a message of `message_bytes`.
    pub fn global_ratio_vector(
        &self,
        reference: NodeIndex,
        gpu_affinity: f64,
        message_bytes: u64,
    ) -> Vec<(NodeIndex, f64)> {
        self.available_nodes()
            .into_iter()
            .map(|idx| {
                let node = &self.nodes[idx.0];
                let lambda = node.aggregate_rate(gpu_affinity);
                let beta = if idx == reference {
                    // Local "transfers" go through memory: effectively
                    // unconstrained relative to the wireless links.
                    f64::INFINITY
                } else {
                    self.network
                        .link(reference, idx)
                        .map(|l| l.effective_rate(message_bytes))
                        .unwrap_or(f64::INFINITY)
                };
                let ratio = if beta.is_infinite() {
                    0.0
                } else {
                    lambda / beta
                };
                (idx, ratio)
            })
            .collect()
    }

    /// Restricts the cluster to its first `count` nodes (used by the Fig. 8
    /// node-scaling experiment).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when `count` is zero or
    /// exceeds the cluster size.
    pub fn take(&self, count: usize) -> Result<Cluster, PlatformError> {
        if count == 0 || count > self.nodes.len() {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "cannot take {count} nodes from a {}-node cluster",
                    self.nodes.len()
                ),
            });
        }
        Cluster::new(self.nodes[..count].to_vec(), self.network.clone())
    }

    /// Total idle power of all nodes in watts.
    pub fn idle_power_w(&self) -> f64 {
        self.nodes.iter().map(|n| n.idle_power_w()).sum()
    }

    /// A content fingerprint of the cluster: nodes, processors, network and
    /// the availability vector. Two clusters with the same fingerprint plan
    /// identically, so plan caches key on it; toggling availability (Eq. 4)
    /// changes the fingerprint and invalidates cached plans. Stable across
    /// processes (FNV-1a over a canonical encoding, no random hash seeds).
    ///
    /// The value is cached — this is a field read. Construction hashes the
    /// static content once and every [`Cluster::set_available`] re-folds only
    /// the availability bytes; [`Cluster::recomputed_fingerprint`] is the
    /// full O(nodes×processors) walk kept as the audit path, pinned equal by
    /// proptest (`tests/fingerprint_and_timeline.rs`).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Recomputes the fingerprint from scratch over every field — the audit
    /// counterpart of the cached [`Cluster::fingerprint`]. Intended for
    /// tests and debugging; hot paths read the cached value.
    pub fn recomputed_fingerprint(&self) -> u64 {
        let state = Self::static_fingerprint_state(&self.nodes, &self.network);
        Self::fold_availability(state, &self.available)
    }

    /// FNV-1a state after the static (availability-independent) content:
    /// node inventory, processor inventory and the network model.
    fn static_fingerprint_state(nodes: &[EdgeNode], network: &NetworkModel) -> u64 {
        let mut h = crate::fingerprint::Fnv64::new();
        h.write_usize(nodes.len());
        for node in nodes {
            h.write_str(&node.name);
            h.write_f64(node.dram_gb);
            h.write_f64(node.board_power_w);
            h.write_usize(node.processors.len());
            for p in &node.processors {
                h.write_str(&p.name);
                let (kind, cores) = match p.kind {
                    ProcessorKind::CpuCluster { cores } => (0u64, cores),
                    ProcessorKind::Gpu { cores } => (1, cores),
                    ProcessorKind::Npu => (2, 0),
                };
                h.write_u64(kind);
                h.write_usize(cores);
                h.write_f64(p.frequency_ghz);
                h.write_f64(p.peak_gflops);
                h.write_f64(p.active_power_w);
                h.write_f64(p.idle_power_w);
                h.write_f64(p.local_bandwidth_mbps);
            }
        }
        network.hash_into(&mut h);
        h.finish()
    }

    /// Folds the availability bytes onto a static-content state.
    fn fold_availability(state: u64, available: &[bool]) -> u64 {
        let mut h = crate::fingerprint::Fnv64::from_state(state);
        for available in available {
            h.write(&[u8::from(*available)]);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn cluster_construction_and_lookup() {
        let cluster = presets::paper_cluster();
        assert_eq!(cluster.len(), 5);
        assert!(!cluster.is_empty());
        assert!(cluster.node(NodeIndex(0)).is_ok());
        assert!(cluster.node(NodeIndex(9)).is_err());
        let all = cluster.all_processors();
        assert!(all.len() >= 10, "five devices with CPUs + GPUs");
        assert!(cluster.processor(all[0]).is_ok());
        assert!(cluster
            .processor(ProcessorAddr {
                node: NodeIndex(0),
                processor: ProcessorIndex(99)
            })
            .is_err());
    }

    #[test]
    fn empty_cluster_is_rejected() {
        assert!(Cluster::new(vec![], NetworkModel::paper_wireless()).is_err());
    }

    #[test]
    fn availability_toggles() {
        let mut cluster = presets::paper_cluster();
        assert_eq!(cluster.available_nodes().len(), 5);
        cluster.set_available(NodeIndex(3), false).unwrap();
        assert_eq!(cluster.available_nodes().len(), 4);
        assert!(!cluster.is_available(NodeIndex(3)));
        assert!(cluster.set_available(NodeIndex(10), false).is_err());
        assert!(!cluster.is_available(NodeIndex(10)));
    }

    #[test]
    fn fail_and_recover_round_trip_the_fingerprint() {
        let mut cluster = presets::paper_cluster();
        let pristine = cluster.fingerprint();
        // A toggle sequence: every intermediate state has a distinct
        // fingerprint, and returning to full availability restores the
        // original identity exactly.
        let mut seen = vec![pristine];
        cluster.fail_node(NodeIndex(1)).unwrap();
        seen.push(cluster.fingerprint());
        cluster.fail_node(NodeIndex(3)).unwrap();
        seen.push(cluster.fingerprint());
        cluster.recover_node(NodeIndex(1)).unwrap();
        seen.push(cluster.fingerprint());
        for (i, a) in seen.iter().enumerate() {
            for b in seen.iter().skip(i + 1) {
                assert_ne!(a, b, "every availability state has its own identity");
            }
        }
        assert!(!cluster.is_available(NodeIndex(3)));
        cluster.recover_node(NodeIndex(3)).unwrap();
        assert_eq!(cluster.fingerprint(), pristine);
        assert_eq!(cluster.available_nodes().len(), 5);
        // Re-failing an already failed node is idempotent.
        cluster.fail_node(NodeIndex(2)).unwrap();
        let failed_once = cluster.fingerprint();
        cluster.fail_node(NodeIndex(2)).unwrap();
        assert_eq!(cluster.fingerprint(), failed_once);
    }

    #[test]
    fn availability_rewind_matches_a_fresh_clone() {
        let pristine = presets::paper_cluster();
        let mut scratch = pristine.clone();
        scratch.fail_node(NodeIndex(2)).unwrap();
        scratch.fail_node(NodeIndex(4)).unwrap();
        scratch.restore_availability_from(&pristine).unwrap();
        assert_eq!(scratch, pristine);
        assert_eq!(scratch.fingerprint(), scratch.recomputed_fingerprint());
        // Static-content mismatch is rejected, leaving the target untouched.
        let smaller = pristine.take(3).unwrap();
        assert!(scratch.restore_availability_from(&smaller).is_err());
        assert_eq!(scratch, pristine);
    }

    #[test]
    fn rate_factors_rescale_a_believed_clone() {
        let base = presets::paper_cluster();
        let mut believed = base.clone();
        let factors = vec![1.0, 2.0, 1.0, 1.0, 4.0];
        believed.apply_rate_factors(&base, &factors, 2.0).unwrap();
        // Node 1's processors are believed half as fast, node 4's a quarter.
        for (p, base_p) in believed.nodes()[1]
            .processors
            .iter()
            .zip(base.nodes()[1].processors.iter())
        {
            assert_eq!(p.peak_gflops, base_p.peak_gflops / 2.0);
        }
        assert_eq!(
            believed.network().default_link().bandwidth_mbps,
            base.network().default_link().bandwidth_mbps / 2.0
        );
        // Untouched nodes keep their base speeds exactly.
        assert_eq!(believed.nodes()[0], base.nodes()[0]);
        // The believed cluster has its own identity, and the cached
        // fingerprint stays consistent with the full recomputation.
        assert_ne!(believed.fingerprint(), base.fingerprint());
        assert_eq!(believed.fingerprint(), believed.recomputed_fingerprint());
        // Unit factors rescale back to the base identity bit for bit.
        believed.apply_rate_factors(&base, &[1.0; 5], 1.0).unwrap();
        assert_eq!(believed, base);
        assert_eq!(believed.fingerprint(), base.fingerprint());
        // Shape and factor validation.
        assert!(believed.apply_rate_factors(&base, &[1.0; 3], 1.0).is_err());
        assert!(believed
            .apply_rate_factors(&base, &[1.0, 0.0, 1.0, 1.0, 1.0], 1.0)
            .is_err());
        let smaller = base.take(3).unwrap();
        assert!(believed
            .apply_rate_factors(&smaller, &[1.0; 3], 1.0)
            .is_err());
    }

    #[test]
    fn fail_and_recover_reject_unknown_nodes() {
        let mut cluster = presets::paper_cluster();
        assert!(cluster.fail_node(NodeIndex(99)).is_err());
        assert!(cluster.recover_node(NodeIndex(99)).is_err());
        // Errors leave the availability vector untouched.
        assert_eq!(cluster.available_nodes().len(), 5);
    }

    #[test]
    fn global_ratio_vector_excludes_leader_communication() {
        let cluster = presets::paper_cluster();
        let psi = cluster.global_ratio_vector(NodeIndex(0), 1.0, 1_000_000);
        assert_eq!(psi.len(), 5);
        // The leader's own entry has zero communication cost.
        assert_eq!(psi[0].1, 0.0);
        assert!(psi[1..].iter().all(|(_, r)| *r > 0.0));
    }

    #[test]
    fn take_produces_prefix_cluster() {
        let cluster = presets::paper_cluster();
        let small = cluster.take(2).unwrap();
        assert_eq!(small.len(), 2);
        assert_eq!(small.nodes()[0].name, cluster.nodes()[0].name);
        assert!(cluster.take(0).is_err());
        assert!(cluster.take(6).is_err());
    }

    #[test]
    fn idle_power_is_positive() {
        let cluster = presets::paper_cluster();
        assert!(cluster.idle_power_w() > 5.0);
    }

    #[test]
    fn fingerprint_is_stable_and_content_keyed() {
        let cluster = presets::paper_cluster();
        // Reproducible: same content, same hash, on every call.
        assert_eq!(cluster.fingerprint(), cluster.fingerprint());
        assert_eq!(
            cluster.fingerprint(),
            presets::paper_cluster().fingerprint()
        );
        // Availability is part of the identity (plan caches must not reuse
        // plans computed for a different availability vector).
        let mut degraded = cluster.clone();
        degraded.set_available(NodeIndex(2), false).unwrap();
        assert_ne!(cluster.fingerprint(), degraded.fingerprint());
        degraded.set_available(NodeIndex(2), true).unwrap();
        assert_eq!(cluster.fingerprint(), degraded.fingerprint());
        // So are the nodes and the network.
        assert_ne!(
            cluster.fingerprint(),
            cluster.take(4).unwrap().fingerprint()
        );
        let mut slow_net = cluster.clone();
        let mut network = slow_net.network().clone();
        network.set_link(
            NodeIndex(0),
            NodeIndex(1),
            crate::network::Link::new(10.0, 5.0).unwrap(),
        );
        slow_net.set_network(network);
        assert_ne!(cluster.fingerprint(), slow_net.fingerprint());
    }

    #[test]
    fn cached_fingerprint_tracks_every_mutation_path() {
        // The cached value must equal the full recomputation after every
        // mutation entry point: construction, availability toggles (both
        // wrappers), prefix restriction and network replacement.
        let mut cluster = presets::paper_cluster();
        assert_eq!(cluster.fingerprint(), cluster.recomputed_fingerprint());
        cluster.fail_node(NodeIndex(2)).unwrap();
        assert_eq!(cluster.fingerprint(), cluster.recomputed_fingerprint());
        cluster.recover_node(NodeIndex(2)).unwrap();
        assert_eq!(cluster.fingerprint(), cluster.recomputed_fingerprint());
        cluster.set_available(NodeIndex(4), false).unwrap();
        assert_eq!(cluster.fingerprint(), cluster.recomputed_fingerprint());
        let prefix = cluster.take(3).unwrap();
        assert_eq!(prefix.fingerprint(), prefix.recomputed_fingerprint());
        let mut network = cluster.network().clone();
        network.set_link(
            NodeIndex(1),
            NodeIndex(2),
            crate::network::Link::new(25.0, 3.0).unwrap(),
        );
        cluster.set_network(network);
        assert_eq!(cluster.fingerprint(), cluster.recomputed_fingerprint());
        // A failed set_available leaves the cache untouched.
        assert!(cluster.set_available(NodeIndex(99), false).is_err());
        assert_eq!(cluster.fingerprint(), cluster.recomputed_fingerprint());
    }
}
