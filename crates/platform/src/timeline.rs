//! Timed cluster-availability events: the paper's Eq. 4 node failures as a
//! first-class scenario input.
//!
//! A [`ClusterTimeline`] is an ordered list of `(time, node, up/down)`
//! events. The serving loop replays it against a working [`Cluster`] copy as
//! virtual time advances: every applied event starts a new **epoch** whose
//! [`Cluster::fingerprint`] differs from the previous one (availability is
//! part of the fingerprint), so plan-cache keys built per epoch never serve
//! a plan computed for a different availability vector.

use crate::cluster::Cluster;
use crate::node::NodeIndex;
use crate::PlatformError;
use serde::{Deserialize, Serialize};

/// One timed availability flip (paper Eq. 4): at `time` seconds of virtual
/// time, `node` goes up or down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityEvent {
    /// Virtual time of the flip, seconds since scenario start.
    pub time: f64,
    /// The node whose availability changes.
    pub node: NodeIndex,
    /// `true` = the node (re)joins the cluster, `false` = it fails.
    pub up: bool,
}

/// A time-ordered sequence of availability events.
///
/// Events are kept sorted by time; events pushed with equal times keep their
/// insertion order, so replaying the timeline is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterTimeline {
    events: Vec<AvailabilityEvent>,
}

impl ClusterTimeline {
    /// An empty timeline (the static-cluster degenerate case).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event, keeping the list sorted by time (insertion order among
    /// equal times).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when `time` is not finite
    /// and non-negative.
    pub fn push_event(
        &mut self,
        time: f64,
        node: NodeIndex,
        up: bool,
    ) -> Result<(), PlatformError> {
        if !(time.is_finite() && time >= 0.0) {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "availability event time must be finite and non-negative, got {time}"
                ),
            });
        }
        let event = AvailabilityEvent { time, node, up };
        let at = self.events.partition_point(|e| e.time <= time);
        self.events.insert(at, event);
        Ok(())
    }

    /// Builder-style [`ClusterTimeline::push_event`] for a node failure.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterTimeline::push_event`].
    pub fn node_down(mut self, time: f64, node: NodeIndex) -> Result<Self, PlatformError> {
        self.push_event(time, node, false)?;
        Ok(self)
    }

    /// Builder-style [`ClusterTimeline::push_event`] for a node recovery.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterTimeline::push_event`].
    pub fn node_up(mut self, time: f64, node: NodeIndex) -> Result<Self, PlatformError> {
        self.push_event(time, node, true)?;
        Ok(self)
    }

    /// The events in replay order.
    pub fn events(&self) -> &[AvailabilityEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last event (0 for an empty timeline) — the horizon
    /// drift and fault generators size their windows against.
    pub fn horizon(&self) -> f64 {
        self.events.last().map_or(0.0, |e| e.time)
    }

    /// Checks that every event references a node of `cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownNode`] for the first out-of-range
    /// event.
    pub fn validate(&self, cluster: &Cluster) -> Result<(), PlatformError> {
        for event in &self.events {
            cluster.node(event.node)?;
        }
        Ok(())
    }

    /// The cluster fingerprint of every epoch the timeline induces on
    /// `cluster`: entry 0 is the untouched cluster, entry `i` the fingerprint
    /// after the first `i` events have been applied. `cluster` itself is not
    /// modified. Useful for asserting that plan-cache keys change exactly at
    /// epoch boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownNode`] when an event references an
    /// unknown node.
    pub fn epoch_fingerprints(&self, cluster: &Cluster) -> Result<Vec<u64>, PlatformError> {
        let mut working = cluster.clone();
        let mut fingerprints = Vec::with_capacity(self.events.len() + 1);
        fingerprints.push(working.fingerprint());
        for event in &self.events {
            working.set_available(event.node, event.up)?;
            fingerprints.push(working.fingerprint());
        }
        Ok(fingerprints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn events_stay_sorted_with_stable_ties() {
        let timeline = ClusterTimeline::new()
            .node_down(5.0, NodeIndex(1))
            .unwrap()
            .node_down(1.0, NodeIndex(2))
            .unwrap()
            .node_up(5.0, NodeIndex(3))
            .unwrap();
        let times: Vec<f64> = timeline.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 5.0, 5.0]);
        // Equal-time events keep insertion order: node 1's flip first.
        assert_eq!(timeline.events()[1].node, NodeIndex(1));
        assert_eq!(timeline.events()[2].node, NodeIndex(3));
        assert_eq!(timeline.len(), 3);
        assert!(!timeline.is_empty());
        assert!(ClusterTimeline::new().is_empty());
    }

    #[test]
    fn invalid_times_are_rejected() {
        assert!(ClusterTimeline::new()
            .node_down(f64::NAN, NodeIndex(0))
            .is_err());
        assert!(ClusterTimeline::new()
            .node_down(-1.0, NodeIndex(0))
            .is_err());
        assert!(ClusterTimeline::new()
            .node_down(f64::INFINITY, NodeIndex(0))
            .is_err());
    }

    #[test]
    fn validate_rejects_unknown_nodes() {
        let cluster = presets::paper_cluster();
        let good = ClusterTimeline::new().node_down(1.0, NodeIndex(4)).unwrap();
        assert!(good.validate(&cluster).is_ok());
        let bad = ClusterTimeline::new().node_down(1.0, NodeIndex(9)).unwrap();
        assert!(bad.validate(&cluster).is_err());
    }

    #[test]
    fn epoch_fingerprints_change_per_event_and_round_trip() {
        let cluster = presets::paper_cluster();
        let timeline = ClusterTimeline::new()
            .node_down(1.0, NodeIndex(2))
            .unwrap()
            .node_down(2.0, NodeIndex(4))
            .unwrap()
            .node_up(3.0, NodeIndex(2))
            .unwrap()
            .node_up(4.0, NodeIndex(4))
            .unwrap();
        let fps = timeline.epoch_fingerprints(&cluster).unwrap();
        assert_eq!(fps.len(), 5);
        // Every epoch boundary changes the fingerprint...
        for pair in fps.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
        // ...and full recovery restores the original identity.
        assert_eq!(fps[0], fps[4]);
        assert_eq!(fps[0], cluster.fingerprint());
        // The probe did not mutate the input cluster.
        assert_eq!(cluster.availability(), &[true; 5]);
    }

    #[test]
    fn simultaneous_down_and_up_at_one_timestamp_apply_in_push_order() {
        let cluster = presets::paper_cluster();
        // Node 1 fails and recovers at the same instant; a different node
        // fails at that instant too. Replay order is push order, so the
        // intermediate epochs see node 1 down, then up again.
        let timeline = ClusterTimeline::new()
            .node_down(2.0, NodeIndex(1))
            .unwrap()
            .node_up(2.0, NodeIndex(1))
            .unwrap()
            .node_down(2.0, NodeIndex(3))
            .unwrap();
        let events = timeline.events();
        assert!(events.iter().all(|e| e.time == 2.0));
        assert_eq!(
            events.iter().map(|e| (e.node, e.up)).collect::<Vec<_>>(),
            vec![
                (NodeIndex(1), false),
                (NodeIndex(1), true),
                (NodeIndex(3), false)
            ]
        );
        let fps = timeline.epoch_fingerprints(&cluster).unwrap();
        // down(1) → up(1) round-trips the fingerprint before down(3) lands.
        assert_ne!(fps[0], fps[1]);
        assert_eq!(fps[0], fps[2]);
        assert_ne!(fps[2], fps[3]);
    }

    #[test]
    fn time_zero_is_valid_and_anything_earlier_is_not() {
        // t = 0 (and -0.0, which is non-negative) is a legal "down from the
        // start" event; any strictly earlier time is rejected.
        let timeline = ClusterTimeline::new()
            .node_down(0.0, NodeIndex(0))
            .unwrap()
            .node_down(-0.0, NodeIndex(1))
            .unwrap();
        assert_eq!(timeline.len(), 2);
        // The -0.0 push sorts as an equal-time tie, after the first event.
        assert_eq!(timeline.events()[1].node, NodeIndex(1));
        assert!(ClusterTimeline::new()
            .node_down(-1e-9, NodeIndex(0))
            .is_err());
        assert!(ClusterTimeline::new()
            .node_down(f64::NEG_INFINITY, NodeIndex(0))
            .is_err());
    }

    #[test]
    fn double_fail_and_double_recover_are_idempotent_epochs() {
        let cluster = presets::paper_cluster();
        let timeline = ClusterTimeline::new()
            .node_down(1.0, NodeIndex(2))
            .unwrap()
            .node_down(2.0, NodeIndex(2))
            .unwrap()
            .node_up(3.0, NodeIndex(2))
            .unwrap()
            .node_up(4.0, NodeIndex(2))
            .unwrap();
        let fps = timeline.epoch_fingerprints(&cluster).unwrap();
        assert_eq!(fps.len(), 5);
        // The second fail and the second recover are no-ops on availability:
        // the epoch fingerprint does not move.
        assert_ne!(fps[0], fps[1]);
        assert_eq!(fps[1], fps[2]);
        assert_ne!(fps[2], fps[3]);
        assert_eq!(fps[3], fps[4]);
        assert_eq!(fps[0], fps[3]);
    }
}
