//! Inter-node network model.
//!
//! The paper connects the edge cluster over an 80 MB/s wireless network and
//! measures each node's communication rate `β_ϕj` by timing pseudo-packet
//! round trips. We model a link by bandwidth plus a fixed per-message
//! latency, with optional per-pair overrides.

use crate::node::NodeIndex;
use crate::PlatformError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A point-to-point link description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sustained bandwidth in megabytes per second.
    pub bandwidth_mbps: f64,
    /// Per-message latency in milliseconds.
    pub latency_ms: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] for non-positive bandwidth
    /// or negative latency.
    pub fn new(bandwidth_mbps: f64, latency_ms: f64) -> Result<Self, PlatformError> {
        if bandwidth_mbps <= 0.0 || !bandwidth_mbps.is_finite() {
            return Err(PlatformError::InvalidParameter {
                what: format!("link bandwidth must be positive, got {bandwidth_mbps}"),
            });
        }
        if latency_ms < 0.0 || !latency_ms.is_finite() {
            return Err(PlatformError::InvalidParameter {
                what: format!("link latency must be non-negative, got {latency_ms}"),
            });
        }
        Ok(Self {
            bandwidth_mbps,
            latency_ms,
        })
    }

    /// Time in seconds to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_ms / 1e3 + bytes as f64 / (self.bandwidth_mbps * 1e6)
    }

    /// Effective communication rate in bytes/second for messages of `bytes`
    /// (the `β` scalar the paper derives from pseudo-packet timing).
    pub fn effective_rate(&self, bytes: u64) -> f64 {
        bytes.max(1) as f64 / self.transfer_time(bytes)
    }
}

/// The cluster network: a default wireless link plus optional per-pair
/// overrides (e.g. a node with a weaker radio).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    default_link: Link,
    overrides: HashMap<(usize, usize), Link>,
}

impl NetworkModel {
    /// Creates a network where every node pair uses `default_link`.
    pub fn uniform(default_link: Link) -> Self {
        Self {
            default_link,
            overrides: HashMap::new(),
        }
    }

    /// The paper's setup: 80 MB/s wireless with 2 ms message latency.
    pub fn paper_wireless() -> Self {
        Self::uniform(Link::new(80.0, 2.0).expect("static link parameters are valid"))
    }

    /// Sets a link override for the (unordered) pair `a`–`b`.
    pub fn set_link(&mut self, a: NodeIndex, b: NodeIndex, link: Link) {
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.overrides.insert(key, link);
    }

    /// The link used between two nodes. Transfers within the same node are
    /// free (handled by the local memory system, not the network).
    pub fn link(&self, a: NodeIndex, b: NodeIndex) -> Option<Link> {
        if a == b {
            return None;
        }
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        Some(*self.overrides.get(&key).unwrap_or(&self.default_link))
    }

    /// Time in seconds to move `bytes` from `a` to `b` (zero within a node).
    pub fn transfer_time(&self, a: NodeIndex, b: NodeIndex, bytes: u64) -> f64 {
        match self.link(a, b) {
            Some(link) => link.transfer_time(bytes),
            None => 0.0,
        }
    }

    /// The default link.
    pub fn default_link(&self) -> Link {
        self.default_link
    }

    /// Replaces the default link in place, without touching the overrides —
    /// the alloc-free rescale [`crate::Cluster::apply_rate_factors`] uses to
    /// materialise a believed network from online bandwidth estimates.
    /// Callers own fingerprint maintenance (the cluster recomputes its
    /// cached state after mutating through this).
    pub(crate) fn set_default_link(&mut self, link: Link) {
        self.default_link = link;
    }

    /// Feeds the network description into a fingerprint accumulator.
    /// Overrides are hashed in sorted key order so the hash does not depend
    /// on `HashMap` iteration order.
    pub(crate) fn hash_into(&self, h: &mut crate::fingerprint::Fnv64) {
        h.write_f64(self.default_link.bandwidth_mbps);
        h.write_f64(self.default_link.latency_ms);
        let mut overrides: Vec<(&(usize, usize), &Link)> = self.overrides.iter().collect();
        overrides.sort_by_key(|(key, _)| **key);
        h.write_usize(overrides.len());
        for ((a, b), link) in overrides {
            h.write_usize(*a);
            h.write_usize(*b);
            h.write_f64(link.bandwidth_mbps);
            h.write_f64(link.latency_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_has_latency_floor() {
        let link = Link::new(80.0, 2.0).unwrap();
        // Even a 1-byte message pays the 2 ms latency.
        assert!(link.transfer_time(1) >= 0.002);
        // 80 MB should take ~1 s + latency.
        let t = link.transfer_time(80_000_000);
        assert!((t - 1.002).abs() < 1e-9);
    }

    #[test]
    fn invalid_links_are_rejected() {
        assert!(Link::new(0.0, 1.0).is_err());
        assert!(Link::new(-5.0, 1.0).is_err());
        assert!(Link::new(10.0, -1.0).is_err());
        assert!(Link::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn same_node_transfer_is_free() {
        let net = NetworkModel::paper_wireless();
        assert_eq!(
            net.transfer_time(NodeIndex(0), NodeIndex(0), 1_000_000),
            0.0
        );
        assert!(net.transfer_time(NodeIndex(0), NodeIndex(1), 1_000_000) > 0.0);
    }

    #[test]
    fn overrides_are_symmetric() {
        let mut net = NetworkModel::paper_wireless();
        let slow = Link::new(10.0, 5.0).unwrap();
        net.set_link(NodeIndex(2), NodeIndex(0), slow);
        assert_eq!(net.link(NodeIndex(0), NodeIndex(2)), Some(slow));
        assert_eq!(net.link(NodeIndex(2), NodeIndex(0)), Some(slow));
        // Other pairs still use the default.
        assert_eq!(
            net.link(NodeIndex(0), NodeIndex(1)),
            Some(net.default_link())
        );
    }

    #[test]
    fn effective_rate_grows_with_message_size() {
        let link = Link::new(80.0, 2.0).unwrap();
        assert!(link.effective_rate(10_000_000) > link.effective_rate(10_000));
    }
}
