//! Energy accounting for simulated executions.
//!
//! The paper measures run-time power with onboard sensors (Jetson) or a
//! shunt resistor (Raspberry Pi) and reports energy per inference. We
//! integrate the same quantity analytically: each processor contributes its
//! active power for the time it is busy and its idle power for the rest of
//! the measurement window, plus a static board power per node.

use crate::cluster::Cluster;
use crate::node::ProcessorAddr;
use crate::PlatformError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Accumulates per-processor busy time over a measurement window and converts
/// it to energy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    busy_seconds: HashMap<ProcessorAddr, f64>,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `seconds` of busy time on a processor.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] for negative or non-finite
    /// durations.
    pub fn record_busy(&mut self, addr: ProcessorAddr, seconds: f64) -> Result<(), PlatformError> {
        if seconds < 0.0 || !seconds.is_finite() {
            return Err(PlatformError::InvalidParameter {
                what: format!("busy time must be non-negative and finite, got {seconds}"),
            });
        }
        *self.busy_seconds.entry(addr).or_insert(0.0) += seconds;
        Ok(())
    }

    /// Total busy time recorded for a processor.
    pub fn busy_seconds(&self, addr: ProcessorAddr) -> f64 {
        self.busy_seconds.get(&addr).copied().unwrap_or(0.0)
    }

    /// The recorded `(processor, busy_seconds)` pairs in ascending address
    /// order. Energy sums iterate this instead of the accounting map so the
    /// floating-point addition order — and therefore every reported energy —
    /// is bit-reproducible across runs.
    fn sorted_busy(&self) -> Vec<(ProcessorAddr, f64)> {
        let mut entries: Vec<(ProcessorAddr, f64)> = self
            .busy_seconds
            .iter()
            .map(|(addr, busy)| (*addr, *busy))
            .collect();
        entries.sort_by_key(|(addr, _)| *addr);
        entries
    }

    /// Total energy in joules consumed by the whole cluster over a window of
    /// `window_seconds`, counting idle power of every node whether or not it
    /// did any work.
    ///
    /// # Errors
    ///
    /// Returns an error when a recorded processor address does not exist in
    /// `cluster`.
    pub fn total_energy(
        &self,
        cluster: &Cluster,
        window_seconds: f64,
    ) -> Result<f64, PlatformError> {
        let mut energy = 0.0;
        // Static + idle power for every node over the full window.
        for node in cluster.nodes() {
            energy += node.idle_power_w() * window_seconds;
        }
        // Dynamic increment: busy processors draw (active - idle).
        for (addr, busy) in self.sorted_busy() {
            let processor = cluster.processor(addr)?;
            let busy = busy.min(window_seconds);
            energy += processor.dynamic_power_w() * busy;
        }
        Ok(energy)
    }

    /// Energy attributable to the work itself (dynamic part only): the
    /// difference between running the workload and leaving the cluster idle
    /// for the same window. This is the per-inference energy the paper's
    /// Fig. 5(b) compares.
    ///
    /// # Errors
    ///
    /// Returns an error when a recorded processor address does not exist in
    /// `cluster`.
    pub fn dynamic_energy(&self, cluster: &Cluster) -> Result<f64, PlatformError> {
        let mut energy = 0.0;
        for (addr, busy) in self.sorted_busy() {
            let processor = cluster.processor(addr)?;
            energy += processor.dynamic_power_w() * busy;
        }
        Ok(energy)
    }

    /// Clears every recorded busy time, keeping the accounting map's
    /// capacity — the reset used by `hidp_sim::SimScratch` to reuse one
    /// meter across simulations without reallocating its table.
    pub fn reset(&mut self) {
        self.busy_seconds.clear();
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (addr, busy) in &other.busy_seconds {
            *self.busy_seconds.entry(*addr).or_insert(0.0) += busy;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeIndex, ProcessorIndex};
    use crate::presets;

    fn addr(node: usize, proc: usize) -> ProcessorAddr {
        ProcessorAddr {
            node: NodeIndex(node),
            processor: ProcessorIndex(proc),
        }
    }

    #[test]
    fn busy_time_accumulates() {
        let mut meter = EnergyMeter::new();
        meter.record_busy(addr(0, 0), 0.5).unwrap();
        meter.record_busy(addr(0, 0), 0.25).unwrap();
        assert!((meter.busy_seconds(addr(0, 0)) - 0.75).abs() < 1e-12);
        assert_eq!(meter.busy_seconds(addr(1, 0)), 0.0);
    }

    #[test]
    fn negative_busy_time_is_rejected() {
        let mut meter = EnergyMeter::new();
        assert!(meter.record_busy(addr(0, 0), -1.0).is_err());
        assert!(meter.record_busy(addr(0, 0), f64::NAN).is_err());
    }

    #[test]
    fn total_energy_includes_idle_floor() {
        let cluster = presets::paper_cluster();
        let meter = EnergyMeter::new();
        let idle_only = meter.total_energy(&cluster, 1.0).unwrap();
        assert!((idle_only - cluster.idle_power_w()).abs() < 1e-9);

        let mut busy = EnergyMeter::new();
        busy.record_busy(addr(0, 1), 0.5).unwrap();
        let with_work = busy.total_energy(&cluster, 1.0).unwrap();
        assert!(with_work > idle_only);
    }

    #[test]
    fn dynamic_energy_counts_only_busy_processors() {
        let cluster = presets::paper_cluster();
        let mut meter = EnergyMeter::new();
        meter.record_busy(addr(1, 2), 1.0).unwrap();
        let gpu = cluster.processor(addr(1, 2)).unwrap();
        let expected = gpu.active_power_w - gpu.idle_power_w;
        assert!((meter.dynamic_energy(&cluster).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn unknown_processor_is_reported() {
        let cluster = presets::paper_cluster();
        let mut meter = EnergyMeter::new();
        meter.record_busy(addr(9, 0), 1.0).unwrap();
        assert!(meter.total_energy(&cluster, 1.0).is_err());
    }

    #[test]
    fn energy_sums_are_bit_reproducible_across_insertion_orders() {
        // The same busy set recorded in different orders must produce the
        // exact same energy: summation runs in sorted address order, not in
        // HashMap iteration order.
        let cluster = presets::paper_cluster();
        let all: Vec<_> = cluster.all_processors();
        let mut forward = EnergyMeter::new();
        for (i, addr) in all.iter().enumerate() {
            forward.record_busy(*addr, 0.1 + i as f64 * 0.013).unwrap();
        }
        let mut backward = EnergyMeter::new();
        for (i, addr) in all.iter().enumerate().rev() {
            backward.record_busy(*addr, 0.1 + i as f64 * 0.013).unwrap();
        }
        assert_eq!(
            forward.total_energy(&cluster, 1.0).unwrap(),
            backward.total_energy(&cluster, 1.0).unwrap()
        );
        assert_eq!(
            forward.dynamic_energy(&cluster).unwrap(),
            backward.dynamic_energy(&cluster).unwrap()
        );
    }

    #[test]
    fn merge_combines_busy_time() {
        let mut a = EnergyMeter::new();
        a.record_busy(addr(0, 0), 1.0).unwrap();
        let mut b = EnergyMeter::new();
        b.record_busy(addr(0, 0), 0.5).unwrap();
        b.record_busy(addr(2, 1), 0.25).unwrap();
        a.merge(&b);
        assert!((a.busy_seconds(addr(0, 0)) - 1.5).abs() < 1e-12);
        assert!((a.busy_seconds(addr(2, 1)) - 0.25).abs() < 1e-12);
    }
}
