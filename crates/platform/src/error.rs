use std::error::Error;
use std::fmt;

/// Error type for platform model construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A node index referenced a node that does not exist in the cluster.
    UnknownNode {
        /// The offending index.
        index: usize,
    },
    /// A processor index referenced a processor that does not exist on a node.
    UnknownProcessor {
        /// Node index.
        node: usize,
        /// Processor index within the node.
        processor: usize,
    },
    /// An invalid parameter was supplied (non-positive rate, empty cluster, ...).
    InvalidParameter {
        /// Description of the invalid parameter.
        what: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownNode { index } => write!(f, "unknown node index {index}"),
            PlatformError::UnknownProcessor { node, processor } => {
                write!(f, "unknown processor {processor} on node {node}")
            }
            PlatformError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        assert!(PlatformError::UnknownNode { index: 3 }
            .to_string()
            .contains('3'));
        assert!(PlatformError::UnknownProcessor {
            node: 1,
            processor: 2
        }
        .to_string()
        .contains("processor 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlatformError>();
    }
}
