//! Fleet tier: many clusters behind a WAN.
//!
//! The paper's hierarchy stops at node→processor inside one edge cluster;
//! the fleet tier adds cluster selection above it. A [`Fleet`] is a set of
//! [`Cluster`]s, each sitting in a *region*, connected by a [`WanModel`] —
//! the wide-area analogue of [`crate::NetworkModel`]: one default link plus
//! per-cluster-pair latency/bandwidth overrides. Requests originate in a
//! region and enter the WAN through that region's ingress cluster; the cost
//! of serving a request on a remote cluster is the round trip from the
//! ingress to that cluster.
//!
//! The routing tier (hidp-core's `FleetScenario`) keys its decisions on the
//! same cluster fingerprints the plan cache keys on, so an availability flip
//! re-keys routing exactly the way it re-keys planning.

use crate::cluster::Cluster;
use crate::network::Link;
use crate::PlatformError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The wide-area network between the clusters of a [`Fleet`]: a default
/// inter-cluster link plus per-cluster-pair overrides (e.g. cheap
/// same-region backhaul, slow transcontinental pairs). The WAN connects
/// *clusters* (sites), not nodes — intra-cluster traffic stays on each
/// cluster's own [`crate::NetworkModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WanModel {
    sites: usize,
    default_link: Link,
    overrides: HashMap<(usize, usize), Link>,
}

impl WanModel {
    /// Creates a WAN where every cluster pair uses `default_link`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when `sites` is zero.
    pub fn uniform(sites: usize, default_link: Link) -> Result<Self, PlatformError> {
        if sites == 0 {
            return Err(PlatformError::InvalidParameter {
                what: "a WAN needs at least one site".into(),
            });
        }
        Ok(Self {
            sites,
            default_link,
            overrides: HashMap::new(),
        })
    }

    /// Number of sites (clusters) the WAN connects.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The default inter-cluster link.
    pub fn default_link(&self) -> Link {
        self.default_link
    }

    /// Sets a link override for the (unordered) cluster pair `a`–`b`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] for out-of-range sites or
    /// a self-pair.
    pub fn set_link(&mut self, a: usize, b: usize, link: Link) -> Result<(), PlatformError> {
        if a >= self.sites || b >= self.sites {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "WAN link ({a}, {b}) references a site outside 0..{}",
                    self.sites
                ),
            });
        }
        if a == b {
            return Err(PlatformError::InvalidParameter {
                what: format!("WAN link ({a}, {b}) is a self-pair; intra-site traffic is free"),
            });
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        self.overrides.insert(key, link);
        Ok(())
    }

    /// The link between two clusters. Traffic within one cluster does not
    /// touch the WAN.
    pub fn link(&self, a: usize, b: usize) -> Option<Link> {
        if a == b {
            return None;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        Some(*self.overrides.get(&key).unwrap_or(&self.default_link))
    }

    /// Round-trip time in seconds for a `payload_bytes` request from site
    /// `a` to site `b` and a latency-only response back (zero within one
    /// site).
    pub fn round_trip_seconds(&self, a: usize, b: usize, payload_bytes: u64) -> f64 {
        match self.link(a, b) {
            Some(link) => link.transfer_time(payload_bytes) + link.latency_ms / 1e3,
            None => 0.0,
        }
    }

    /// Feeds the WAN description into a fingerprint accumulator. Overrides
    /// are hashed in sorted key order so the hash does not depend on
    /// `HashMap` iteration order.
    pub(crate) fn hash_into(&self, h: &mut crate::fingerprint::Fnv64) {
        h.write_usize(self.sites);
        h.write_f64(self.default_link.bandwidth_mbps);
        h.write_f64(self.default_link.latency_ms);
        let mut overrides: Vec<(&(usize, usize), &Link)> = self.overrides.iter().collect();
        overrides.sort_by_key(|(key, _)| **key);
        h.write_usize(overrides.len());
        for ((a, b), link) in overrides {
            h.write_usize(*a);
            h.write_usize(*b);
            h.write_f64(link.bandwidth_mbps);
            h.write_f64(link.latency_ms);
        }
    }
}

/// A fleet of heterogeneous edge clusters: the third tier of the hierarchy
/// (fleet → cluster → node → processor). Each cluster sits in a region;
/// requests originate in a region and enter through that region's *ingress*
/// cluster (its first cluster), so the WAN cost of a routing decision is
/// [`Fleet::wan_round_trip`] from the ingress to the serving cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    clusters: Vec<Cluster>,
    regions: Vec<usize>,
    region_count: usize,
    /// Ingress cluster per region: the first cluster listed in the region.
    ingress: Vec<usize>,
    wan: WanModel,
}

impl Fleet {
    /// Creates a fleet from clusters, their region assignment and the WAN.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when the fleet is empty,
    /// `regions` does not match the cluster count, the WAN site count does
    /// not match, or a region in `0..max+1` has no cluster.
    pub fn new(
        clusters: Vec<Cluster>,
        regions: Vec<usize>,
        wan: WanModel,
    ) -> Result<Self, PlatformError> {
        if clusters.is_empty() {
            return Err(PlatformError::InvalidParameter {
                what: "a fleet needs at least one cluster".into(),
            });
        }
        if regions.len() != clusters.len() {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "{} region assignments for {} clusters",
                    regions.len(),
                    clusters.len()
                ),
            });
        }
        if wan.sites() != clusters.len() {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "WAN connects {} sites but the fleet has {} clusters",
                    wan.sites(),
                    clusters.len()
                ),
            });
        }
        let region_count = regions.iter().copied().max().unwrap_or(0) + 1;
        let mut ingress = vec![usize::MAX; region_count];
        for (cluster, &region) in regions.iter().enumerate() {
            if ingress[region] == usize::MAX {
                ingress[region] = cluster;
            }
        }
        if let Some(empty) = ingress.iter().position(|&i| i == usize::MAX) {
            return Err(PlatformError::InvalidParameter {
                what: format!("region {empty} has no cluster (regions must be contiguous)"),
            });
        }
        Ok(Self {
            clusters,
            regions,
            region_count,
            ingress,
            wan,
        })
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the fleet has no clusters (never true for valid fleets).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// One cluster.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] for out-of-range indices.
    pub fn cluster(&self, index: usize) -> Result<&Cluster, PlatformError> {
        self.clusters
            .get(index)
            .ok_or_else(|| PlatformError::InvalidParameter {
                what: format!("cluster {index} outside fleet of {}", self.clusters.len()),
            })
    }

    /// The region a cluster sits in.
    pub fn region_of(&self, cluster: usize) -> usize {
        self.regions[cluster]
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// The ingress cluster of a region (its first cluster): where requests
    /// originating in the region enter the WAN.
    pub fn ingress(&self, region: usize) -> usize {
        self.ingress[region]
    }

    /// The WAN connecting the clusters.
    pub fn wan(&self) -> &WanModel {
        &self.wan
    }

    /// Total node count across all clusters.
    pub fn total_nodes(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }

    /// Round-trip WAN cost of serving a `payload_bytes` request that
    /// originates in `region` on `cluster`: the trip from the region's
    /// ingress to the cluster and the latency back. Zero when the serving
    /// cluster is the ingress itself.
    pub fn wan_round_trip(&self, region: usize, cluster: usize, payload_bytes: u64) -> f64 {
        self.wan
            .round_trip_seconds(self.ingress[region], cluster, payload_bytes)
    }

    /// A content fingerprint of the whole fleet: the per-cluster
    /// fingerprints (availability included — a node failure anywhere changes
    /// the fleet identity), the region assignment and the WAN. Stable across
    /// processes, like [`Cluster::fingerprint`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv64::new();
        h.write_usize(self.clusters.len());
        for cluster in &self.clusters {
            h.write_u64(cluster.fingerprint());
        }
        for &region in &self.regions {
            h.write_usize(region);
        }
        self.wan.hash_into(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::NodeIndex;

    fn two_region_fleet() -> Fleet {
        presets::generated_fleet(4, 2).unwrap()
    }

    #[test]
    fn wan_links_default_and_override() {
        let mut wan = WanModel::uniform(3, Link::new(25.0, 40.0).unwrap()).unwrap();
        assert_eq!(wan.sites(), 3);
        assert_eq!(wan.link(0, 0), None);
        assert_eq!(wan.round_trip_seconds(1, 1, 1_000_000), 0.0);
        let fast = Link::new(500.0, 2.0).unwrap();
        wan.set_link(2, 0, fast).unwrap();
        assert_eq!(wan.link(0, 2), Some(fast));
        assert_eq!(wan.link(2, 0), Some(fast));
        assert_eq!(wan.link(0, 1), Some(wan.default_link()));
        // Round trip = payload transfer one way + latency back.
        let rt = wan.round_trip_seconds(0, 1, 25_000_000);
        assert!((rt - (0.04 + 1.0 + 0.04)).abs() < 1e-9);
        assert!(wan.set_link(0, 9, fast).is_err());
        assert!(wan.set_link(1, 1, fast).is_err());
        assert!(WanModel::uniform(0, fast).is_err());
    }

    #[test]
    fn fleet_validates_shape() {
        let wan = WanModel::uniform(2, Link::new(25.0, 40.0).unwrap()).unwrap();
        let clusters = vec![presets::paper_cluster(), presets::tx2_only()];
        assert!(Fleet::new(
            vec![],
            vec![],
            WanModel::uniform(1, wan.default_link()).unwrap()
        )
        .is_err());
        assert!(Fleet::new(clusters.clone(), vec![0], wan.clone()).is_err());
        // Region 1 empty (assignments 0 and 2): rejected.
        assert!(Fleet::new(clusters.clone(), vec![0, 2], wan.clone()).is_err());
        // WAN site count must match.
        let wan3 = WanModel::uniform(3, wan.default_link()).unwrap();
        assert!(Fleet::new(clusters.clone(), vec![0, 1], wan3).is_err());
        let fleet = Fleet::new(clusters, vec![0, 1], wan).unwrap();
        assert_eq!(fleet.len(), 2);
        assert_eq!(fleet.region_count(), 2);
        assert_eq!(fleet.ingress(0), 0);
        assert_eq!(fleet.ingress(1), 1);
        assert_eq!(fleet.total_nodes(), 6);
        assert!(fleet.cluster(2).is_err());
    }

    #[test]
    fn generated_fleet_is_heterogeneous_and_regional() {
        let fleet = presets::generated_fleet(8, 4).unwrap();
        assert_eq!(fleet.len(), 8);
        assert_eq!(fleet.region_count(), 4);
        // Cluster i sits in region i % 4; each region's ingress is its
        // first cluster.
        for i in 0..8 {
            assert_eq!(fleet.region_of(i), i % 4);
        }
        for r in 0..4 {
            assert_eq!(fleet.ingress(r), r);
        }
        // Sizes vary: the generator cycles 3..=6 nodes per cluster.
        let sizes: Vec<usize> = fleet.clusters().iter().map(Cluster::len).collect();
        assert!(
            sizes.iter().any(|&s| s != sizes[0]),
            "sizes vary: {sizes:?}"
        );
        assert!(sizes.iter().all(|&s| (3..=6).contains(&s)));
        // Same-region pairs ride the cheap backhaul override, cross-region
        // pairs the default.
        let same = fleet.wan().link(0, 4).unwrap();
        let cross = fleet.wan().link(0, 1).unwrap();
        assert!(same.latency_ms < cross.latency_ms);
        assert!(same.bandwidth_mbps > cross.bandwidth_mbps);
        // Serving in-region is WAN-free at the ingress and cheap elsewhere
        // in the region; serving cross-region pays the default round trip.
        assert_eq!(fleet.wan_round_trip(0, 0, 150_000), 0.0);
        assert!(fleet.wan_round_trip(0, 4, 150_000) < fleet.wan_round_trip(0, 1, 150_000));
        // Invalid shapes are rejected.
        assert!(presets::generated_fleet(0, 1).is_err());
        assert!(presets::generated_fleet(4, 0).is_err());
        assert!(presets::generated_fleet(2, 3).is_err());
    }

    #[test]
    fn fleet_fingerprint_tracks_cluster_epochs() {
        let mut fleet = two_region_fleet();
        let pristine = fleet.fingerprint();
        assert_eq!(pristine, two_region_fleet().fingerprint());
        // A node failure inside any one cluster re-keys the fleet, exactly
        // like it re-keys that cluster's plans.
        fleet.clusters[2].fail_node(NodeIndex(0)).unwrap();
        let degraded = fleet.fingerprint();
        assert_ne!(pristine, degraded);
        fleet.clusters[2].recover_node(NodeIndex(0)).unwrap();
        assert_eq!(pristine, fleet.fingerprint());
    }
}
