//! Edge node models (`ϕ_j` in the paper): a named device with a set of
//! heterogeneous processors and a DRAM budget.

use crate::processor::Processor;
use crate::PlatformError;
use serde::{Deserialize, Serialize};

/// Index of a node within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeIndex(pub usize);

impl std::fmt::Display for NodeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Index of a processor within an [`EdgeNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessorIndex(pub usize);

impl std::fmt::Display for ProcessorIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// Fully qualified processor address: (node, processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessorAddr {
    /// The node hosting the processor.
    pub node: NodeIndex,
    /// The processor within that node.
    pub processor: ProcessorIndex,
}

impl std::fmt::Display for ProcessorAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.node, self.processor)
    }
}

/// One edge device (`ϕ_j`): a collection of processors plus memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeNode {
    /// Device name (e.g. `"jetson-tx2"`).
    pub name: String,
    /// The processors available on this node (`{ρ_1 … ρ_k}`).
    pub processors: Vec<Processor>,
    /// DRAM capacity in gigabytes.
    pub dram_gb: f64,
    /// Static board power (always drawn while the node is on), in watts.
    pub board_power_w: f64,
}

impl EdgeNode {
    /// Creates a node.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when `processors` is empty
    /// or `dram_gb` is not positive.
    pub fn new(
        name: impl Into<String>,
        processors: Vec<Processor>,
        dram_gb: f64,
    ) -> Result<Self, PlatformError> {
        let name = name.into();
        if processors.is_empty() {
            return Err(PlatformError::InvalidParameter {
                what: format!("node `{name}` needs at least one processor"),
            });
        }
        if dram_gb <= 0.0 || dram_gb.is_nan() {
            return Err(PlatformError::InvalidParameter {
                what: format!("node `{name}` needs positive DRAM, got {dram_gb}"),
            });
        }
        Ok(Self {
            name,
            processors,
            dram_gb,
            board_power_w: 2.0,
        })
    }

    /// Overrides the static board power (builder style).
    pub fn with_board_power(mut self, watts: f64) -> Self {
        self.board_power_w = watts;
        self
    }

    /// Looks up a processor by index.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownProcessor`] for out-of-range indices.
    pub fn processor(&self, index: ProcessorIndex) -> Result<&Processor, PlatformError> {
        self.processors
            .get(index.0)
            .ok_or(PlatformError::UnknownProcessor {
                node: usize::MAX,
                processor: index.0,
            })
    }

    /// Number of processors.
    pub fn processor_count(&self) -> usize {
        self.processors.len()
    }

    /// Aggregate computation rate `Λ_j` in flops/second: the sum of all
    /// processor rates for a workload with the given GPU affinity
    /// (paper Eq. 2).
    pub fn aggregate_rate(&self, gpu_affinity: f64) -> f64 {
        self.processors
            .iter()
            .map(|p| p.computation_rate(gpu_affinity))
            .sum()
    }

    /// Computation rate of the fastest single processor for this affinity.
    pub fn best_single_rate(&self, gpu_affinity: f64) -> f64 {
        self.processors
            .iter()
            .map(|p| p.computation_rate(gpu_affinity))
            .fold(0.0, f64::max)
    }

    /// Index of the GPU, if the node has one.
    pub fn gpu_index(&self) -> Option<ProcessorIndex> {
        self.processors
            .iter()
            .position(|p| p.kind.is_gpu())
            .map(ProcessorIndex)
    }

    /// Indices of all CPU clusters.
    pub fn cpu_indices(&self) -> Vec<ProcessorIndex> {
        self.processors
            .iter()
            .enumerate()
            .filter(|(_, p)| p.kind.is_cpu())
            .map(|(i, _)| ProcessorIndex(i))
            .collect()
    }

    /// Total idle power of the node (board + all processors idle).
    pub fn idle_power_w(&self) -> f64 {
        self.board_power_w + self.processors.iter().map(|p| p.idle_power_w).sum::<f64>()
    }

    /// Local computation-to-communication ratio vector `ψ` (paper Eq. 1):
    /// one entry per processor, `λ_k / μ_k` with `μ_k` in bytes/second.
    pub fn local_ratio_vector(&self, gpu_affinity: f64) -> Vec<f64> {
        self.processors
            .iter()
            .map(|p| p.computation_rate(gpu_affinity) / (p.local_bandwidth_mbps * 1e6))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_node() -> EdgeNode {
        EdgeNode::new(
            "test",
            vec![
                Processor::cpu("big", 4, 2.0, 60.0),
                Processor::cpu("little", 4, 1.4, 30.0),
                Processor::gpu("gpu", 256, 1.3, 600.0),
            ],
            8.0,
        )
        .unwrap()
    }

    #[test]
    fn aggregate_rate_sums_processors() {
        let node = test_node();
        let rate = node.aggregate_rate(1.0);
        let expected = (60.0 * 0.85 + 30.0 * 0.85 + 600.0) * 1e9;
        assert!((rate - expected).abs() / expected < 1e-9);
        assert!(node.best_single_rate(1.0) < rate);
    }

    #[test]
    fn gpu_and_cpu_lookup() {
        let node = test_node();
        assert_eq!(node.gpu_index(), Some(ProcessorIndex(2)));
        assert_eq!(
            node.cpu_indices(),
            vec![ProcessorIndex(0), ProcessorIndex(1)]
        );
        assert_eq!(node.processor_count(), 3);
        assert!(node.processor(ProcessorIndex(5)).is_err());
    }

    #[test]
    fn empty_or_invalid_nodes_are_rejected() {
        assert!(EdgeNode::new("none", vec![], 4.0).is_err());
        assert!(EdgeNode::new("bad", vec![Processor::cpu("c", 1, 1.0, 10.0)], 0.0).is_err());
    }

    #[test]
    fn local_ratio_vector_has_one_entry_per_processor() {
        let node = test_node();
        let psi = node.local_ratio_vector(0.8);
        assert_eq!(psi.len(), 3);
        assert!(psi.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn idle_power_includes_board_power() {
        let node = test_node().with_board_power(3.0);
        assert!(node.idle_power_w() > 3.0);
    }

    #[test]
    fn display_formats_are_stable() {
        let addr = ProcessorAddr {
            node: NodeIndex(1),
            processor: ProcessorIndex(2),
        };
        assert_eq!(addr.to_string(), "node1/proc2");
    }
}
