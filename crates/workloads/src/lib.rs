//! # hidp-workloads
//!
//! Workload generators for the HiDP evaluation: single inference requests,
//! the dynamic scenario of Fig. 6 (one model arriving every 0.5 s), the eight
//! workload mixes of Fig. 7, and Poisson request streams for stress tests.
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use hidp_workloads::{dynamic_scenario, mixes};
//!
//! let stream = dynamic_scenario();
//! assert_eq!(stream.len(), 4);
//! assert_eq!(mixes::all_mixes().len(), 8);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod mixes;
mod request;
mod stream;

pub use chaos::{
    standard_drift_suite, standard_fault_suite, DriftPlanConfig, FaultPlan, FaultPlanConfig,
};
pub use request::InferenceRequest;
pub use stream::{
    bursty_stream, diurnal_stream, dynamic_scenario, failure_injected_stream, poisson_stream,
    poisson_stream_classed, regional_diurnal_stream, repeating_stream, StreamBuilder,
};
// The SLA vocabulary generators tag requests with — and the fleet request
// type the regional generator produces — re-exported so workload consumers
// need not depend on hidp-core/hidp-sim directly.
pub use hidp_core::{FleetRequest, SlaClass};
