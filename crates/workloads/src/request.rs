//! Inference requests: the unit of work HiDP schedules.

use hidp_core::{
    CoreError, DistributedStrategy, Evaluation, PlanCache, Scenario, ServingRequest,
    ServingScenario, SlaClass,
};
use hidp_dnn::zoo::WorkloadModel;
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One DNN inference request: a model, a batch size, an arrival time and the
/// SLA class it is served under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// The DNN model requested.
    pub model: WorkloadModel,
    /// Number of images in the request.
    pub batch: usize,
    /// Arrival time in seconds since the start of the scenario.
    pub arrival: f64,
    /// The SLA class (scheduling priority + latency deadline); only the
    /// serving pipeline consumes it — the static [`Scenario`] path ignores
    /// it.
    pub sla: SlaClass,
}

impl InferenceRequest {
    /// Creates a single-image [`SlaClass::Standard`] request arriving at
    /// `arrival` seconds.
    pub fn new(model: WorkloadModel, arrival: f64) -> Self {
        Self {
            model,
            batch: 1,
            arrival,
            sla: SlaClass::Standard,
        }
    }

    /// Sets the batch size (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the SLA class (builder style).
    pub fn with_sla(mut self, sla: SlaClass) -> Self {
        self.sla = sla;
        self
    }

    /// Builds the analytical graph for this request.
    pub fn graph(&self) -> DnnGraph {
        self.model.graph(self.batch)
    }

    /// Converts a slice of requests into the `(arrival, graph)` pairs the
    /// evaluation pipeline consumes. Each distinct `(model, batch)` graph is
    /// built (zoo construction + cost inference) exactly once — deduplicated
    /// through a hash map, so long streams pay O(n) lookups rather than the
    /// former O(n·k) scan — and **shared** for its repeats: every repeat is
    /// an `Arc` clone of the same graph, not a copy of its layer vectors.
    pub fn to_stream(requests: &[InferenceRequest]) -> Vec<(f64, Arc<DnnGraph>)> {
        let mut built: HashMap<(WorkloadModel, usize), Arc<DnnGraph>> = HashMap::new();
        requests
            .iter()
            .map(|r| {
                let graph = built
                    .entry((r.model, r.batch))
                    .or_insert_with(|| Arc::new(r.graph()));
                (r.arrival, Arc::clone(graph))
            })
            .collect()
    }

    /// Wraps a slice of requests into a runnable [`Scenario`].
    pub fn to_scenario(requests: &[InferenceRequest]) -> Scenario {
        Scenario::stream(Self::to_stream(requests))
    }

    /// Converts requests into the serving runtime's request type (model,
    /// batch, arrival and SLA class carry over one to one).
    pub fn to_serving(requests: &[InferenceRequest]) -> Vec<ServingRequest> {
        requests
            .iter()
            .map(|r| {
                ServingRequest::new(r.model, r.arrival)
                    .with_batch(r.batch)
                    .with_sla(r.sla)
            })
            .collect()
    }

    /// Wraps a slice of requests into a [`ServingScenario`] with the
    /// degenerate default config (FIFO, no batching, unbounded in-flight,
    /// static cluster) — configure admission/batching/failures with its
    /// builder methods.
    pub fn to_serving_scenario(requests: &[InferenceRequest]) -> ServingScenario {
        ServingScenario::new(Self::to_serving(requests))
    }

    /// Plans and simulates a request stream against a shared [`PlanCache`],
    /// so repeated models — the common case for generated streams, which
    /// cycle or draw from a small model set — are planned once across all
    /// evaluations using the same cache.
    ///
    /// # Errors
    ///
    /// Returns an error when `requests` is empty or planning/simulation
    /// fails.
    pub fn evaluate_stream(
        requests: &[InferenceRequest],
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
    ) -> Result<Evaluation, CoreError> {
        Self::to_scenario(requests).run_with_cache(strategy, cluster, leader, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builds_its_graph() {
        let r = InferenceRequest::new(WorkloadModel::Vgg19, 1.5).with_batch(2);
        assert_eq!(r.arrival, 1.5);
        assert_eq!(r.batch, 2);
        assert_eq!(r.graph().input_shape().batch(), 2);
        // Batch is clamped to at least one image.
        assert_eq!(
            InferenceRequest::new(WorkloadModel::Vgg19, 0.0)
                .with_batch(0)
                .batch,
            1
        );
    }

    #[test]
    fn to_stream_preserves_order_and_arrivals() {
        let requests = vec![
            InferenceRequest::new(WorkloadModel::EfficientNetB0, 0.0),
            InferenceRequest::new(WorkloadModel::ResNet152, 1.0),
        ];
        let stream = InferenceRequest::to_stream(&requests);
        assert_eq!(stream.len(), 2);
        assert_eq!(stream[0].0, 0.0);
        assert_eq!(stream[1].0, 1.0);
        assert_eq!(stream[1].1.name(), "resnet152");
    }

    #[test]
    fn to_stream_shares_one_graph_per_distinct_model_and_batch() {
        // A cyclic stream must build each (model, batch) graph once and
        // share the same allocation across all its repeats.
        let requests: Vec<InferenceRequest> = (0..9)
            .map(|i| {
                let model = [WorkloadModel::EfficientNetB0, WorkloadModel::InceptionV3][i % 2];
                InferenceRequest::new(model, i as f64 * 0.1).with_batch(1 + i % 2)
            })
            .collect();
        let stream = InferenceRequest::to_stream(&requests);
        assert_eq!(stream.len(), 9);
        for (i, (arrival, graph)) in stream.iter().enumerate() {
            assert_eq!(*arrival, requests[i].arrival);
            assert_eq!(graph.input_shape().batch(), requests[i].batch);
            // Repeats of the same (model, batch) are pointer-equal shares.
            for (j, (_, other)) in stream.iter().enumerate().skip(i + 1) {
                if (requests[i].model, requests[i].batch) == (requests[j].model, requests[j].batch)
                {
                    assert!(Arc::ptr_eq(graph, other), "requests {i} and {j} share");
                }
            }
        }
    }
}
