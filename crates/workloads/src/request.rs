//! Inference requests: the unit of work HiDP schedules.

use hidp_core::Scenario;
use hidp_dnn::zoo::WorkloadModel;
use hidp_dnn::DnnGraph;
use serde::{Deserialize, Serialize};

/// One DNN inference request: a model, a batch size and an arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// The DNN model requested.
    pub model: WorkloadModel,
    /// Number of images in the request.
    pub batch: usize,
    /// Arrival time in seconds since the start of the scenario.
    pub arrival: f64,
}

impl InferenceRequest {
    /// Creates a single-image request arriving at `arrival` seconds.
    pub fn new(model: WorkloadModel, arrival: f64) -> Self {
        Self {
            model,
            batch: 1,
            arrival,
        }
    }

    /// Sets the batch size (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Builds the analytical graph for this request.
    pub fn graph(&self) -> DnnGraph {
        self.model.graph(self.batch)
    }

    /// Converts a slice of requests into the `(arrival, graph)` pairs the
    /// evaluation pipeline consumes.
    pub fn to_stream(requests: &[InferenceRequest]) -> Vec<(f64, DnnGraph)> {
        requests.iter().map(|r| (r.arrival, r.graph())).collect()
    }

    /// Wraps a slice of requests into a runnable [`Scenario`].
    pub fn to_scenario(requests: &[InferenceRequest]) -> Scenario {
        Scenario::stream(Self::to_stream(requests))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builds_its_graph() {
        let r = InferenceRequest::new(WorkloadModel::Vgg19, 1.5).with_batch(2);
        assert_eq!(r.arrival, 1.5);
        assert_eq!(r.batch, 2);
        assert_eq!(r.graph().input_shape().batch(), 2);
        // Batch is clamped to at least one image.
        assert_eq!(
            InferenceRequest::new(WorkloadModel::Vgg19, 0.0)
                .with_batch(0)
                .batch,
            1
        );
    }

    #[test]
    fn to_stream_preserves_order_and_arrivals() {
        let requests = vec![
            InferenceRequest::new(WorkloadModel::EfficientNetB0, 0.0),
            InferenceRequest::new(WorkloadModel::ResNet152, 1.0),
        ];
        let stream = InferenceRequest::to_stream(&requests);
        assert_eq!(stream.len(), 2);
        assert_eq!(stream[0].0, 0.0);
        assert_eq!(stream[1].0, 1.0);
        assert_eq!(stream[1].1.name(), "resnet152");
    }
}
