//! Inference requests: the unit of work HiDP schedules.

use hidp_core::{CoreError, DistributedStrategy, Evaluation, PlanCache, Scenario};
use hidp_dnn::zoo::WorkloadModel;
use hidp_dnn::DnnGraph;
use hidp_platform::{Cluster, NodeIndex};
use serde::{Deserialize, Serialize};

/// One DNN inference request: a model, a batch size and an arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceRequest {
    /// The DNN model requested.
    pub model: WorkloadModel,
    /// Number of images in the request.
    pub batch: usize,
    /// Arrival time in seconds since the start of the scenario.
    pub arrival: f64,
}

impl InferenceRequest {
    /// Creates a single-image request arriving at `arrival` seconds.
    pub fn new(model: WorkloadModel, arrival: f64) -> Self {
        Self {
            model,
            batch: 1,
            arrival,
        }
    }

    /// Sets the batch size (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Builds the analytical graph for this request.
    pub fn graph(&self) -> DnnGraph {
        self.model.graph(self.batch)
    }

    /// Converts a slice of requests into the `(arrival, graph)` pairs the
    /// evaluation pipeline consumes. Generated streams cycle through a small
    /// model set, so each distinct `(model, batch)` graph is built (zoo
    /// construction + cost inference) once and cloned for its repeats.
    pub fn to_stream(requests: &[InferenceRequest]) -> Vec<(f64, DnnGraph)> {
        let mut built: Vec<((WorkloadModel, usize), DnnGraph)> = Vec::new();
        requests
            .iter()
            .map(|r| {
                let key = (r.model, r.batch);
                let graph = match built.iter().find(|(k, _)| *k == key) {
                    Some((_, graph)) => graph.clone(),
                    None => {
                        let graph = r.graph();
                        built.push((key, graph.clone()));
                        graph
                    }
                };
                (r.arrival, graph)
            })
            .collect()
    }

    /// Wraps a slice of requests into a runnable [`Scenario`].
    pub fn to_scenario(requests: &[InferenceRequest]) -> Scenario {
        Scenario::stream(Self::to_stream(requests))
    }

    /// Plans and simulates a request stream against a shared [`PlanCache`],
    /// so repeated models — the common case for generated streams, which
    /// cycle or draw from a small model set — are planned once across all
    /// evaluations using the same cache.
    ///
    /// # Errors
    ///
    /// Returns an error when `requests` is empty or planning/simulation
    /// fails.
    pub fn evaluate_stream(
        requests: &[InferenceRequest],
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
    ) -> Result<Evaluation, CoreError> {
        Self::to_scenario(requests).run_with_cache(strategy, cluster, leader, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builds_its_graph() {
        let r = InferenceRequest::new(WorkloadModel::Vgg19, 1.5).with_batch(2);
        assert_eq!(r.arrival, 1.5);
        assert_eq!(r.batch, 2);
        assert_eq!(r.graph().input_shape().batch(), 2);
        // Batch is clamped to at least one image.
        assert_eq!(
            InferenceRequest::new(WorkloadModel::Vgg19, 0.0)
                .with_batch(0)
                .batch,
            1
        );
    }

    #[test]
    fn to_stream_preserves_order_and_arrivals() {
        let requests = vec![
            InferenceRequest::new(WorkloadModel::EfficientNetB0, 0.0),
            InferenceRequest::new(WorkloadModel::ResNet152, 1.0),
        ];
        let stream = InferenceRequest::to_stream(&requests);
        assert_eq!(stream.len(), 2);
        assert_eq!(stream[0].0, 0.0);
        assert_eq!(stream[1].0, 1.0);
        assert_eq!(stream[1].1.name(), "resnet152");
    }
}
