//! The eight workload mixes of the paper's Fig. 7.
//!
//! Mixes 1–4 combine two of the four target DNNs, mixes 5–8 combine three
//! (§IV-B: "We created Mix 1-4 and Mix 5-8 with two and three different DNN
//! models from the target workloads, respectively"). Throughput is reported
//! as completed inferences per 100 s while the mix repeats back-to-back.

use crate::request::InferenceRequest;
use crate::stream::repeating_stream;
use hidp_core::Scenario;
use hidp_dnn::zoo::WorkloadModel;
use serde::{Deserialize, Serialize};

/// One workload mix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Mix number (1-based, as in the paper).
    pub id: usize,
    /// The models in the mix.
    pub models: Vec<WorkloadModel>,
}

impl WorkloadMix {
    /// Short display name, e.g. `"Mix-3"`.
    pub fn name(&self) -> String {
        format!("Mix-{}", self.id)
    }

    /// Generates `count` requests cycling through the mix with the given
    /// inter-arrival time.
    pub fn requests(&self, interval_seconds: f64, count: usize) -> Vec<InferenceRequest> {
        repeating_stream(&self.models, interval_seconds, count)
    }

    /// Builds the runnable [`Scenario`] for this mix, labelled with the mix
    /// name.
    pub fn scenario(&self, interval_seconds: f64, count: usize) -> Scenario {
        InferenceRequest::to_scenario(&self.requests(interval_seconds, count))
            .with_label(self.name())
    }
}

/// The eight mixes evaluated in Fig. 7.
pub fn all_mixes() -> Vec<WorkloadMix> {
    use WorkloadModel::*;
    let pairs: [Vec<WorkloadModel>; 4] = [
        vec![EfficientNetB0, InceptionV3],
        vec![EfficientNetB0, Vgg19],
        vec![InceptionV3, ResNet152],
        vec![ResNet152, Vgg19],
    ];
    let triples: [Vec<WorkloadModel>; 4] = [
        vec![EfficientNetB0, InceptionV3, ResNet152],
        vec![EfficientNetB0, InceptionV3, Vgg19],
        vec![EfficientNetB0, ResNet152, Vgg19],
        vec![InceptionV3, ResNet152, Vgg19],
    ];
    pairs
        .into_iter()
        .chain(triples)
        .enumerate()
        .map(|(i, models)| WorkloadMix { id: i + 1, models })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eight_mixes_with_the_right_sizes() {
        let mixes = all_mixes();
        assert_eq!(mixes.len(), 8);
        for mix in &mixes[..4] {
            assert_eq!(mix.models.len(), 2, "{}", mix.name());
        }
        for mix in &mixes[4..] {
            assert_eq!(mix.models.len(), 3, "{}", mix.name());
        }
        assert_eq!(mixes[0].name(), "Mix-1");
        assert_eq!(mixes[7].name(), "Mix-8");
    }

    #[test]
    fn every_model_appears_in_some_mix() {
        let mixes = all_mixes();
        for model in WorkloadModel::ALL {
            assert!(
                mixes.iter().any(|m| m.models.contains(&model)),
                "{model} missing from all mixes"
            );
        }
    }

    #[test]
    fn mix_ids_are_unique_and_sequential() {
        let mixes = all_mixes();
        for (i, mix) in mixes.iter().enumerate() {
            assert_eq!(mix.id, i + 1);
        }
    }

    #[test]
    fn requests_cycle_through_the_mix() {
        let mix = &all_mixes()[2];
        let requests = mix.requests(0.5, 6);
        assert_eq!(requests.len(), 6);
        assert_eq!(requests[0].model, mix.models[0]);
        assert_eq!(requests[1].model, mix.models[1]);
        assert_eq!(requests[2].model, mix.models[0]);
    }
}
