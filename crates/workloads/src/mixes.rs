//! The eight workload mixes of the paper's Fig. 7.
//!
//! Mixes 1–4 combine two of the four target DNNs, mixes 5–8 combine three
//! (§IV-B: "We created Mix 1-4 and Mix 5-8 with two and three different DNN
//! models from the target workloads, respectively"). Throughput is reported
//! as completed inferences per 100 s while the mix repeats back-to-back.

use crate::request::InferenceRequest;
use crate::stream::repeating_stream;
use hidp_core::{CoreError, DistributedStrategy, Evaluation, PlanCache, Scenario};
use hidp_dnn::zoo::WorkloadModel;
use hidp_platform::{Cluster, NodeIndex};
use serde::{Deserialize, Serialize};

/// One workload mix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Mix number (1-based, as in the paper).
    pub id: usize,
    /// The models in the mix.
    pub models: Vec<WorkloadModel>,
}

impl WorkloadMix {
    /// Short display name, e.g. `"Mix-3"`.
    pub fn name(&self) -> String {
        format!("Mix-{}", self.id)
    }

    /// Generates `count` requests cycling through the mix with the given
    /// inter-arrival time.
    pub fn requests(&self, interval_seconds: f64, count: usize) -> Vec<InferenceRequest> {
        repeating_stream(&self.models, interval_seconds, count)
    }

    /// Builds the runnable [`Scenario`] for this mix, labelled with the mix
    /// name.
    pub fn scenario(&self, interval_seconds: f64, count: usize) -> Scenario {
        InferenceRequest::to_scenario(&self.requests(interval_seconds, count))
            .with_label(self.name())
    }

    /// Plans and simulates the mix against a shared [`PlanCache`]: the mix
    /// cycles through 2–3 distinct models, so only the first occurrence of
    /// each is planned — per run for a fresh cache, ever for a reused one.
    ///
    /// # Errors
    ///
    /// Returns an error when `count` is zero or planning/simulation fails.
    pub fn evaluate(
        &self,
        interval_seconds: f64,
        count: usize,
        strategy: &dyn DistributedStrategy,
        cluster: &Cluster,
        leader: NodeIndex,
        cache: &PlanCache,
    ) -> Result<Evaluation, CoreError> {
        self.scenario(interval_seconds, count)
            .run_with_cache(strategy, cluster, leader, cache)
    }
}

/// The eight mixes evaluated in Fig. 7.
pub fn all_mixes() -> Vec<WorkloadMix> {
    use WorkloadModel::*;
    let pairs: [Vec<WorkloadModel>; 4] = [
        vec![EfficientNetB0, InceptionV3],
        vec![EfficientNetB0, Vgg19],
        vec![InceptionV3, ResNet152],
        vec![ResNet152, Vgg19],
    ];
    let triples: [Vec<WorkloadModel>; 4] = [
        vec![EfficientNetB0, InceptionV3, ResNet152],
        vec![EfficientNetB0, InceptionV3, Vgg19],
        vec![EfficientNetB0, ResNet152, Vgg19],
        vec![InceptionV3, ResNet152, Vgg19],
    ];
    pairs
        .into_iter()
        .chain(triples)
        .enumerate()
        .map(|(i, models)| WorkloadMix { id: i + 1, models })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eight_mixes_with_the_right_sizes() {
        let mixes = all_mixes();
        assert_eq!(mixes.len(), 8);
        for mix in &mixes[..4] {
            assert_eq!(mix.models.len(), 2, "{}", mix.name());
        }
        for mix in &mixes[4..] {
            assert_eq!(mix.models.len(), 3, "{}", mix.name());
        }
        assert_eq!(mixes[0].name(), "Mix-1");
        assert_eq!(mixes[7].name(), "Mix-8");
    }

    #[test]
    fn every_model_appears_in_some_mix() {
        let mixes = all_mixes();
        for model in WorkloadModel::ALL {
            assert!(
                mixes.iter().any(|m| m.models.contains(&model)),
                "{model} missing from all mixes"
            );
        }
    }

    #[test]
    fn mix_ids_are_unique_and_sequential() {
        let mixes = all_mixes();
        for (i, mix) in mixes.iter().enumerate() {
            assert_eq!(mix.id, i + 1);
        }
    }

    #[test]
    fn evaluate_plans_each_mix_model_once() {
        use hidp_platform::presets;
        let cluster = presets::paper_cluster();
        let strategy = hidp_core::HidpStrategy::new();
        let cache = PlanCache::new();
        let mix = &all_mixes()[4]; // three models
        let eval = mix
            .evaluate(0.2, 9, &strategy, &cluster, NodeIndex(1), &cache)
            .unwrap();
        let stats = eval.plan_cache.unwrap();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 6);
        // A second evaluation through the same cache re-plans nothing.
        let warm = mix
            .evaluate(0.2, 9, &strategy, &cluster, NodeIndex(1), &cache)
            .unwrap();
        assert_eq!(warm.plan_cache.unwrap().misses, 0);
        assert_eq!(warm.latencies, eval.latencies);
    }

    #[test]
    fn requests_cycle_through_the_mix() {
        let mix = &all_mixes()[2];
        let requests = mix.requests(0.5, 6);
        assert_eq!(requests.len(), 6);
        assert_eq!(requests[0].model, mix.models[0]);
        assert_eq!(requests[1].model, mix.models[1]);
        assert_eq!(requests[2].model, mix.models[0]);
    }
}
