//! The deterministic chaos harness: seeded [`FaultPlan`] generation.
//!
//! A `FaultPlan` is everything a robustness scenario injects against one
//! cluster: availability flips (node flaps and correlated rack outages,
//! lowered to a [`ClusterTimeline`]), straggler [`SlowdownWindow`]s, and
//! fleet-wide [`WanDegradation`] windows. Generation is a pure function of
//! a [`FaultPlanConfig`] and the cluster shape — the same seed always
//! replays the same faults, bit for bit, which is what lets the `exp_chaos`
//! gates treat robustness claims exactly like perf claims.
//!
//! The planning leader is never downed: killing the node that hosts the
//! partitioner models a control-plane failure, a different (and currently
//! out-of-scope) failure domain than the data-plane churn HiDP targets.

use hidp_platform::{
    BandwidthContention, ClusterTimeline, DriftModel, NodeIndex, PlatformError, SlowdownWindow,
    ThrottleWindow, WanDegradation,
};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of one seeded fault plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlanConfig {
    /// RNG seed; equal seeds replay identical plans.
    pub seed: u64,
    /// Horizon in seconds: every injected fault starts inside `[0, horizon)`.
    pub horizon: f64,
    /// Independent single-node flaps (down, then back up).
    pub node_flaps: usize,
    /// Mean downtime of a flap, seconds (actual downtimes draw uniformly
    /// from 0.5×..1.5× the mean).
    pub flap_mean_down_s: f64,
    /// Correlated rack outages: contiguous runs of nodes downed together.
    pub rack_outages: usize,
    /// Nodes per rack outage.
    pub rack_width: usize,
    /// Straggler windows (one slowed node each).
    pub stragglers: usize,
    /// Compute-duration multiplier inside a straggler window.
    pub straggler_factor: f64,
    /// Fleet-wide WAN degradation windows.
    pub wan_degradations: usize,
    /// WAN round-trip multiplier inside a degradation window.
    pub wan_factor: f64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0xC4405,
            horizon: 10.0,
            node_flaps: 2,
            flap_mean_down_s: 1.0,
            rack_outages: 0,
            rack_width: 2,
            stragglers: 1,
            straggler_factor: 3.0,
            wan_degradations: 1,
            wan_factor: 4.0,
        }
    }
}

impl FaultPlanConfig {
    fn validate(&self) -> Result<(), PlatformError> {
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(PlatformError::InvalidParameter {
                what: format!("fault plan horizon must be positive (got {})", self.horizon),
            });
        }
        for (name, v) in [
            ("flap mean downtime", self.flap_mean_down_s),
            ("straggler factor", self.straggler_factor),
            ("WAN factor", self.wan_factor),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(PlatformError::InvalidParameter {
                    what: format!("fault plan {name} must be positive (got {v})"),
                });
            }
        }
        if self.rack_outages > 0 && self.rack_width == 0 {
            return Err(PlatformError::InvalidParameter {
                what: "rack outages need a positive rack width".into(),
            });
        }
        Ok(())
    }
}

/// A generated fault plan for one cluster: availability flips plus
/// degradation windows, all inside the config's horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Node flaps and rack outages, lowered to an availability timeline
    /// (every down-flip has a matching up-flip).
    pub timeline: ClusterTimeline,
    /// Straggler windows for the dispatch estimator.
    pub slowdowns: Vec<SlowdownWindow>,
    /// WAN degradation windows (fleet-wide; empty unless requested).
    pub wan: Vec<WanDegradation>,
}

impl FaultPlan {
    /// Generates the plan for a cluster of `node_count` nodes, never
    /// downing or slowing `protected` (the planning leader).
    ///
    /// Deterministic: equal `(config, node_count, protected)` triples yield
    /// bit-identical plans.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when the config is
    /// invalid or the cluster has no node besides `protected` to fault.
    pub fn generate(
        config: &FaultPlanConfig,
        node_count: usize,
        protected: NodeIndex,
    ) -> Result<Self, PlatformError> {
        config.validate()?;
        let faultable: Vec<usize> = (0..node_count).filter(|&n| n != protected.0).collect();
        let needs_nodes = config.node_flaps > 0 || config.rack_outages > 0 || config.stragglers > 0;
        if needs_nodes && faultable.is_empty() {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "cluster of {node_count} nodes has nothing to fault besides \
                     the protected leader"
                ),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut timeline = ClusterTimeline::new();

        for _ in 0..config.node_flaps {
            let node = NodeIndex(faultable[rng.gen_range(0..faultable.len())]);
            let down = rng.gen_range(0.0..config.horizon * 0.8);
            let dur = config.flap_mean_down_s * rng.gen_range(0.5..1.5);
            timeline.push_event(down, node, false)?;
            timeline.push_event(down + dur, node, true)?;
        }

        for _ in 0..config.rack_outages {
            // A rack is a contiguous run of node indices; every member
            // flips down at the same instant (the correlated failure mode a
            // shared power feed or switch produces) and back up together.
            let width = config.rack_width.min(node_count);
            let base = rng.gen_range(0..node_count.saturating_sub(width - 1).max(1));
            let down = rng.gen_range(0.0..config.horizon * 0.8);
            let dur = config.flap_mean_down_s * rng.gen_range(0.5..1.5);
            for n in base..(base + width).min(node_count) {
                if n == protected.0 {
                    continue;
                }
                timeline.push_event(down, NodeIndex(n), false)?;
                timeline.push_event(down + dur, NodeIndex(n), true)?;
            }
        }

        let mut slowdowns = Vec::with_capacity(config.stragglers);
        for _ in 0..config.stragglers {
            let node = NodeIndex(faultable[rng.gen_range(0..faultable.len())]);
            let start = rng.gen_range(0.0..config.horizon * 0.8);
            let end = start + config.horizon * rng.gen_range(0.1..0.2);
            slowdowns.push(SlowdownWindow {
                node,
                start,
                end,
                factor: config.straggler_factor,
            });
        }

        let mut wan = Vec::with_capacity(config.wan_degradations);
        for _ in 0..config.wan_degradations {
            let start = rng.gen_range(0.0..config.horizon * 0.8);
            let end = start + config.horizon * rng.gen_range(0.1..0.2);
            wan.push(WanDegradation {
                start,
                end,
                factor: config.wan_factor,
            });
        }

        Ok(Self {
            timeline,
            slowdowns,
            wan,
        })
    }
}

/// The standard fault suite the chaos gates run against: one seeded
/// [`FaultPlan`] per cluster of a fleet, with per-cluster decorrelated
/// seeds, flaps everywhere, a correlated rack outage on the first cluster
/// and a straggler window on the second (when present). WAN degradation is
/// taken fleet-wide from the first cluster's plan.
///
/// `node_counts` is the per-cluster node count (`cluster.len()` for each
/// fleet member); `horizon` should roughly cover the workload's span so the
/// faults actually land on live traffic.
///
/// # Errors
///
/// Propagates [`FaultPlan::generate`] errors (degenerate clusters).
pub fn standard_fault_suite(
    node_counts: &[usize],
    seed: u64,
    horizon: f64,
    protected: NodeIndex,
) -> Result<Vec<FaultPlan>, PlatformError> {
    node_counts
        .iter()
        .enumerate()
        .map(|(i, &nodes)| {
            let config = FaultPlanConfig {
                seed: seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                horizon,
                node_flaps: 2,
                flap_mean_down_s: horizon * 0.08,
                rack_outages: usize::from(i == 0),
                rack_width: 2,
                stragglers: usize::from(i == 1),
                straggler_factor: 2.5,
                wan_degradations: usize::from(i == 0),
                wan_factor: 3.0,
            };
            FaultPlan::generate(&config, nodes, protected)
        })
        .collect()
}

/// Configuration of one seeded drift plan — the continuous counterpart of
/// [`FaultPlanConfig`]: thermal throttle ramps, background-load windows and
/// network-contention windows instead of binary flips. Kept separate so
/// every existing fault plan replays bit-identically; chaos recipes mix the
/// two by generating both against the same horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPlanConfig {
    /// RNG seed; equal seeds replay identical plans.
    pub seed: u64,
    /// Horizon in seconds: every window starts inside `[0, horizon)`.
    pub horizon: f64,
    /// Thermal throttle ramps (one drifting node each, factor ramping from
    /// 1 towards `throttle_peak`).
    pub throttles: usize,
    /// Peak duration multiplier a ramp approaches (≥ 1).
    pub throttle_peak: f64,
    /// Background-load windows (flat compute slowdowns from co-located
    /// work).
    pub background_windows: usize,
    /// Compute-duration multiplier inside a background window (≥ 1).
    pub background_factor: f64,
    /// Network-contention windows (shared-medium bandwidth collapse).
    pub contention_windows: usize,
    /// Transfer-duration multiplier inside a contention window (≥ 1).
    pub contention_factor: f64,
}

impl Default for DriftPlanConfig {
    fn default() -> Self {
        Self {
            seed: 0xD21F7,
            horizon: 10.0,
            throttles: 1,
            throttle_peak: 3.0,
            background_windows: 1,
            background_factor: 1.5,
            contention_windows: 1,
            contention_factor: 2.0,
        }
    }
}

impl DriftPlanConfig {
    fn validate(&self) -> Result<(), PlatformError> {
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(PlatformError::InvalidParameter {
                what: format!("drift plan horizon must be positive (got {})", self.horizon),
            });
        }
        for (name, v) in [
            ("throttle peak", self.throttle_peak),
            ("background factor", self.background_factor),
            ("contention factor", self.contention_factor),
        ] {
            if !(v.is_finite() && v >= 1.0) {
                return Err(PlatformError::InvalidParameter {
                    what: format!("drift plan {name} must be ≥ 1 (got {v})"),
                });
            }
        }
        Ok(())
    }

    /// Generates the drift model for a cluster of `node_count` nodes, never
    /// drifting `protected` (the planning leader — throttling the
    /// partitioner's host is a control-plane failure, out of scope exactly
    /// as for [`FaultPlan::generate`]).
    ///
    /// Deterministic: equal `(config, node_count, protected)` triples yield
    /// bit-identical models. Throttle ramps are long (40–70% of the
    /// horizon) so a static plan keeps paying them; background and
    /// contention windows are short bursts (10–20%).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidParameter`] when the config is
    /// invalid or the cluster has no node besides `protected` to drift.
    pub fn generate(
        &self,
        node_count: usize,
        protected: NodeIndex,
    ) -> Result<DriftModel, PlatformError> {
        self.validate()?;
        let driftable: Vec<usize> = (0..node_count).filter(|&n| n != protected.0).collect();
        let needs_nodes = self.throttles > 0 || self.background_windows > 0;
        if needs_nodes && driftable.is_empty() {
            return Err(PlatformError::InvalidParameter {
                what: format!(
                    "cluster of {node_count} nodes has nothing to drift besides \
                     the protected leader"
                ),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut model = DriftModel::default();

        for _ in 0..self.throttles {
            let node = NodeIndex(driftable[rng.gen_range(0..driftable.len())]);
            let start = rng.gen_range(0.0..self.horizon * 0.3);
            let end = start + self.horizon * rng.gen_range(0.4..0.7);
            let to_factor = 1.0 + (self.throttle_peak - 1.0) * rng.gen_range(0.6..1.0);
            model.throttles.push(ThrottleWindow {
                node,
                start,
                end,
                from_factor: 1.0,
                to_factor,
            });
        }

        for _ in 0..self.background_windows {
            let node = NodeIndex(driftable[rng.gen_range(0..driftable.len())]);
            let start = rng.gen_range(0.0..self.horizon * 0.8);
            let end = start + self.horizon * rng.gen_range(0.1..0.2);
            model.background.push(SlowdownWindow {
                node,
                start,
                end,
                factor: self.background_factor,
            });
        }

        for _ in 0..self.contention_windows {
            let start = rng.gen_range(0.0..self.horizon * 0.8);
            let end = start + self.horizon * rng.gen_range(0.1..0.2);
            model.bandwidth.push(BandwidthContention {
                start,
                end,
                factor: self.contention_factor,
            });
        }

        Ok(model)
    }
}

/// The standard drift suite the adaptive gates run against: one seeded
/// [`DriftModel`] per cluster, with per-cluster decorrelated seeds — a
/// throttle ramp everywhere, a background-load burst on the first cluster
/// and network contention on the second (when present).
///
/// # Errors
///
/// Propagates [`DriftPlanConfig::generate`] errors (degenerate clusters).
pub fn standard_drift_suite(
    node_counts: &[usize],
    seed: u64,
    horizon: f64,
    protected: NodeIndex,
) -> Result<Vec<DriftModel>, PlatformError> {
    node_counts
        .iter()
        .enumerate()
        .map(|(i, &nodes)| {
            let config = DriftPlanConfig {
                seed: seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                horizon,
                throttles: 1,
                throttle_peak: 3.0,
                background_windows: usize::from(i == 0),
                background_factor: 1.5,
                contention_windows: usize::from(i == 1),
                contention_factor: 2.5,
            };
            config.generate(nodes, protected)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_bit_identically() {
        let config = FaultPlanConfig::default();
        let a = FaultPlan::generate(&config, 5, NodeIndex(1)).unwrap();
        let b = FaultPlan::generate(&config, 5, NodeIndex(1)).unwrap();
        assert_eq!(a, b);
        let c = FaultPlan::generate(
            &FaultPlanConfig {
                seed: config.seed + 1,
                ..config
            },
            5,
            NodeIndex(1),
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn protected_leader_is_never_downed_or_slowed() {
        let config = FaultPlanConfig {
            node_flaps: 16,
            rack_outages: 4,
            stragglers: 8,
            ..FaultPlanConfig::default()
        };
        for protected in 0..5 {
            let plan = FaultPlan::generate(&config, 5, NodeIndex(protected)).unwrap();
            assert!(plan
                .timeline
                .events()
                .iter()
                .all(|e| e.node != NodeIndex(protected)));
            assert!(plan
                .slowdowns
                .iter()
                .all(|w| w.node != NodeIndex(protected)));
        }
    }

    #[test]
    fn every_down_flip_has_a_matching_up_flip() {
        let config = FaultPlanConfig {
            node_flaps: 8,
            rack_outages: 2,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::generate(&config, 6, NodeIndex(1)).unwrap();
        let downs = plan.timeline.events().iter().filter(|e| !e.up).count();
        let ups = plan.timeline.events().iter().filter(|e| e.up).count();
        assert_eq!(downs, ups);
        assert!(downs >= 8);
        for w in plan.timeline.events().windows(2) {
            assert!(w[0].time <= w[1].time, "timeline stays sorted");
        }
    }

    #[test]
    fn windows_are_valid_and_inside_the_horizon() {
        let plan = FaultPlan::generate(&FaultPlanConfig::default(), 5, NodeIndex(1)).unwrap();
        for w in &plan.slowdowns {
            w.validate().unwrap();
            assert!(w.end <= 10.0);
        }
        for w in &plan.wan {
            w.validate().unwrap();
            assert!(w.end <= 10.0);
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let config = FaultPlanConfig::default();
        assert!(FaultPlan::generate(&config, 1, NodeIndex(0)).is_err());
        assert!(FaultPlan::generate(
            &FaultPlanConfig {
                horizon: 0.0,
                ..config
            },
            5,
            NodeIndex(1)
        )
        .is_err());
        assert!(FaultPlan::generate(
            &FaultPlanConfig {
                straggler_factor: -1.0,
                ..config
            },
            5,
            NodeIndex(1)
        )
        .is_err());
    }

    #[test]
    fn drift_plans_replay_and_protect_the_leader() {
        let config = DriftPlanConfig {
            throttles: 6,
            background_windows: 4,
            contention_windows: 2,
            ..DriftPlanConfig::default()
        };
        let a = config.generate(5, NodeIndex(1)).unwrap();
        assert_eq!(a, config.generate(5, NodeIndex(1)).unwrap());
        assert_ne!(
            a,
            DriftPlanConfig {
                seed: config.seed + 1,
                ..config
            }
            .generate(5, NodeIndex(1))
            .unwrap()
        );
        for protected in 0..5 {
            let plan = config.generate(5, NodeIndex(protected)).unwrap();
            assert!(plan
                .throttles
                .iter()
                .all(|w| w.node != NodeIndex(protected)));
            assert!(plan
                .background
                .iter()
                .all(|w| w.node != NodeIndex(protected)));
            plan.validate(5).unwrap();
            assert!(plan.horizon() <= config.horizon * 1.0 + config.horizon * 0.7);
        }
        // Degenerate configs are rejected.
        assert!(config.generate(1, NodeIndex(0)).is_err());
        assert!(DriftPlanConfig {
            throttle_peak: 0.5,
            ..config
        }
        .generate(5, NodeIndex(1))
        .is_err());
    }

    #[test]
    fn standard_drift_suite_covers_all_three_sources() {
        let plans = standard_drift_suite(&[5, 5, 5], 7, 10.0, NodeIndex(1)).unwrap();
        assert_eq!(plans.len(), 3);
        assert!(plans.iter().all(|p| !p.throttles.is_empty()));
        assert!(!plans[0].background.is_empty());
        assert!(plans[1].background.is_empty());
        assert!(!plans[1].bandwidth.is_empty());
        assert!(plans[2].bandwidth.is_empty());
        assert_eq!(
            plans,
            standard_drift_suite(&[5, 5, 5], 7, 10.0, NodeIndex(1)).unwrap()
        );
    }

    #[test]
    fn standard_suite_covers_all_four_fault_kinds() {
        let plans = standard_fault_suite(&[5, 5, 5, 5], 7, 10.0, NodeIndex(1)).unwrap();
        assert_eq!(plans.len(), 4);
        // Flaps everywhere, rack outage on cluster 0 (more downs than the 2
        // plain flaps), straggler on cluster 1, WAN window on cluster 0.
        assert!(plans
            .iter()
            .all(|p| p.timeline.events().iter().any(|e| !e.up)));
        assert!(plans[0].timeline.events().len() > plans[2].timeline.events().len());
        assert!(!plans[1].slowdowns.is_empty());
        assert!(plans[2].slowdowns.is_empty());
        assert!(!plans[0].wan.is_empty());
        // And it replays.
        assert_eq!(
            plans,
            standard_fault_suite(&[5, 5, 5, 5], 7, 10.0, NodeIndex(1)).unwrap()
        );
    }
}
