//! Request-stream generators.

use crate::request::InferenceRequest;
use hidp_dnn::zoo::WorkloadModel;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The dynamic workload of the paper's Fig. 6: EfficientNet-B0,
/// Inception-V3, ResNet-152 and VGG-19 arriving 0.5 s apart, so that by
/// t = 1.5 s all four DNNs run concurrently on the cluster.
pub fn dynamic_scenario() -> Vec<InferenceRequest> {
    [
        WorkloadModel::EfficientNetB0,
        WorkloadModel::InceptionV3,
        WorkloadModel::ResNet152,
        WorkloadModel::Vgg19,
    ]
    .iter()
    .enumerate()
    .map(|(i, &model)| InferenceRequest::new(model, i as f64 * 0.5))
    .collect()
}

/// A stream that cycles through `models` with a fixed inter-arrival time,
/// producing `count` requests. Used to measure steady-state throughput
/// (Fig. 7 reports inferences per 100 s).
pub fn repeating_stream(
    models: &[WorkloadModel],
    interval_seconds: f64,
    count: usize,
) -> Vec<InferenceRequest> {
    assert!(
        interval_seconds >= 0.0 && interval_seconds.is_finite(),
        "interval must be non-negative and finite"
    );
    assert!(!models.is_empty(), "at least one model is required");
    (0..count)
        .map(|i| InferenceRequest::new(models[i % models.len()], i as f64 * interval_seconds))
        .collect()
}

/// A Poisson request stream: exponential inter-arrival times with the given
/// mean rate (requests/second), models drawn uniformly from `models`.
/// Deterministic for a given seed.
pub fn poisson_stream(
    models: &[WorkloadModel],
    rate_per_second: f64,
    count: usize,
    seed: u64,
) -> Vec<InferenceRequest> {
    assert!(
        rate_per_second > 0.0 && rate_per_second.is_finite(),
        "rate must be positive and finite"
    );
    assert!(!models.is_empty(), "at least one model is required");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut time = 0.0f64;
    (0..count)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            time += -u.ln() / rate_per_second;
            let model = models[rng.gen_range(0..models.len())];
            InferenceRequest::new(model, time)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_scenario_matches_the_paper() {
        let stream = dynamic_scenario();
        assert_eq!(stream.len(), 4);
        assert_eq!(stream[0].model, WorkloadModel::EfficientNetB0);
        assert_eq!(stream[3].model, WorkloadModel::Vgg19);
        for (i, request) in stream.iter().enumerate() {
            assert!((request.arrival - i as f64 * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn repeating_stream_cycles_models() {
        let models = [WorkloadModel::Vgg19, WorkloadModel::ResNet152];
        let stream = repeating_stream(&models, 0.5, 5);
        assert_eq!(stream.len(), 5);
        assert_eq!(stream[0].model, WorkloadModel::Vgg19);
        assert_eq!(stream[1].model, WorkloadModel::ResNet152);
        assert_eq!(stream[2].model, WorkloadModel::Vgg19);
        assert!((stream[4].arrival - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn repeating_stream_rejects_empty_models() {
        let _ = repeating_stream(&[], 0.5, 3);
    }

    #[test]
    fn poisson_stream_is_deterministic_and_monotone() {
        let models = [WorkloadModel::EfficientNetB0, WorkloadModel::InceptionV3];
        let a = poisson_stream(&models, 2.0, 20, 7);
        let b = poisson_stream(&models, 2.0, 20, 7);
        assert_eq!(a, b);
        for pair in a.windows(2) {
            assert!(pair[1].arrival > pair[0].arrival);
        }
        let c = poisson_stream(&models, 2.0, 20, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_rate_controls_density() {
        let models = [WorkloadModel::EfficientNetB0];
        let slow = poisson_stream(&models, 0.5, 50, 1);
        let fast = poisson_stream(&models, 5.0, 50, 1);
        assert!(fast.last().unwrap().arrival < slow.last().unwrap().arrival);
    }
}
