//! Request-stream generators.
//!
//! Every generator routes its request construction through one
//! [`StreamBuilder`] — the shared core that applies the configured batch
//! size, cycles SLA classes and validates arrival times — so cyclic,
//! Poisson, bursty, diurnal and failure-injected traffic differ only in how
//! they produce `(model, arrival)` pairs. All generators are deterministic
//! for a given seed.

use crate::request::InferenceRequest;
use hidp_core::{FleetRequest, ServingRequest, SlaClass};
use hidp_dnn::zoo::WorkloadModel;
use hidp_platform::{ClusterTimeline, NodeIndex};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The shared request-construction core of every stream generator: holds the
/// batch size and SLA-class cycle applied to each produced request, and
/// asserts arrival validity once, in one place.
#[derive(Debug, Clone)]
pub struct StreamBuilder {
    batch: usize,
    sla_cycle: Vec<SlaClass>,
    requests: Vec<InferenceRequest>,
}

impl StreamBuilder {
    /// A builder producing single-image [`SlaClass::Standard`] requests.
    pub fn new() -> Self {
        Self {
            batch: 1,
            sla_cycle: vec![SlaClass::Standard],
            requests: Vec::new(),
        }
    }

    /// [`StreamBuilder::new`] with the request buffer sized for `count`
    /// requests up front. Every generator knows its final count, so the
    /// stream is built with a single allocation — at soak scale (millions
    /// of requests) incremental regrowth would copy the buffer ~20 times.
    pub fn with_capacity(count: usize) -> Self {
        Self {
            batch: 1,
            sla_cycle: vec![SlaClass::Standard],
            requests: Vec::with_capacity(count),
        }
    }

    /// Sets the per-request batch size (clamped to ≥ 1).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the SLA-class cycle: request `i` gets `cycle[i % cycle.len()]`.
    ///
    /// # Panics
    ///
    /// Panics when `cycle` is empty.
    #[must_use]
    pub fn with_sla_cycle(mut self, cycle: &[SlaClass]) -> Self {
        assert!(!cycle.is_empty(), "SLA cycle must not be empty");
        self.sla_cycle = cycle.to_vec();
        self
    }

    /// Appends one request for `model` arriving at `arrival` seconds.
    ///
    /// # Panics
    ///
    /// Panics when `arrival` is not finite and non-negative.
    pub fn push(&mut self, model: WorkloadModel, arrival: f64) {
        assert!(
            arrival.is_finite() && arrival >= 0.0,
            "arrival must be finite and non-negative, got {arrival}"
        );
        let sla = self.sla_cycle[self.requests.len() % self.sla_cycle.len()];
        self.requests.push(
            InferenceRequest::new(model, arrival)
                .with_batch(self.batch)
                .with_sla(sla),
        );
    }

    /// The built request stream.
    pub fn finish(self) -> Vec<InferenceRequest> {
        self.requests
    }
}

impl Default for StreamBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The dynamic workload of the paper's Fig. 6: EfficientNet-B0,
/// Inception-V3, ResNet-152 and VGG-19 arriving 0.5 s apart, so that by
/// t = 1.5 s all four DNNs run concurrently on the cluster.
pub fn dynamic_scenario() -> Vec<InferenceRequest> {
    let mut builder = StreamBuilder::with_capacity(4);
    for (i, &model) in [
        WorkloadModel::EfficientNetB0,
        WorkloadModel::InceptionV3,
        WorkloadModel::ResNet152,
        WorkloadModel::Vgg19,
    ]
    .iter()
    .enumerate()
    {
        builder.push(model, i as f64 * 0.5);
    }
    builder.finish()
}

/// A stream that cycles through `models` with a fixed inter-arrival time,
/// producing `count` requests. Used to measure steady-state throughput
/// (Fig. 7 reports inferences per 100 s).
pub fn repeating_stream(
    models: &[WorkloadModel],
    interval_seconds: f64,
    count: usize,
) -> Vec<InferenceRequest> {
    assert!(
        interval_seconds >= 0.0 && interval_seconds.is_finite(),
        "interval must be non-negative and finite"
    );
    assert!(!models.is_empty(), "at least one model is required");
    let mut builder = StreamBuilder::with_capacity(count);
    for i in 0..count {
        builder.push(models[i % models.len()], i as f64 * interval_seconds);
    }
    builder.finish()
}

/// A Poisson request stream: exponential inter-arrival times with the given
/// mean rate (requests/second), models drawn uniformly from `models`.
/// Deterministic for a given seed.
pub fn poisson_stream(
    models: &[WorkloadModel],
    rate_per_second: f64,
    count: usize,
    seed: u64,
) -> Vec<InferenceRequest> {
    poisson_stream_classed(models, rate_per_second, count, seed, &[SlaClass::Standard])
}

/// [`poisson_stream`] with an SLA-class cycle: request `i` is tagged
/// `sla_cycle[i % len]`, so serving experiments get a deterministic class
/// mix riding on the same arrival process.
pub fn poisson_stream_classed(
    models: &[WorkloadModel],
    rate_per_second: f64,
    count: usize,
    seed: u64,
    sla_cycle: &[SlaClass],
) -> Vec<InferenceRequest> {
    assert!(
        rate_per_second > 0.0 && rate_per_second.is_finite(),
        "rate must be positive and finite"
    );
    assert!(!models.is_empty(), "at least one model is required");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = StreamBuilder::with_capacity(count).with_sla_cycle(sla_cycle);
    let mut time = 0.0f64;
    for _ in 0..count {
        let u: f64 = rng.gen_range(1e-12..1.0);
        time += -u.ln() / rate_per_second;
        let model = models[rng.gen_range(0..models.len())];
        builder.push(model, time);
    }
    builder.finish()
}

/// Bursty traffic: every `burst_interval_seconds` a burst of `burst_size`
/// requests arrives *simultaneously*, all for the same model (bursts cycle
/// through `models` round-robin — the pattern a replicated frontend fanning
/// one hot query type produces, and the best case for the serving layer's
/// dynamic batcher). SLA classes cycle per request. Produces `count`
/// requests; the final burst may be partial.
pub fn bursty_stream(
    models: &[WorkloadModel],
    burst_size: usize,
    burst_interval_seconds: f64,
    count: usize,
    sla_cycle: &[SlaClass],
) -> Vec<InferenceRequest> {
    assert!(!models.is_empty(), "at least one model is required");
    assert!(burst_size >= 1, "bursts need at least one request");
    assert!(
        burst_interval_seconds > 0.0 && burst_interval_seconds.is_finite(),
        "burst interval must be positive and finite"
    );
    let mut builder = StreamBuilder::with_capacity(count).with_sla_cycle(sla_cycle);
    for i in 0..count {
        let burst = i / burst_size;
        builder.push(
            models[burst % models.len()],
            burst as f64 * burst_interval_seconds,
        );
    }
    builder.finish()
}

/// Diurnal traffic: a Poisson process whose rate swings sinusoidally between
/// `base_rate` (trough) and `peak_rate` over each `period_seconds` cycle —
/// the day/night load shape a user-facing service sees. Models are drawn
/// uniformly, SLA classes cycle per request. Deterministic for a given seed.
pub fn diurnal_stream(
    models: &[WorkloadModel],
    base_rate: f64,
    peak_rate: f64,
    period_seconds: f64,
    count: usize,
    seed: u64,
    sla_cycle: &[SlaClass],
) -> Vec<InferenceRequest> {
    assert!(!models.is_empty(), "at least one model is required");
    assert!(
        base_rate > 0.0 && base_rate.is_finite() && peak_rate >= base_rate,
        "rates must satisfy 0 < base_rate <= peak_rate"
    );
    assert!(
        period_seconds > 0.0 && period_seconds.is_finite(),
        "period must be positive and finite"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = StreamBuilder::with_capacity(count).with_sla_cycle(sla_cycle);
    let mut time = 0.0f64;
    for _ in 0..count {
        // Instantaneous rate at the current virtual time: trough at t = 0,
        // peak half a period later.
        let phase = (time / period_seconds) * std::f64::consts::TAU;
        let rate = base_rate + (peak_rate - base_rate) * 0.5 * (1.0 - phase.cos());
        let u: f64 = rng.gen_range(1e-12..1.0);
        time += -u.ln() / rate;
        let model = models[rng.gen_range(0..models.len())];
        builder.push(model, time);
    }
    builder.finish()
}

/// Regional diurnal traffic for the fleet tier: one phase-shifted diurnal
/// Poisson process per region, merged into a single arrival-ordered stream
/// of [`FleetRequest`]s.
///
/// Region `r` (one per entry of `region_weights`) runs the same sinusoidal
/// day/night rate shape as [`diurnal_stream`], but
///
/// * its whole rate curve is scaled by `region_weights[r]` — unequal weights
///   skew load towards hot regions, which is what gives locality- and
///   load-aware routing something to exploit over static spreading; and
/// * its phase is shifted by `r / regions` of a period — regions peak at
///   different times of the virtual day ("follow the sun"), so the hot
///   region keeps moving.
///
/// Each region draws from its own `ChaCha8Rng` stream, so a region's
/// arrival process does not depend on how many other regions exist. The
/// merge is deterministic (ties broken by lower region index) and SLA
/// classes cycle in global arrival order. Produces exactly `count`
/// requests.
///
/// # Panics
///
/// Panics when `models` or `region_weights` is empty, a weight is not
/// positive and finite, the rates do not satisfy
/// `0 < base_rate <= peak_rate`, or the period is not positive and finite.
#[allow(clippy::too_many_arguments)]
pub fn regional_diurnal_stream(
    models: &[WorkloadModel],
    region_weights: &[f64],
    base_rate: f64,
    peak_rate: f64,
    period_seconds: f64,
    count: usize,
    seed: u64,
    sla_cycle: &[SlaClass],
) -> Vec<FleetRequest> {
    assert!(!models.is_empty(), "at least one model is required");
    assert!(
        !region_weights.is_empty(),
        "at least one region is required"
    );
    assert!(
        region_weights.iter().all(|w| *w > 0.0 && w.is_finite()),
        "region weights must be positive and finite"
    );
    assert!(
        base_rate > 0.0 && base_rate.is_finite() && peak_rate >= base_rate,
        "rates must satisfy 0 < base_rate <= peak_rate"
    );
    assert!(
        period_seconds > 0.0 && period_seconds.is_finite(),
        "period must be positive and finite"
    );
    let regions = region_weights.len();
    let mut rngs: Vec<ChaCha8Rng> = (0..regions)
        .map(|r| ChaCha8Rng::seed_from_u64(seed.wrapping_add(r as u64)))
        .collect();
    // Next pending arrival per region; region r's clock is advanced with
    // the instantaneous rate at its current virtual time, peak shifted by
    // r/regions of a period.
    let advance = |r: usize, t: f64, rng: &mut ChaCha8Rng| -> f64 {
        let phase_shift = r as f64 / regions as f64;
        let phase = (t / period_seconds - phase_shift) * std::f64::consts::TAU;
        let rate =
            region_weights[r] * (base_rate + (peak_rate - base_rate) * 0.5 * (1.0 - phase.cos()));
        let u: f64 = rng.gen_range(1e-12..1.0);
        t - u.ln() / rate
    };
    let mut next: Vec<f64> = rngs
        .iter_mut()
        .enumerate()
        .map(|(r, rng)| advance(r, 0.0, rng))
        .collect();
    let mut builder = StreamBuilder::with_capacity(count).with_sla_cycle(sla_cycle);
    let mut picked = Vec::with_capacity(count);
    for _ in 0..count {
        let r = next
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(r, _)| r)
            .expect("at least one region");
        let t = next[r];
        let model = models[rngs[r].gen_range(0..models.len())];
        builder.push(model, t);
        picked.push(r);
        next[r] = advance(r, t, &mut rngs[r]);
    }
    builder
        .finish()
        .into_iter()
        .zip(picked)
        .map(|(request, region)| {
            FleetRequest::new(
                ServingRequest::new(request.model, request.arrival)
                    .with_batch(request.batch)
                    .with_sla(request.sla),
                region,
            )
        })
        .collect()
}

/// Failure-injected traffic: a Poisson stream plus the [`ClusterTimeline`]
/// of node outages to replay while serving it. Each `(node, down_at, up_at)`
/// outage contributes a failure and a recovery event; `up_at` may be
/// `f64::INFINITY` for a permanent failure (no recovery event is emitted).
///
/// # Panics
///
/// Panics when an outage window is not ordered (`up_at <= down_at`) or a
/// time is invalid (negative/NaN).
pub fn failure_injected_stream(
    models: &[WorkloadModel],
    rate_per_second: f64,
    count: usize,
    seed: u64,
    sla_cycle: &[SlaClass],
    outages: &[(NodeIndex, f64, f64)],
) -> (Vec<InferenceRequest>, ClusterTimeline) {
    let requests = poisson_stream_classed(models, rate_per_second, count, seed, sla_cycle);
    let mut timeline = ClusterTimeline::new();
    for &(node, down_at, up_at) in outages {
        assert!(up_at > down_at, "outage must end after it starts");
        timeline
            .push_event(down_at, node, false)
            .expect("outage start time is valid");
        if up_at.is_finite() {
            timeline
                .push_event(up_at, node, true)
                .expect("outage end time is valid");
        }
    }
    (requests, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_scenario_matches_the_paper() {
        let stream = dynamic_scenario();
        assert_eq!(stream.len(), 4);
        assert_eq!(stream[0].model, WorkloadModel::EfficientNetB0);
        assert_eq!(stream[3].model, WorkloadModel::Vgg19);
        for (i, request) in stream.iter().enumerate() {
            assert!((request.arrival - i as f64 * 0.5).abs() < 1e-12);
            assert_eq!(request.sla, SlaClass::Standard);
        }
    }

    #[test]
    fn repeating_stream_cycles_models() {
        let models = [WorkloadModel::Vgg19, WorkloadModel::ResNet152];
        let stream = repeating_stream(&models, 0.5, 5);
        assert_eq!(stream.len(), 5);
        assert_eq!(stream[0].model, WorkloadModel::Vgg19);
        assert_eq!(stream[1].model, WorkloadModel::ResNet152);
        assert_eq!(stream[2].model, WorkloadModel::Vgg19);
        assert!((stream[4].arrival - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn repeating_stream_rejects_empty_models() {
        let _ = repeating_stream(&[], 0.5, 3);
    }

    #[test]
    fn poisson_stream_is_deterministic_and_monotone() {
        let models = [WorkloadModel::EfficientNetB0, WorkloadModel::InceptionV3];
        let a = poisson_stream(&models, 2.0, 20, 7);
        let b = poisson_stream(&models, 2.0, 20, 7);
        assert_eq!(a, b);
        for pair in a.windows(2) {
            assert!(pair[1].arrival > pair[0].arrival);
        }
        let c = poisson_stream(&models, 2.0, 20, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_rate_controls_density() {
        let models = [WorkloadModel::EfficientNetB0];
        let slow = poisson_stream(&models, 0.5, 50, 1);
        let fast = poisson_stream(&models, 5.0, 50, 1);
        assert!(fast.last().unwrap().arrival < slow.last().unwrap().arrival);
    }

    #[test]
    fn builder_applies_batch_and_sla_cycle() {
        let mut builder = StreamBuilder::new()
            .with_batch(2)
            .with_sla_cycle(&[SlaClass::Premium, SlaClass::BestEffort]);
        builder.push(WorkloadModel::Vgg19, 0.0);
        builder.push(WorkloadModel::Vgg19, 0.1);
        builder.push(WorkloadModel::Vgg19, 0.2);
        let stream = builder.finish();
        assert_eq!(stream.len(), 3);
        assert!(stream.iter().all(|r| r.batch == 2));
        assert_eq!(stream[0].sla, SlaClass::Premium);
        assert_eq!(stream[1].sla, SlaClass::BestEffort);
        assert_eq!(stream[2].sla, SlaClass::Premium);
    }

    #[test]
    #[should_panic(expected = "arrival must be finite")]
    fn builder_rejects_invalid_arrivals() {
        StreamBuilder::new().push(WorkloadModel::Vgg19, f64::NAN);
    }

    #[test]
    fn generators_build_streams_in_a_single_allocation() {
        // Every generator pre-sizes through StreamBuilder::with_capacity,
        // so the returned Vec was never regrown: its capacity is exactly
        // the requested count. This is what keeps soak-scale trace
        // construction from copying a multi-megabyte buffer ~20 times.
        let models = [WorkloadModel::EfficientNetB0, WorkloadModel::InceptionV3];
        let streams = [
            repeating_stream(&models, 0.1, 1000),
            poisson_stream(&models, 2.0, 1000, 7),
            bursty_stream(&models, 8, 0.3, 1000, &SlaClass::ALL),
            diurnal_stream(&models, 0.5, 8.0, 20.0, 1000, 3, &SlaClass::ALL),
        ];
        for stream in &streams {
            assert_eq!(stream.len(), 1000);
            assert_eq!(stream.capacity(), stream.len(), "stream was regrown");
        }
    }

    #[test]
    fn classed_poisson_rides_the_same_arrival_process() {
        let models = [WorkloadModel::EfficientNetB0, WorkloadModel::InceptionV3];
        let plain = poisson_stream(&models, 2.0, 12, 7);
        let classed = poisson_stream_classed(&models, 2.0, 12, 7, &SlaClass::ALL);
        for (p, c) in plain.iter().zip(&classed) {
            assert_eq!(p.model, c.model);
            assert_eq!(p.arrival, c.arrival);
        }
        assert_eq!(classed[0].sla, SlaClass::Premium);
        assert_eq!(classed[1].sla, SlaClass::Standard);
        assert_eq!(classed[2].sla, SlaClass::BestEffort);
        assert_eq!(classed[3].sla, SlaClass::Premium);
    }

    #[test]
    fn bursty_stream_groups_same_model_bursts() {
        let models = [WorkloadModel::EfficientNetB0, WorkloadModel::ResNet152];
        let stream = bursty_stream(&models, 4, 0.5, 10, &[SlaClass::Standard]);
        assert_eq!(stream.len(), 10);
        // First burst: 4 EfficientNet requests at t = 0.
        for r in &stream[..4] {
            assert_eq!(r.model, WorkloadModel::EfficientNetB0);
            assert_eq!(r.arrival, 0.0);
        }
        // Second burst: 4 ResNet requests at t = 0.5.
        for r in &stream[4..8] {
            assert_eq!(r.model, WorkloadModel::ResNet152);
            assert_eq!(r.arrival, 0.5);
        }
        // Partial third burst cycles back to the first model.
        for r in &stream[8..] {
            assert_eq!(r.model, WorkloadModel::EfficientNetB0);
            assert_eq!(r.arrival, 1.0);
        }
    }

    #[test]
    fn diurnal_stream_is_denser_at_the_peak() {
        let models = [WorkloadModel::EfficientNetB0];
        let stream = diurnal_stream(&models, 0.5, 8.0, 20.0, 60, 3, &[SlaClass::Standard]);
        assert_eq!(stream.len(), 60);
        for pair in stream.windows(2) {
            assert!(pair[1].arrival > pair[0].arrival);
        }
        // Determinism.
        assert_eq!(
            stream,
            diurnal_stream(&models, 0.5, 8.0, 20.0, 60, 3, &[SlaClass::Standard])
        );
        // More arrivals land in the peak half-period [P/4, 3P/4) than in the
        // trough half (the rate there is several times higher).
        let in_peak = |t: f64| {
            let phase = (t / 20.0).fract();
            (0.25..0.75).contains(&phase)
        };
        let peak = stream.iter().filter(|r| in_peak(r.arrival)).count();
        assert!(
            peak > stream.len() - peak,
            "peak half-period got {peak}/{} arrivals",
            stream.len()
        );
    }

    #[test]
    fn regional_stream_is_deterministic_ordered_and_skewed() {
        let models = [WorkloadModel::EfficientNetB0, WorkloadModel::InceptionV3];
        // Region 0 carries 4x the load of region 1.
        let stream = regional_diurnal_stream(
            &models,
            &[4.0, 1.0],
            1.0,
            8.0,
            40.0,
            400,
            11,
            &SlaClass::ALL,
        );
        assert_eq!(stream.len(), 400);
        assert_eq!(
            stream,
            regional_diurnal_stream(
                &models,
                &[4.0, 1.0],
                1.0,
                8.0,
                40.0,
                400,
                11,
                &SlaClass::ALL
            )
        );
        for pair in stream.windows(2) {
            assert!(pair[1].request.arrival >= pair[0].request.arrival);
        }
        // SLA classes cycle in global arrival order.
        for (i, fr) in stream.iter().enumerate() {
            assert_eq!(fr.request.sla, SlaClass::ALL[i % SlaClass::ALL.len()]);
        }
        // The heavy region receives the bulk of the traffic.
        let hot = stream.iter().filter(|fr| fr.region == 0).count();
        assert!(
            hot > 2 * (stream.len() - hot),
            "hot region got {hot}/{} requests",
            stream.len()
        );
    }

    #[test]
    fn regional_streams_are_phase_shifted_per_region() {
        // Two equal-weight regions, phases half a period apart: each
        // region's arrivals must be densest in its own peak half-period.
        let models = [WorkloadModel::EfficientNetB0];
        let period = 30.0;
        let stream = regional_diurnal_stream(
            &models,
            &[1.0, 1.0],
            0.5,
            10.0,
            period,
            600,
            3,
            &[SlaClass::Standard],
        );
        for region in 0..2 {
            let shift = region as f64 / 2.0;
            let in_own_peak = |t: f64| {
                let phase = (t / period - shift).rem_euclid(1.0);
                (0.25..0.75).contains(&phase)
            };
            let (peak, total) = stream
                .iter()
                .filter(|fr| fr.region == region)
                .fold((0usize, 0usize), |(p, n), fr| {
                    (p + usize::from(in_own_peak(fr.request.arrival)), n + 1)
                });
            assert!(
                peak * 2 > total,
                "region {region}: {peak}/{total} arrivals in its peak half"
            );
        }
    }

    #[test]
    fn regional_region_processes_are_independent_of_region_count() {
        // Adding a region must not perturb region 0's arrival process: each
        // region draws from its own rng stream.
        let models = [WorkloadModel::EfficientNetB0, WorkloadModel::ResNet152];
        let two =
            regional_diurnal_stream(&models, &[1.0, 1.0], 1.0, 4.0, 20.0, 300, 7, &SlaClass::ALL);
        let three = regional_diurnal_stream(
            &models,
            &[1.0, 1.0, 1.0],
            1.0,
            4.0,
            20.0,
            300,
            7,
            &SlaClass::ALL,
        );
        let arrivals = |stream: &[FleetRequest], region: usize, take: usize| -> Vec<f64> {
            stream
                .iter()
                .filter(|fr| fr.region == region)
                .map(|fr| fr.request.arrival)
                .take(take)
                .collect()
        };
        // Compare a shared prefix (the 300-request cut lands at different
        // virtual times, so only the prefix overlaps).
        let take = arrivals(&two, 0, usize::MAX)
            .len()
            .min(arrivals(&three, 0, usize::MAX).len())
            .min(50);
        assert!(take >= 10, "not enough region-0 arrivals to compare");
        assert_eq!(arrivals(&two, 0, take), arrivals(&three, 0, take));
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn regional_stream_rejects_bad_weights() {
        let _ = regional_diurnal_stream(
            &[WorkloadModel::Vgg19],
            &[1.0, 0.0],
            1.0,
            2.0,
            10.0,
            5,
            0,
            &[SlaClass::Standard],
        );
    }

    #[test]
    fn failure_injected_stream_builds_matching_timeline() {
        let models = [WorkloadModel::Vgg19];
        let (requests, timeline) = failure_injected_stream(
            &models,
            2.0,
            10,
            5,
            &SlaClass::ALL,
            &[(NodeIndex(3), 1.0, 4.0), (NodeIndex(4), 2.0, f64::INFINITY)],
        );
        assert_eq!(requests.len(), 10);
        // Down at 1.0, down at 2.0, up at 4.0 — the permanent failure has no
        // recovery event.
        assert_eq!(timeline.len(), 3);
        assert_eq!(timeline.events()[0].node, NodeIndex(3));
        assert!(!timeline.events()[0].up);
        assert_eq!(timeline.events()[1].node, NodeIndex(4));
        assert!(timeline.events()[2].up);
        // The requests are the plain classed Poisson stream.
        assert_eq!(
            requests,
            poisson_stream_classed(&models, 2.0, 10, 5, &SlaClass::ALL)
        );
    }

    #[test]
    #[should_panic(expected = "outage must end")]
    fn inverted_outage_windows_are_rejected() {
        let _ = failure_injected_stream(
            &[WorkloadModel::Vgg19],
            1.0,
            2,
            0,
            &[SlaClass::Standard],
            &[(NodeIndex(0), 5.0, 1.0)],
        );
    }
}
