//! Benchmarks the reference tensor kernels used by the equivalence tests.

use criterion::{criterion_group, criterion_main, Criterion};
use hidp_tensor::{ops, Tensor};

fn bench_kernels(c: &mut Criterion) {
    let mut rng = rand::thread_rng();
    let input = Tensor::random(&[1, 16, 32, 32], 1.0, &mut rng).unwrap();
    let weight = Tensor::random(&[16, 16, 3, 3], 0.5, &mut rng).unwrap();
    let dense_in = Tensor::random(&[8, 1024], 1.0, &mut rng).unwrap();
    let dense_w = Tensor::random(&[256, 1024], 0.5, &mut rng).unwrap();

    let mut group = c.benchmark_group("tensor_ops");
    group.sample_size(20);
    group.bench_function("conv2d_16x32x32_3x3", |b| {
        b.iter(|| ops::conv2d(&input, &weight, None, (1, 1), (1, 1)).unwrap())
    });
    group.bench_function("dense_8x1024x256", |b| {
        b.iter(|| ops::dense(&dense_in, &dense_w, None).unwrap())
    });
    group.bench_function("softmax_8x256", |b| {
        let logits = ops::dense(&dense_in, &dense_w, None).unwrap();
        b.iter(|| ops::softmax(&logits).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
