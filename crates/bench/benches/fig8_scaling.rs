//! Benchmarks HiDP planning cost as the cluster grows from 2 to 5 nodes
//! (the machinery behind Fig. 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::LEADER;
use hidp_core::{HidpStrategy, Scenario};
use hidp_dnn::zoo::WorkloadModel;
use hidp_platform::presets;

fn bench_scaling(c: &mut Criterion) {
    let full = presets::paper_cluster();
    let scenario = Scenario::single(WorkloadModel::InceptionV3.graph(1));
    let strategy = HidpStrategy::new();
    let mut group = c.benchmark_group("fig8_scaling");
    group.sample_size(10);
    for nodes in 2..=full.len() {
        let cluster = full.take(nodes).expect("valid subset");
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &cluster,
            |b, cluster| {
                b.iter(|| {
                    scenario
                        .run(&strategy, cluster, LEADER)
                        .expect("evaluation")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
