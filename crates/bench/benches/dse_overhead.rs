//! Benchmarks the DP-based design-space exploration — the overhead the
//! paper reports as ≈15 ms per request (§III, Middleware).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::LEADER;
use hidp_core::{chain_segments, workload_summary, DseAgent, LocalPartitioner, SystemModel};
use hidp_dnn::zoo::WorkloadModel;
use hidp_platform::presets;

fn bench_dse(c: &mut Criterion) {
    let cluster = presets::paper_cluster();
    let mut group = c.benchmark_group("dse_overhead");
    group.sample_size(20);
    for model in WorkloadModel::ALL {
        let graph = model.graph(1);
        let system = SystemModel::new(&graph, LEADER);
        let segments = chain_segments(&graph);
        let workload = workload_summary(&graph);
        let resources = system.global_resources(&cluster);
        group.bench_with_input(BenchmarkId::new("global", model.name()), &(), |b, ()| {
            b.iter(|| {
                DseAgent::new()
                    .explore(&segments, &resources, workload, resources.len())
                    .expect("exploration")
            })
        });
        group.bench_with_input(BenchmarkId::new("local", model.name()), &(), |b, ()| {
            b.iter(|| {
                LocalPartitioner::hidp()
                    .partition(
                        &system,
                        &cluster,
                        LEADER,
                        workload.flops,
                        workload.input_bytes,
                        workload.output_bytes,
                        workload.sync_bytes / 4,
                    )
                    .expect("local partition")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);
