//! Benchmarks the streaming serving loop — the soak path: indexed
//! admission, the measured-completion dispatch model and P²-sketched
//! summaries over a diurnal trace, at a bench-sized request count. The CI
//! bench-smoke job runs this with `--test` (one untimed pass per benchmark)
//! so the soak path compiles and executes on every PR; `exp_soak` is the
//! full-scale gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::LEADER;
use hidp_core::{AdmissionPolicy, HidpStrategy, PlanCache, ServingScenario, ServingScratch};
use hidp_platform::presets;

fn bench_soak(c: &mut Criterion) {
    const COUNT: usize = 20_000;
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = hidp_bench::soak_trace(COUNT);

    let mut group = c.benchmark_group("soak");
    group.sample_size(10);

    for (label, policy) in [
        ("fifo", AdmissionPolicy::Fifo),
        ("edf", AdmissionPolicy::EarliestDeadline),
    ] {
        let scenario = ServingScenario::new(requests.clone())
            .with_label(format!("soak-{label}"))
            .with_policy(policy)
            .with_max_batch(8)
            .with_max_inflight(Some(4));
        let cache = PlanCache::new();
        let mut scratch = ServingScratch::new();
        // Warm pass: cold planning and buffer sizing happen once, outside
        // the measurement — the bench tracks the steady state exp_soak
        // gates on.
        scenario
            .run_streaming_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
            .expect("soak warm pass succeeds");
        group.bench_function(BenchmarkId::new(format!("streaming_{label}"), COUNT), |b| {
            b.iter(|| {
                criterion::black_box(
                    scenario
                        .run_streaming_with_cache_in(
                            &strategy,
                            &cluster,
                            LEADER,
                            &cache,
                            &mut scratch,
                        )
                        .expect("soak pass succeeds"),
                );
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_soak);
criterion_main!(benches);
