//! Benchmarks the fleet tier — N per-cluster serving loops advanced on one
//! clock behind a routing policy — at a bench-sized request count. The CI
//! bench-smoke job runs this with `--test` (one untimed pass per benchmark)
//! so the fleet path compiles and executes on every PR; `exp_fleet` is the
//! full-scale gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::LEADER;
use hidp_core::{FleetScratch, HidpStrategy, ParallelSweep};
use hidp_platform::presets;

fn bench_fleet(c: &mut Criterion) {
    const COUNT: usize = 20_000;
    const CLUSTERS: usize = 8;
    const REGIONS: usize = 4;
    let fleet = presets::generated_fleet(CLUSTERS, REGIONS).expect("fleet preset is valid");
    let strategy = HidpStrategy::new();
    let requests = hidp_bench::fleet_trace(COUNT, REGIONS, 6.0);

    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    for routing in hidp_bench::fleet_routing_policies() {
        let scenario = hidp_bench::fleet_scenario(requests.clone(), routing);
        let sweep = ParallelSweep::new(1);
        let mut scratch = FleetScratch::new();
        // Warm pass: cold planning and scratch sizing happen once, outside
        // the measurement — the bench tracks the steady state exp_fleet
        // gates on.
        scenario
            .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
            .expect("fleet warm pass succeeds");
        group.bench_function(BenchmarkId::new(routing.name(), COUNT), |b| {
            b.iter(|| {
                criterion::black_box(
                    scenario
                        .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
                        .expect("fleet pass succeeds"),
                );
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
