//! Benchmarks the workload-mix stream evaluation underlying Fig. 7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_baselines::paper_strategies;
use hidp_bench::LEADER;
use hidp_platform::presets;
use hidp_workloads::mixes;

fn bench_mixes(c: &mut Criterion) {
    let cluster = presets::paper_cluster();
    let scenario = mixes::all_mixes()[1].scenario(0.5, 8);
    let mut group = c.benchmark_group("fig7_mixes");
    group.sample_size(10);
    for strategy in paper_strategies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    scenario
                        .run(strategy.as_ref(), &cluster, LEADER)
                        .expect("stream evaluation")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mixes);
criterion_main!(benches);
