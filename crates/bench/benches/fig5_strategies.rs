//! Benchmarks one full plan-and-simulate evaluation (the unit of Fig. 5)
//! for every strategy on ResNet-152.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_baselines::paper_strategies;
use hidp_bench::LEADER;
use hidp_core::Scenario;
use hidp_dnn::zoo::WorkloadModel;
use hidp_platform::presets;

fn bench_strategies(c: &mut Criterion) {
    let cluster = presets::paper_cluster();
    let scenario = Scenario::single(WorkloadModel::ResNet152.graph(1));
    let mut group = c.benchmark_group("fig5_strategies");
    group.sample_size(10);
    for strategy in paper_strategies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    scenario
                        .run(strategy.as_ref(), &cluster, LEADER)
                        .expect("evaluation")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
