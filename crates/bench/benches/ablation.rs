//! Benchmarks the ablation variants of HiDP (full, no local tier,
//! model-only, data-only) on VGG-19.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::{ablation_variants, LEADER};
use hidp_core::Scenario;
use hidp_dnn::zoo::WorkloadModel;
use hidp_platform::presets;

fn bench_ablation(c: &mut Criterion) {
    let cluster = presets::paper_cluster();
    let scenario = Scenario::single(WorkloadModel::Vgg19.graph(1));
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (name, strategy) in ablation_variants() {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    scenario
                        .run(strategy, &cluster, LEADER)
                        .expect("evaluation")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
