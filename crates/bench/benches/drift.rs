//! Benchmarks the drift-aware serving path: the same trace served with no
//! drift (legacy loop), under the seeded drift trace with static plans, and
//! with the full adaptive loop — so the cost of continuous drift evaluation
//! and the estimation/re-planning machinery is visible next to the loop it
//! extends. The CI bench-smoke job runs this with `--test` (one untimed
//! pass per benchmark) so the drift path compiles and executes on every PR;
//! `exp_drift` is the full-scale gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::LEADER;
use hidp_core::{AdaptiveConfig, HidpStrategy, PlanCache, ServingScratch};
use hidp_platform::presets;

fn bench_drift(c: &mut Criterion) {
    const COUNT: usize = 5_000;
    const SEED: u64 = 0xD21F7;
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = hidp_bench::soak_trace(COUNT);
    let horizon = requests
        .iter()
        .map(|r| r.arrival)
        .fold(0.0, f64::max)
        .max(1.0);
    let model = hidp_bench::drift_trace(cluster.len(), horizon, SEED);

    let scenarios = [
        (
            "no-drift",
            hidp_bench::drift_scenario(requests.clone(), "no-drift", None, None),
        ),
        (
            "static-drift",
            hidp_bench::drift_scenario(requests.clone(), "static-drift", Some(model.clone()), None),
        ),
        (
            "adaptive-drift",
            hidp_bench::drift_scenario(
                requests.clone(),
                "adaptive-drift",
                Some(model.clone()),
                Some(AdaptiveConfig::default()),
            ),
        ),
    ];

    let mut group = c.benchmark_group("drift");
    group.sample_size(10);
    for (name, scenario) in &scenarios {
        let cache = PlanCache::new();
        let mut scratch = ServingScratch::new();
        // Warm pass: cold planning and scratch sizing happen once, outside
        // the measurement — the bench tracks the zero-alloc steady state
        // exp_drift gates on.
        scenario
            .run_streaming_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
            .expect("drift warm pass succeeds");
        group.bench_function(BenchmarkId::new(*name, COUNT), |b| {
            b.iter(|| {
                criterion::black_box(
                    scenario
                        .run_streaming_with_cache_in(
                            &strategy,
                            &cluster,
                            LEADER,
                            &cache,
                            &mut scratch,
                        )
                        .expect("drift pass succeeds"),
                );
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_drift);
criterion_main!(benches);
