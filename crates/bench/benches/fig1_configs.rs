//! Benchmarks the Fig. 1 machinery: building and simulating one
//! partitioning-configuration plan on the Jetson TX2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::{fig1_plan, FIG1_CONFIGS};
use hidp_core::Scenario;
use hidp_dnn::zoo::WorkloadModel;
use hidp_platform::presets;

fn bench_fig1(c: &mut Criterion) {
    let cluster = presets::tx2_only();
    let mut group = c.benchmark_group("fig1_configs");
    group.sample_size(20);
    for model in [WorkloadModel::EfficientNetB0, WorkloadModel::Vgg19] {
        for config in [FIG1_CONFIGS[0], FIG1_CONFIGS[6]] {
            group.bench_with_input(
                BenchmarkId::new(model.name(), config.name),
                &(model, config),
                |b, (model, config)| {
                    b.iter(|| {
                        let plan = fig1_plan(*model, *config, &cluster);
                        Scenario::run_plans(config.name, model.name(), &[(0.0, plan)], &cluster)
                            .expect("valid plan")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
