//! Benchmarks the zero-copy warm path in isolation: the borrowed keyed
//! plan probe, the scratch-reusing summary simulation, and the whole
//! `run_with_cache_in` pipeline per request. The CI bench-smoke job runs
//! this with `--test` (one untimed pass per benchmark) so the steady-state
//! serving path compiles and executes on every PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::{LEADER, SCALING_MODELS};
use hidp_core::{HidpStrategy, PlanCache, PlanKey, SimScratch, TraceDetail};
use hidp_platform::presets;
use hidp_sim::simulate_stream_in;
use hidp_workloads::InferenceRequest;

fn bench_warm_path(c: &mut Criterion) {
    const COUNT: usize = 1000;
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let cache = PlanCache::new();
    let requests = hidp_workloads::repeating_stream(&SCALING_MODELS, 0.05, COUNT);
    let stream = InferenceRequest::to_stream(&requests);

    let mut group = c.benchmark_group("warm_path");
    group.sample_size(10);

    // Cached planning through the hoisted, borrowed key — the per-request
    // cost the Scenario pipeline pays once its models are cached.
    let mut key = PlanKey::for_run(&strategy, &cluster, LEADER);
    for (_, graph) in &stream {
        key.graph_fingerprint = graph.fingerprint();
        key.batch = graph.input_shape().batch();
        cache
            .plan_keyed(&key, &strategy, graph, &cluster, LEADER)
            .expect("planning succeeds");
    }
    group.bench_function(BenchmarkId::new("plan_keyed_warm", COUNT), |b| {
        b.iter(|| {
            for (_, graph) in &stream {
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                criterion::black_box(
                    cache
                        .plan_keyed(&key, &strategy, graph, &cluster, LEADER)
                        .expect("planning succeeds"),
                );
            }
        })
    });

    // Summary simulation into a reused scratch: the steady-state simulate
    // half on an Arc-shared plan stream.
    let planned = hidp_bench::scaling_stream(COUNT, 0.05);
    let mut scratch = SimScratch::new();
    group.bench_function(BenchmarkId::new("simulate_summary_scratch", COUNT), |b| {
        b.iter(|| {
            criterion::black_box(
                simulate_stream_in(&mut scratch, &planned, &cluster, TraceDetail::Summary)
                    .expect("stream simulates"),
            );
        })
    });

    // The whole pipeline end to end: plan every request through the warm
    // shared cache and simulate into the reused scratch.
    let scenario = InferenceRequest::to_scenario(&requests)
        .with_label("mix5-warm")
        .with_trace_detail(TraceDetail::Summary);
    let pipeline_cache = PlanCache::new();
    let mut pipeline_scratch = SimScratch::new();
    group.bench_function(BenchmarkId::new("pipeline_warm", COUNT), |b| {
        b.iter(|| {
            criterion::black_box(
                scenario
                    .run_with_cache_in(
                        &strategy,
                        &cluster,
                        LEADER,
                        &pipeline_cache,
                        &mut pipeline_scratch,
                    )
                    .expect("evaluation succeeds"),
            );
        })
    });
    group.finish();
}

criterion_group!(benches, bench_warm_path);
criterion_main!(benches);
