//! Benchmarks the serving runtime: the full admission → batch → plan →
//! simulate loop on bursty SLA-classed traffic, in the degenerate
//! (static-equivalent) mode and with batching + failure timeline active.
//! The CI bench-smoke job runs this with `--test` (one untimed pass per
//! benchmark) so the serving loop compiles and executes on every PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::{serving_failure_patterns, LEADER, SCALING_MODELS};
use hidp_core::{
    AdmissionPolicy, HidpStrategy, PlanCache, ServingScenario, ServingScratch, SlaClass,
    TraceDetail,
};
use hidp_platform::presets;
use hidp_workloads::{bursty_stream, InferenceRequest};

fn bench_serving(c: &mut Criterion) {
    const COUNT: usize = 400;
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = InferenceRequest::to_serving(&bursty_stream(
        &SCALING_MODELS,
        8,
        0.4,
        COUNT,
        &SlaClass::ALL,
    ));

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);

    // Degenerate mode: FIFO, batch = 1, unbounded window, static cluster —
    // the serving loop's overhead over the static pipeline.
    let degenerate = ServingScenario::new(requests.clone())
        .with_label("degenerate")
        .with_trace_detail(TraceDetail::Summary);
    let cache = PlanCache::new();
    let mut scratch = ServingScratch::new();
    group.bench_function(BenchmarkId::new("degenerate_warm", COUNT), |b| {
        b.iter(|| {
            criterion::black_box(
                degenerate
                    .run_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
                    .expect("serving run succeeds"),
            );
        })
    });

    // The full dynamic regime: priority admission, k = 8 batching, a
    // 2-batch window and a rolling failure timeline.
    let (_, rolling) = serving_failure_patterns().pop().expect("patterns exist");
    let dynamic = ServingScenario::new(requests)
        .with_label("dynamic")
        .with_policy(AdmissionPolicy::Priority)
        .with_max_batch(8)
        .with_max_inflight(Some(2))
        .with_timeline(rolling)
        .with_trace_detail(TraceDetail::Summary);
    let dynamic_cache = PlanCache::new();
    let mut dynamic_scratch = ServingScratch::new();
    group.bench_function(BenchmarkId::new("dynamic_warm", COUNT), |b| {
        b.iter(|| {
            criterion::black_box(
                dynamic
                    .run_with_cache_in(
                        &strategy,
                        &cluster,
                        LEADER,
                        &dynamic_cache,
                        &mut dynamic_scratch,
                    )
                    .expect("serving run succeeds"),
            );
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
