//! Benchmarks the simulator hot path on long mixed streams: the
//! event-driven engine against the O(n²) list-scheduling baseline, plus the
//! per-request cost of planning through a warm `PlanCache`. The CI
//! bench-smoke job runs this with `--test` (one untimed pass per benchmark)
//! so the perf path compiles and executes on every PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::{scaling_stream, LEADER, SCALING_MODELS};
use hidp_core::{HidpStrategy, PlanCache};
use hidp_platform::presets;
use hidp_sim::{simulate_stream, simulate_stream_reference};

fn bench_stream_scaling(c: &mut Criterion) {
    let cluster = presets::paper_cluster();
    let mut group = c.benchmark_group("stream_scaling");
    group.sample_size(10);

    for count in [100usize, 1000] {
        let planned = scaling_stream(count, 0.05);
        group.bench_with_input(BenchmarkId::new("event", count), &planned, |b, planned| {
            b.iter(|| simulate_stream(planned, &cluster).expect("simulates"))
        });
    }

    // The quadratic baseline: one small point for a same-size comparison and
    // the 1 000-request point the speedup criterion is measured at (few
    // samples — a single run is ~n² task scans).
    for (count, samples) in [(100usize, 10usize), (1000, 2)] {
        let planned = scaling_stream(count, 0.05);
        group.sample_size(samples);
        group.bench_with_input(BenchmarkId::new("list", count), &planned, |b, planned| {
            b.iter(|| simulate_stream_reference(planned, &cluster).expect("simulates"))
        });
    }

    // Warm-cache planning: the per-request planning cost once the three
    // distinct models of the mix are cached (graphs prebuilt and the key
    // hoisted and reused, as in the Scenario pipeline's request loop).
    group.sample_size(10);
    let strategy = HidpStrategy::new();
    let cache = PlanCache::new();
    let requests = hidp_workloads::repeating_stream(&SCALING_MODELS, 0.05, 1000);
    let stream = hidp_workloads::InferenceRequest::to_stream(&requests);
    let mut key = hidp_core::PlanKey::for_run(&strategy, &cluster, LEADER);
    group.bench_function(BenchmarkId::new("plan_cached", 1000), |b| {
        b.iter(|| {
            for (_, graph) in &stream {
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                criterion::black_box(
                    cache
                        .plan_keyed(&key, &strategy, graph, &cluster, LEADER)
                        .expect("planning succeeds"),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream_scaling);
criterion_main!(benches);
