//! Benchmarks the parallel evaluation engine: the Mix-5 sweep through
//! `ParallelSweep` at several worker-thread counts (each iteration plans
//! through a cold shared sharded `PlanCache`, so sharding and in-flight
//! deduplication are on the measured path), plus the warm sharded-cache
//! lookup cost on its own. The CI bench-smoke job runs this with `--test`
//! (one untimed pass per benchmark) so the concurrent path compiles and
//! executes on every PR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::parallel_eval_scenarios;
use hidp_core::{HidpStrategy, ParallelSweep, PlanCache, SweepJob};
use hidp_platform::presets;

fn bench_parallel_eval(c: &mut Criterion) {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let scenarios = parallel_eval_scenarios(8, 50);
    let jobs: Vec<SweepJob<'_>> = scenarios
        .iter()
        .map(|(scenario, leader)| SweepJob {
            scenario,
            strategy: &strategy,
            cluster: &cluster,
            leader: *leader,
        })
        .collect();

    let mut group = c.benchmark_group("parallel_eval");
    group.sample_size(10);
    let mut thread_counts = vec![1usize, 2];
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if !thread_counts.contains(&available) {
        thread_counts.push(available);
    }
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new("mix5_sweep", threads),
            &threads,
            |b, &threads| {
                let sweep = ParallelSweep::new(threads);
                b.iter(|| {
                    let cache = PlanCache::new();
                    criterion::black_box(sweep.run_scenarios(&jobs, &cache))
                })
            },
        );
    }

    // The warm path in isolation: every lookup hits a populated sharded
    // cache (read lock + hash probe, no planning).
    let cache = PlanCache::new();
    let warm_job = &jobs[0];
    let (_, graph) = &warm_job.scenario.requests()[0];
    cache
        .plan(warm_job.strategy, graph, &cluster, warm_job.leader)
        .expect("planning succeeds");
    group.bench_function(BenchmarkId::new("warm_sharded_lookup", 1), |b| {
        b.iter(|| {
            criterion::black_box(
                cache
                    .plan(warm_job.strategy, graph, &cluster, warm_job.leader)
                    .expect("planning succeeds"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_eval);
criterion_main!(benches);
