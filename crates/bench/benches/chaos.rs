//! Benchmarks the failure-aware fleet path: the same trace served fault-free
//! (legacy loop), under the seeded fault suite without recovery, and with
//! retry + failover — so the cost of the recovery machinery itself is
//! visible next to the loop it extends. The CI bench-smoke job runs this
//! with `--test` (one untimed pass per benchmark) so the chaos path compiles
//! and executes on every PR; `exp_chaos` is the full-scale gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hidp_bench::LEADER;
use hidp_core::{FleetScratch, HidpStrategy, ParallelSweep, RecoveryPolicy, RoutingPolicy};
use hidp_platform::presets;

fn bench_chaos(c: &mut Criterion) {
    const COUNT: usize = 10_000;
    const CLUSTERS: usize = 4;
    const REGIONS: usize = 2;
    const SEED: u64 = 0xC4405;
    let fleet = presets::generated_fleet(CLUSTERS, REGIONS).expect("fleet preset is valid");
    let strategy = HidpStrategy::new();
    let requests = hidp_bench::fleet_trace(COUNT, REGIONS, 1.2);
    let horizon = requests
        .iter()
        .map(|r| r.request.arrival)
        .fold(0.0, f64::max)
        .max(1.0);
    let node_counts: Vec<usize> = fleet.clusters().iter().map(|c| c.len()).collect();
    let plans = hidp_bench::chaos_fault_suite(&node_counts, horizon, SEED);

    let scenarios = [
        (
            "fault-free",
            hidp_bench::fleet_scenario(requests.clone(), RoutingPolicy::LeastLoaded),
        ),
        (
            "no-recovery",
            hidp_bench::chaos_scenario(
                requests.clone(),
                &plans,
                "no-recovery",
                RecoveryPolicy::default(),
            ),
        ),
        (
            "retry-failover",
            hidp_bench::chaos_scenario(
                requests.clone(),
                &plans,
                "retry-failover",
                RecoveryPolicy::standard(),
            ),
        ),
    ];

    let mut group = c.benchmark_group("chaos");
    group.sample_size(10);
    for (name, scenario) in &scenarios {
        let sweep = ParallelSweep::new(1);
        let mut scratch = FleetScratch::new();
        // Warm pass: cold planning and scratch sizing happen once, outside
        // the measurement — the bench tracks the zero-alloc steady state
        // exp_chaos gates on.
        scenario
            .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
            .expect("chaos warm pass succeeds");
        group.bench_function(BenchmarkId::new(*name, COUNT), |b| {
            b.iter(|| {
                criterion::black_box(
                    scenario
                        .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
                        .expect("chaos pass succeeds"),
                );
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);
