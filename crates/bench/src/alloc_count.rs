//! A counting allocator for auditing the zero-copy warm path.
//!
//! [`CountingAllocator`] wraps the system allocator and counts every
//! allocation (`alloc`, `alloc_zeroed`, `realloc`) on the calling thread.
//! The count is thread-local so unrelated threads — the test harness, a
//! parallel sweep's workers — cannot pollute an audit, and counting is a
//! single `Cell` bump, cheap enough to leave enabled for real measurement
//! runs.
//!
//! `#[global_allocator]` statics must be declared per binary, so consumers
//! (the `exp_warm_path` binary, the `zero_alloc_warm_path` integration
//! test) declare their own static of this one type:
//!
//! ```ignore
//! use hidp_bench::alloc_count::{allocations_on_this_thread, CountingAllocator};
//!
//! #[global_allocator]
//! static ALLOCATOR: CountingAllocator = CountingAllocator;
//! ```
//!
//! Keeping the type here means the CI gate (`exp_warm_path --quick`) and
//! the counting-allocator test enforce the *same* definition of
//! "allocation".

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts allocations on the calling thread; see the module docs.
pub struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Total allocations performed on the calling thread since it started
/// (monotone — audit a region by differencing before/after counts).
pub fn allocations_on_this_thread() -> u64 {
    ALLOCATIONS.with(|count| count.get())
}

fn bump() {
    // try_with: the allocator must stay usable during TLS teardown.
    let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}
