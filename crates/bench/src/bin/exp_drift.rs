//! Drift experiment: the serving tier under a seeded continuous drift
//! trace — thermal throttle ramps, background-load bursts, network
//! contention — served with four configurations over the same trace:
//! no-drift (yardstick), no-drift with estimation armed (bit-identity
//! control), static plans under drift (degradation baseline), and the full
//! adaptive loop (EWMA rate estimates + hysteresis-bounded re-planning on
//! the believed cluster). Prints a markdown table and writes
//! `BENCH_drift.json` to track the adaptive-robustness trajectory across
//! PRs.
//!
//! The binary installs the counting global allocator and audits the timed
//! steady-state pass of every configuration. Gates, enforced in CI via
//! `--quick` and on the full run:
//!
//! * **latency** — adaptive re-planning beats static plans on p99 latency
//!   at equal offered load;
//! * **energy** — adaptive re-planning beats static plans on total energy
//!   (idle power × makespan + dynamic dispatch energy);
//! * **bounded re-planning** — the adaptive run re-plans at least once and
//!   never more than the hysteresis bound; non-adaptive runs never re-plan;
//! * **bit-identity** — estimation armed with nothing drifting changes no
//!   measured output (only the observation count may differ);
//! * **bounded memory** — the audited steady-state pass performs **zero**
//!   heap allocations per configuration, estimation and re-planning
//!   machinery included;
//! * **bandit convergence** — the episode-level UCB1 over adaptive tunings
//!   tries every arm and settles on the lowest-p99 one.

use hidp_bench::alloc_count::{allocations_on_this_thread, CountingAllocator};
use hidp_core::AdaptiveConfig;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // The full run stays near capacity (not past it): the diurnal trace at
    // 8k requests stresses the throttle windows without drowning every
    // configuration in unbounded queueing.
    let (count, seed, episodes) = if quick {
        (4_000, 0xD21F7, 12u32)
    } else {
        (8_000, 0xD21F7, 12u32)
    };

    let counter: &dyn Fn() -> u64 = &allocations_on_this_thread;
    let points = hidp_bench::drift_points(count, seed, Some(counter));
    println!("{}", hidp_bench::drift_table(&points).to_markdown());

    let mut violations = 0usize;
    let by_name = |name: &str| {
        points
            .iter()
            .find(|p| p.config == name)
            .expect("configuration measured")
    };
    let no_drift = by_name("no-drift");
    let no_drift_adaptive = by_name("no-drift-adaptive");
    let static_drift = by_name("static-drift");
    let adaptive = by_name("adaptive-drift");

    // Gate 1: drift must measurably degrade the static baseline, and the
    // adaptive loop must claw latency back — else the loop does nothing.
    if static_drift.p99_ms <= no_drift.p99_ms {
        eprintln!(
            "drift: static-drift p99 {:.2} ms does not trail no-drift {:.2} ms — drift too weak",
            static_drift.p99_ms, no_drift.p99_ms
        );
        violations += 1;
    }
    if adaptive.p99_ms >= static_drift.p99_ms {
        eprintln!(
            "drift: adaptive p99 {:.2} ms does not beat static {:.2} ms",
            adaptive.p99_ms, static_drift.p99_ms
        );
        violations += 1;
    }

    // Gate 2: adaptive re-planning also wins on total energy at equal
    // offered load (shorter stretched durations and a shorter makespan).
    if adaptive.total_energy_j >= static_drift.total_energy_j {
        eprintln!(
            "drift: adaptive energy {:.1} J does not beat static {:.1} J",
            adaptive.total_energy_j, static_drift.total_energy_j
        );
        violations += 1;
    }

    // Gate 3: the hysteresis band bounds re-planning — at least one
    // re-plan under drift, never more than the configured ceiling, and
    // exactly zero on every non-adaptive run.
    let bound = AdaptiveConfig::default().max_replans;
    if adaptive.replans == 0 || adaptive.replans > bound {
        eprintln!(
            "drift: adaptive re-plans {} outside (0, {bound}]",
            adaptive.replans
        );
        violations += 1;
    }
    for p in [no_drift, static_drift] {
        if p.replans != 0 || p.observations != 0 {
            eprintln!(
                "drift [{}]: non-adaptive run reports {} re-plans / {} observations",
                p.config, p.replans, p.observations
            );
            violations += 1;
        }
    }

    // Gate 4: arming estimation with nothing drifting is bit-identical to
    // the legacy loop — ratios of 1.0 never leave the hysteresis band.
    {
        let mut control = no_drift_adaptive.clone();
        control.config = no_drift.config.clone();
        control.observations = no_drift.observations;
        control.wall_seconds = no_drift.wall_seconds;
        control.steady_state_allocs = no_drift.steady_state_allocs;
        if control != *no_drift {
            eprintln!(
                "drift: no-drift-adaptive diverges from no-drift: {no_drift_adaptive:?} vs {no_drift:?}"
            );
            violations += 1;
        }
    }

    // Gate 5: accounting balances and nothing is dropped — drift slows the
    // system, it never loses work.
    for p in &points {
        if !p.robustness.accounts_for_every_request() || p.robustness.dropped() != 0 {
            eprintln!(
                "drift [{}]: accounting does not balance or work was dropped: {:?}",
                p.config, p.robustness
            );
            violations += 1;
        }
    }

    // Gate 6: bounded memory — zero steady-state allocations everywhere,
    // estimation and believed-cluster re-planning included.
    for p in &points {
        match p.steady_state_allocs {
            Some(0) => {}
            Some(n) => {
                eprintln!(
                    "drift [{}]: {} allocations in the steady-state pass over {} \
                     requests (bounded-memory contract is 0)",
                    p.config, n, p.requests
                );
                violations += 1;
            }
            None => unreachable!("a counter was supplied"),
        }
    }

    // Gate 7: the episode-level bandit tries every tuning and settles on
    // the lowest-p99 arm.
    let bandit = hidp_bench::drift_bandit(count.min(4_000), seed, episodes);
    println!(
        "bandit: {} episodes over {:?} -> best '{}' (pulls {:?}, p99 {:?} ms)",
        bandit.episodes, bandit.arms, bandit.best, bandit.pulls, bandit.p99_ms
    );
    if bandit.pulls.contains(&0) || bandit.pulls.iter().sum::<u64>() != u64::from(episodes) {
        eprintln!(
            "drift: bandit pulls {:?} do not cover every arm over {episodes} episodes",
            bandit.pulls
        );
        violations += 1;
    }
    let best_measured = bandit
        .p99_ms
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| bandit.arms[i].clone())
        .expect("at least one arm");
    if bandit.best != best_measured {
        eprintln!(
            "drift: bandit settled on '{}' but '{best_measured}' measured the lowest p99",
            bandit.best
        );
        violations += 1;
    }

    let json = hidp_bench::drift_json(&points, &bandit, seed);
    let path = "BENCH_drift.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if violations > 0 {
        std::process::exit(1);
    }
    println!(
        "drift: adaptive re-planning beats static plans on p99 and energy, re-plans within \
         the hysteresis bound, no-drift runs bit-identical with estimation armed, zero \
         steady-state allocations, bandit settled on the best tuning"
    );
}
