//! Warm-path experiment: measures the zero-copy steady-state serving loop —
//! per-request cached planning through the borrowed keyed probe and the full
//! plan-and-simulate pass against a reused `SimScratch` at
//! `TraceDetail::Summary` — on the same Mix-5 points as
//! `exp_stream_scaling`. Prints a markdown table and writes the
//! measurements to `BENCH_warm_path.json` to track the perf trajectory
//! across PRs.
//!
//! The binary installs a counting global allocator
//! ([`hidp_bench::alloc_count`] — the same definition the
//! `zero_alloc_warm_path` integration test enforces) and audits one
//! steady-state pass per point: the zero-copy contract is that the warm
//! path performs **zero** heap allocations once its buffers are sized, and
//! the process exits non-zero if any point violates it — `--quick` (the CI
//! bench-smoke mode) runs reduced sizes and relies on exactly that check.

use hidp_bench::alloc_count::{allocations_on_this_thread, CountingAllocator};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");

    // The same Mix-5 points BENCH_stream_scaling.json records, so the two
    // trajectory files are directly comparable.
    let sizes: &[usize] = if quick {
        &[40, 160]
    } else {
        &[160, 400, 1000, 1600]
    };
    let counter: &dyn Fn() -> u64 = &allocations_on_this_thread;
    let points = hidp_bench::warm_path_points(sizes, Some(counter));
    println!("{}", hidp_bench::warm_path_table(&points).to_markdown());

    let json = hidp_bench::warm_path_json(&points);
    let path = "BENCH_warm_path.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // The zero-copy contract, enforced in CI: a steady-state pass allocates
    // nothing. (The audit runs after a warm-up pass sized every buffer.)
    let mut violations = 0usize;
    for p in &points {
        match p.steady_state_allocs {
            Some(0) => {}
            Some(n) => {
                eprintln!(
                    "warm path allocated: {} allocations in one steady-state pass \
                     over {} requests",
                    n, p.requests
                );
                violations += 1;
            }
            None => unreachable!("a counter was supplied"),
        }
    }
    if violations > 0 {
        std::process::exit(1);
    }
    println!("steady-state warm path: 0 allocations at every point");
}
