//! Poisson stress experiment: open-loop Poisson request streams over the
//! four target DNNs, swept across arrival rates, reporting p50/p95/p99
//! latency per strategy. Exercises the `poisson_stream` workload generator
//! end to end; the rate sweep reuses plans through one `PlanCache` per
//! strategy, so even the MCTS baseline plans each model only once.
//!
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rates, count): (&[f64], usize) = if quick {
        (&[1.0, 4.0], 12)
    } else {
        (&[0.5, 1.0, 2.0, 4.0], 48)
    };
    let table = hidp_bench::poisson_stress(rates, count, 42);
    println!("{}", table.to_markdown());
}
