//! Poisson stress experiment: open-loop Poisson request streams over the
//! four target DNNs, swept across arrival rates, served through the
//! `ServingScenario` runtime in its degenerate mode (FIFO, batch = 1 —
//! bit-identical to the static pipeline). Latency percentiles come from the
//! sim layer's `ServingMetrics` reporter: p50/p95/p99 overall **and per SLA
//! class** (the stream cycles premium/standard/best-effort). The whole
//! strategy × rate grid shares one sharded `PlanCache`, so even the MCTS
//! baseline plans each model only once.
//!
//! Pass `--quick` for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (rates, count): (&[f64], usize) = if quick {
        (&[1.0, 4.0], 12)
    } else {
        (&[0.5, 1.0, 2.0, 4.0], 48)
    };
    let table = hidp_bench::poisson_stress(rates, count, 42);
    println!("{}", table.to_markdown());
}
