//! Parallel-evaluation experiment: end-to-end requests/s of the Mix-5
//! sweep through `ParallelSweep` at 1, 2, 4 and `available_parallelism`
//! worker threads, every measurement planning through a cold shared sharded
//! `PlanCache`. Prints a markdown table and writes
//! `BENCH_parallel_eval.json` to track the perf trajectory across PRs.
//!
//! Every multi-thread point's evaluations are asserted bit-identical to the
//! 1-thread run — "more cores ⇒ more throughput, never different results".
//! Speedups are bounded by the host's available parallelism (recorded in
//! the JSON): on a single-core runner all points degenerate to ~1×.
//!
//! Pass `--quick` (the CI bench-smoke mode) for a reduced sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (jobs, requests_per_job, runs) = if quick { (8, 50, 2) } else { (40, 200, 3) };
    let report = hidp_bench::parallel_eval(jobs, requests_per_job, runs);
    println!("{}", hidp_bench::parallel_eval_table(&report).to_markdown());

    for point in &report.points {
        assert!(
            point.identical_to_one_thread,
            "{} threads produced different evaluations than 1 thread",
            point.threads
        );
    }

    let json = hidp_bench::parallel_eval_json(&report);
    let path = "BENCH_parallel_eval.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
