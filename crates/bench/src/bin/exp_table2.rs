//! Regenerates the "table2" experiment of the HiDP paper and prints it as a
//! markdown table. See DESIGN.md §4 for the experiment index.

fn main() {
    let table = hidp_bench::table2_platform();
    println!("{}", table.to_markdown());
}
