//! Soak experiment: the streaming serving loop over a 10^6-request diurnal
//! trace — the production-scale gate for the indexed admission queue, the
//! measured-completion dispatch model and the P²-sketched summary. Prints a
//! markdown table and writes `BENCH_soak.json` to track the soak throughput
//! trajectory across PRs.
//!
//! The binary installs the counting global allocator
//! ([`hidp_bench::alloc_count`], the same definition `exp_warm_path` and
//! the `zero_alloc_warm_path` integration test enforce) and audits the
//! timed steady-state pass of every config. Two gates, enforced in CI via
//! `--quick` and on the full run:
//!
//! * **bounded memory** — the audited pass performs **zero** heap
//!   allocations: after the warm pass the loop runs entirely on reused
//!   scratch buffers and `Copy` accumulators, so memory cannot grow with
//!   the request count;
//! * **throughput floor** — the full 1M-request soak must sustain at least
//!   500k requests per wall-clock second per config (`--quick` runs 50k
//!   requests against a floor of 100k req/s, generous enough for shared CI
//!   runners while still catching order-of-magnitude regressions).

use hidp_bench::alloc_count::{allocations_on_this_thread, CountingAllocator};

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (count, floor) = if quick {
        (50_000, 1e5)
    } else {
        (1_000_000, 5e5)
    };

    let counter: &dyn Fn() -> u64 = &allocations_on_this_thread;
    let points = hidp_bench::soak_points(count, Some(counter));
    println!("{}", hidp_bench::soak_table(&points).to_markdown());

    let json = hidp_bench::soak_json(&points);
    let path = "BENCH_soak.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mut violations = 0usize;
    for p in &points {
        match p.steady_state_allocs {
            Some(0) => {}
            Some(n) => {
                eprintln!(
                    "soak [{}]: {} allocations in the steady-state pass over {} \
                     requests (bounded-memory contract is 0)",
                    p.config, n, p.requests
                );
                violations += 1;
            }
            None => unreachable!("a counter was supplied"),
        }
        if p.requests_per_wall_second < floor {
            eprintln!(
                "soak [{}]: {:.0} requests/s is below the {:.0} req/s floor \
                 ({} requests in {:.2} s)",
                p.config, p.requests_per_wall_second, floor, p.requests, p.wall_seconds
            );
            violations += 1;
        }
    }
    if violations > 0 {
        std::process::exit(1);
    }
    println!(
        "soak: {} requests/config, zero steady-state allocations, all configs above {:.0} req/s",
        count, floor
    );
}
