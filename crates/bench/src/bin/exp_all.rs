//! Regenerates every table and figure of the HiDP paper's evaluation and
//! prints them as markdown, followed by a JSON dump (for EXPERIMENTS.md).

fn main() {
    let tables = vec![
        hidp_bench::table2_platform(),
        hidp_bench::fig1_partitioning_configs(),
        hidp_bench::fig5_latency(),
        hidp_bench::fig5_energy(),
        hidp_bench::fig6_dynamic_performance(),
        hidp_bench::fig7_mix_throughput(),
        hidp_bench::fig8_node_scaling(),
        hidp_bench::accuracy_equivalence(),
        hidp_bench::dse_overhead(),
        hidp_bench::ablation(),
        hidp_bench::poisson_stress(&[0.5, 1.0, 2.0, 4.0], 48, 42),
        {
            let scenarios = hidp_bench::serving_scenarios(240);
            let evaluations = hidp_bench::serving_evaluations(&scenarios, 0);
            hidp_bench::serving_table(&hidp_bench::serving_points(&scenarios, &evaluations))
        },
        hidp_bench::fleet_table(&hidp_bench::fleet_routing_points(12_000, 8, 4, 1.8, None)),
    ];
    for table in &tables {
        println!("{}", table.to_markdown());
    }
    if std::env::args().any(|a| a == "--json") {
        println!("{}", hidp_bench::tables_to_json(&tables));
    }
}
