//! Stream-scaling experiment: measures the event-driven simulator against
//! the O(n²) list-scheduling baseline on mixed streams 10×–100× the paper's
//! Fig. 6/7 lengths, plus the per-request planning cost through a warm
//! `PlanCache`. Prints a markdown table and writes the measurements to
//! `BENCH_stream_scaling.json` to track the perf trajectory across PRs.
//!
//! The quadratic baseline is metered by a wall-clock budget instead of a
//! hard size cap: pass `--reference-budget-ms <ms>` (default 30 000; the CI
//! quick mode uses 2 000) and every point runs the baseline while budget
//! remains — so `list_sim_ms` is only `null` when the budget actually ran
//! out, and the JSON records the budget that was in force.
//!
//! Pass `--quick` (the CI bench-smoke mode) to run reduced sizes.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reference_budget_ms = args
        .iter()
        .position(|a| a == "--reference-budget-ms")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse::<f64>()
                .expect("--reference-budget-ms takes a number (milliseconds)")
        })
        .unwrap_or(if quick { 2_000.0 } else { 30_000.0 });

    // Fig. 7 streams are 16 requests; 160–1600 is the 10×–100× band the
    // issue targets, with the 1 000-request point carrying the headline
    // old-vs-new comparison.
    let sizes: &[usize] = if quick {
        &[40, 160]
    } else {
        &[160, 400, 1000, 1600]
    };
    let points = hidp_bench::stream_scaling_points(sizes, reference_budget_ms);
    println!(
        "{}",
        hidp_bench::stream_scaling_table(&points).to_markdown()
    );

    let json = hidp_bench::stream_scaling_json(&points, reference_budget_ms);
    let path = "BENCH_stream_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
