//! Stream-scaling experiment: measures the event-driven simulator against
//! the O(n²) list-scheduling baseline on mixed streams 10×–100× the paper's
//! Fig. 6/7 lengths, plus the per-request planning cost through a warm
//! `PlanCache`. Prints a markdown table and writes the measurements to
//! `BENCH_stream_scaling.json` to track the perf trajectory across PRs.
//!
//! Pass `--quick` (the CI bench-smoke mode) to run reduced sizes.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Fig. 7 streams are 16 requests; 160–1600 is the 10×–100× band the
    // issue targets, with the 1 000-request point carrying the headline
    // old-vs-new comparison.
    let (sizes, list_cap): (&[usize], usize) = if quick {
        (&[40, 160], 160)
    } else {
        (&[160, 400, 1000, 1600], 1000)
    };
    let points = hidp_bench::stream_scaling_points(sizes, list_cap);
    println!(
        "{}",
        hidp_bench::stream_scaling_table(&points).to_markdown()
    );

    let json = hidp_bench::stream_scaling_json(&points);
    let path = "BENCH_stream_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
