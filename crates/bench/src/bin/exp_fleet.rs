//! Fleet experiment: four routing policies over the same skewed regional
//! diurnal trace on one generated fleet — equal offered load, only the
//! routing differs — plus a 10^6-request soak across 64 clusters. Prints
//! markdown tables and writes `BENCH_fleet.json` to track the fleet
//! trajectory across PRs.
//!
//! The binary installs the counting global allocator and audits the timed
//! steady-state pass of every routing policy. Gates, enforced in CI via
//! `--quick` and on the full run:
//!
//! * **routing quality** — least-loaded and locality routing must each beat
//!   random and static-hash routing on p99 latency AND SLA-miss rate (the
//!   whole point of load/locality awareness: at equal throughput the smart
//!   policies keep the hot region's backlog and the WAN toll off the tail);
//! * **bounded memory** — the audited one-thread pass performs **zero**
//!   heap allocations per policy;
//! * **determinism** — the same scenario at 1/2/4 worker threads yields a
//!   bit-identical `FleetSummary`;
//! * **soak floor** (full run only) — 1M requests across 64 clusters must
//!   sustain at least 150k requests per wall-clock second at one thread.

use hidp_bench::alloc_count::{allocations_on_this_thread, CountingAllocator};
use hidp_core::{FleetScratch, ParallelSweep};
use hidp_platform::presets;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Routing comparison: 8 clusters across 4 regions; the rate scale pins
    // the offered load near the fleet's serving capacity so routing quality
    // shows up in the tail rather than in idle headroom.
    let (count, clusters, regions, rate_scale) = if quick {
        (12_000, 8, 4, 1.8)
    } else {
        (60_000, 8, 4, 1.8)
    };

    let counter: &dyn Fn() -> u64 = &allocations_on_this_thread;
    let points =
        hidp_bench::fleet_routing_points(count, clusters, regions, rate_scale, Some(counter));
    println!("{}", hidp_bench::fleet_table(&points).to_markdown());

    let mut violations = 0usize;

    // Gate 1: routing quality — each smart policy beats each dumb policy on
    // p99 AND miss rate.
    let by_name = |name: &str| {
        points
            .iter()
            .find(|p| p.routing == name)
            .expect("policy measured")
    };
    for smart in ["least-loaded", "locality"] {
        for dumb in ["random", "static-hash"] {
            let s = by_name(smart);
            let d = by_name(dumb);
            if s.p99_ms >= d.p99_ms {
                eprintln!(
                    "fleet: {} p99 {:.1} ms does not beat {} p99 {:.1} ms",
                    smart, s.p99_ms, dumb, d.p99_ms
                );
                violations += 1;
            }
            if s.sla_miss_rate >= d.sla_miss_rate {
                eprintln!(
                    "fleet: {} miss rate {:.4} does not beat {} miss rate {:.4}",
                    smart, s.sla_miss_rate, dumb, d.sla_miss_rate
                );
                violations += 1;
            }
        }
    }

    // Gate 2: bounded memory — zero steady-state allocations per policy.
    for p in &points {
        match p.steady_state_allocs {
            Some(0) => {}
            Some(n) => {
                eprintln!(
                    "fleet [{}]: {} allocations in the steady-state pass over {} \
                     requests (bounded-memory contract is 0)",
                    p.routing, n, p.requests
                );
                violations += 1;
            }
            None => unreachable!("a counter was supplied"),
        }
    }

    // Gate 3: determinism — bit-identical at 1/2/4 worker threads.
    {
        let fleet = presets::generated_fleet(clusters, regions).expect("fleet preset is valid");
        let strategy = hidp_core::HidpStrategy::new();
        let check = count.min(6_000);
        let scenario = hidp_bench::fleet_scenario(
            hidp_bench::fleet_trace(check, regions, rate_scale),
            hidp_core::RoutingPolicy::Locality,
        );
        let mut reference = None;
        for threads in [1usize, 2, 4] {
            let summary = scenario
                .run_streaming_in(
                    &strategy,
                    &fleet,
                    hidp_bench::LEADER,
                    &ParallelSweep::new(threads),
                    &mut FleetScratch::new(),
                )
                .expect("fleet determinism pass succeeds");
            match &reference {
                None => reference = Some(summary),
                Some(r) if *r == summary => {}
                Some(_) => {
                    eprintln!("fleet: summary diverges at {threads} threads");
                    violations += 1;
                }
            }
        }
        println!("determinism: {check} requests bit-identical at 1/2/4 threads");
    }

    // Soak (full run only): 1M requests across 64 clusters, wall-clock floor.
    let soak = if quick {
        None
    } else {
        let (soak_count, soak_clusters, soak_regions, floor) = (1_000_000, 64, 8, 1.5e5);
        // 64 clusters serve ~8x the load of the 8-cluster comparison fleet;
        // scale the offered rate with the capacity so the soak exercises a
        // loaded fleet rather than a mostly idle one.
        let point = hidp_bench::fleet_soak_point(soak_count, soak_clusters, soak_regions, 13.0, 1);
        println!(
            "{}",
            hidp_bench::fleet_table(std::slice::from_ref(&point)).to_markdown()
        );
        if point.requests_per_wall_second < floor {
            eprintln!(
                "fleet soak: {:.0} requests/s is below the {:.0} req/s floor \
                 ({} requests on {} clusters in {:.2} s)",
                point.requests_per_wall_second,
                floor,
                point.requests,
                point.clusters,
                point.wall_seconds
            );
            violations += 1;
        }
        Some(point)
    };

    let json = hidp_bench::fleet_json(&points, soak.as_ref());
    let path = "BENCH_fleet.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if violations > 0 {
        std::process::exit(1);
    }
    println!(
        "fleet: smart routing beats random and static-hash on p99 and miss rate, \
         zero steady-state allocations, bit-identical at 1/2/4 threads{}",
        if quick { "" } else { ", soak above floor" }
    );
}
