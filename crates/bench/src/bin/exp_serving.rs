//! Serving-runtime experiment: the admission-policy × failure-pattern grid
//! (FIFO / priority / EDF / FIFO+batching, each against a static cluster, a
//! single-node blip and a rolling outage pair) over bursty Mix-5 traffic
//! with SLA classes. Prints a markdown table and writes `BENCH_serving.json`
//! to track throughput, tail latency, queueing delay and SLA-miss rate
//! across PRs.
//!
//! Two invariants are asserted on every run (CI runs `--quick`):
//!
//! * **thread-count invariance** — the grid through
//!   `ParallelSweep::run_serving` at 1, 2 and 4 worker threads produces
//!   bit-identical `ServingEvaluation`s (the same guarantee
//!   `exp_parallel_eval` enforces for the static sweep);
//! * **batching wins in both regimes** — on the transfer-heavy batching
//!   workload point (Inception-V3 burst train, serial dispatch window) and
//!   on the compute-bound point (ResNet-152 burst train, where the win
//!   comes from the sublinear batch cost model rather than message
//!   amortization), the k = 4 and k = 8 dynamic batcher serves measurably
//!   more requests per second than batch = 1 (simulated time, so the
//!   comparison is deterministic).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let count = if quick { 64 } else { 240 };

    let scenarios = hidp_bench::serving_scenarios(count);
    let reference = hidp_bench::serving_evaluations(&scenarios, 1);
    for threads in [2usize, 4] {
        let evaluations = hidp_bench::serving_evaluations(&scenarios, threads);
        assert!(
            evaluations == reference,
            "{threads} worker threads produced different serving evaluations than 1 thread"
        );
    }
    println!("serving grid: bit-identical results at 1/2/4 worker threads");

    let points = hidp_bench::serving_points(&scenarios, &reference);
    println!("{}", hidp_bench::serving_table(&points).to_markdown());

    let batching = hidp_bench::serving_batching_points(count);
    println!(
        "{}",
        hidp_bench::serving_batching_table(&batching).to_markdown()
    );
    let batching_compute = hidp_bench::serving_batching_compute_points(count);
    println!(
        "{}",
        hidp_bench::serving_batching_table_titled(
            &batching_compute,
            "Dynamic batching (compute-bound): ResNet-152 burst train, serial dispatch window",
        )
        .to_markdown()
    );
    // Compute-bound floor: the win is capped by the least batch-efficient
    // processor on the critical path (HiDP gives the CPU shares of the
    // split real work, and CPU batch efficiency is ~1.1 at k=8), so ~1.10x
    // is the honest magnitude — the floor catches the model regressing to
    // linear (1.00x), not a smaller win.
    for (regime, pts, floor) in [
        ("transfer-bound", &batching, 1.02),
        ("compute-bound", &batching_compute, 1.05),
    ] {
        for p in pts {
            if p.max_batch >= 4 {
                assert!(
                    p.speedup_vs_unbatched > floor,
                    "dynamic batching (k={}, {regime}) must beat batch=1 measurably \
                     (got {:.3}x, floor {floor}x)",
                    p.max_batch,
                    p.speedup_vs_unbatched
                );
            }
        }
        let best = pts.last().expect("batching points exist");
        println!(
            "dynamic batching ({regime}, k={}): {:.2} req/s vs {:.2} req/s at batch=1 ({:.3}x)",
            best.max_batch,
            best.requests_per_second,
            pts[0].requests_per_second,
            best.speedup_vs_unbatched
        );
    }

    let json = hidp_bench::serving_json(&points, &batching, &batching_compute, count);
    let path = "BENCH_serving.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
