//! Regenerates the "fig5_energy" experiment of the HiDP paper and prints it as a
//! markdown table. See DESIGN.md §4 for the experiment index.

fn main() {
    let table = hidp_bench::fig5_energy();
    println!("{}", table.to_markdown());
}
