//! Regenerates the "fig1" experiment of the HiDP paper and prints it as a
//! markdown table. See DESIGN.md §4 for the experiment index.

fn main() {
    let table = hidp_bench::fig1_partitioning_configs();
    println!("{}", table.to_markdown());
}
