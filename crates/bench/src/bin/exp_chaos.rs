//! Chaos experiment: the fleet under a seeded fault suite — node flaps, a
//! correlated rack outage, a straggler window and WAN degradation — served
//! with four failure-handling configurations over the same trace: fault-free
//! (yardstick), no recovery, retry-with-failover, and retry-plus-shedding.
//! Prints a markdown table and writes `BENCH_chaos.json` to track the
//! robustness trajectory across PRs.
//!
//! The binary installs the counting global allocator and audits the timed
//! steady-state pass of every configuration. Gates, enforced in CI via
//! `--quick` and on the full run:
//!
//! * **no silent loss** — with retry + failover enabled, zero requests are
//!   permanently lost, and the offered/completed/dropped accounting balances
//!   for every configuration;
//! * **goodput floor** — retry + failover holds SLA goodput (in-deadline
//!   completions over offered) at ≥ 90% of the fault-free run's;
//! * **faults hurt without recovery** — the no-recovery baseline must lose
//!   requests, or the suite is not actually injecting meaningful faults;
//! * **bounded memory** — the audited one-thread pass performs **zero**
//!   heap allocations per configuration, recovery machinery included;
//! * **determinism** — the retry-failover run at 1/2/4 worker threads
//!   yields a bit-identical `FleetSummary`.

use hidp_bench::alloc_count::{allocations_on_this_thread, CountingAllocator};
use hidp_core::{FleetScratch, ParallelSweep, RecoveryPolicy};
use hidp_platform::presets;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // 4 clusters over 2 regions at a load near capacity, so recovery work
    // competes with live traffic instead of slotting into idle headroom.
    let (count, clusters, regions, rate_scale, seed) = if quick {
        (8_000, 4, 2, 1.2, 0xC4405)
    } else {
        (40_000, 4, 2, 1.2, 0xC4405)
    };

    let counter: &dyn Fn() -> u64 = &allocations_on_this_thread;
    let points =
        hidp_bench::chaos_points(count, clusters, regions, rate_scale, seed, Some(counter));
    println!("{}", hidp_bench::chaos_table(&points).to_markdown());

    let mut violations = 0usize;
    let by_name = |name: &str| {
        points
            .iter()
            .find(|p| p.config == name)
            .expect("configuration measured")
    };
    let fault_free = by_name("fault-free");
    let no_recovery = by_name("no-recovery");
    let recovered = by_name("retry-failover");

    // Gate 1: no silent loss — retry + failover recovers every killed
    // request, and every configuration's accounting balances.
    if recovered.robustness.lost != 0 {
        eprintln!(
            "chaos: retry-failover permanently lost {} of {} requests",
            recovered.robustness.lost, recovered.robustness.offered
        );
        violations += 1;
    }
    for p in &points {
        if !p.robustness.accounts_for_every_request() {
            eprintln!(
                "chaos [{}]: accounting does not balance: {:?}",
                p.config, p.robustness
            );
            violations += 1;
        }
    }

    // Gate 2: goodput floor — recovery holds ≥ 90% of fault-free goodput.
    if recovered.sla_goodput < 0.9 * fault_free.sla_goodput {
        eprintln!(
            "chaos: retry-failover goodput {:.4} is below 90% of fault-free {:.4}",
            recovered.sla_goodput, fault_free.sla_goodput
        );
        violations += 1;
    }

    // Gate 3: the fault suite must measurably degrade the no-recovery
    // baseline, or the gates above prove nothing.
    if no_recovery.robustness.lost == 0 {
        eprintln!("chaos: the fault suite lost nothing without recovery — faults too weak");
        violations += 1;
    }
    if no_recovery.sla_goodput >= fault_free.sla_goodput {
        eprintln!(
            "chaos: no-recovery goodput {:.4} does not trail fault-free {:.4}",
            no_recovery.sla_goodput, fault_free.sla_goodput
        );
        violations += 1;
    }

    // Gate 4: bounded memory — zero steady-state allocations everywhere,
    // recovery machinery included.
    for p in &points {
        match p.steady_state_allocs {
            Some(0) => {}
            Some(n) => {
                eprintln!(
                    "chaos [{}]: {} allocations in the steady-state pass over {} \
                     requests (bounded-memory contract is 0)",
                    p.config, n, p.requests
                );
                violations += 1;
            }
            None => unreachable!("a counter was supplied"),
        }
    }

    // Gate 5: determinism — the recovered run is bit-identical at 1/2/4
    // worker threads.
    {
        let fleet = presets::generated_fleet(clusters, regions).expect("fleet preset is valid");
        let strategy = hidp_core::HidpStrategy::new();
        let check = count.min(6_000);
        let requests = hidp_bench::fleet_trace(check, regions, rate_scale);
        let horizon = requests
            .iter()
            .map(|r| r.request.arrival)
            .fold(0.0, f64::max)
            .max(1.0);
        let node_counts: Vec<usize> = fleet.clusters().iter().map(|c| c.len()).collect();
        let plans = hidp_bench::chaos_fault_suite(&node_counts, horizon, seed);
        let scenario =
            hidp_bench::chaos_scenario(requests, &plans, "determinism", RecoveryPolicy::standard());
        let mut reference = None;
        for threads in [1usize, 2, 4] {
            let summary = scenario
                .run_streaming_in(
                    &strategy,
                    &fleet,
                    hidp_bench::LEADER,
                    &ParallelSweep::new(threads),
                    &mut FleetScratch::new(),
                )
                .expect("chaos determinism pass succeeds");
            match &reference {
                None => reference = Some(summary),
                Some(r) if *r == summary => {}
                Some(_) => {
                    eprintln!("chaos: summary diverges at {threads} threads");
                    violations += 1;
                }
            }
        }
        println!("determinism: {check} requests under faults bit-identical at 1/2/4 threads");
    }

    let json = hidp_bench::chaos_json(&points, seed);
    let path = "BENCH_chaos.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if violations > 0 {
        std::process::exit(1);
    }
    println!(
        "chaos: zero requests lost under retry+failover, goodput within 90% of fault-free, \
         no-recovery baseline measurably degrades, zero steady-state allocations, \
         bit-identical at 1/2/4 threads"
    );
}
