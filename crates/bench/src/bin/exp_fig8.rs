//! Regenerates the "fig8" experiment of the HiDP paper and prints it as a
//! markdown table. See DESIGN.md §4 for the experiment index.

fn main() {
    let table = hidp_bench::fig8_node_scaling();
    println!("{}", table.to_markdown());
}
